//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal substitute. The seed source only ever
//! *derives* `Serialize` / `Deserialize` — no code calls serialization
//! methods or uses the trait names in bounds — so the derives expand to
//! nothing. Swapping in the real `serde = { version = "1", features =
//! ["derive"] }` later requires no source changes.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize` (accepts `#[serde(...)]` helpers).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize` (accepts `#[serde(...)]` helpers).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
