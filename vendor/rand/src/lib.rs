//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the small subset of the `rand 0.8` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer and float ranges, and [`Rng::gen_bool`]. The generator is
//! SplitMix64 — deterministic for a given seed, which is all the
//! simulation's reproducibility story needs.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` (53 bits of entropy).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that knows how to sample a uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        start + rng.next_f64() * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(5u32..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
