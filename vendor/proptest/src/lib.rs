//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `boxed`, `Just`, range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], [`prop_oneof!`], and `prop_assert*`.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are **not shrunk** — the failing input is simply reported by the
//! panic message of the assertion that tripped. Case generation is fully
//! deterministic (seeded from the test name), so failures reproduce.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::{Range, RangeInclusive};

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (e.g. a test name).
        pub fn deterministic(label: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state }
        }

        /// Next pseudo-random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "bound must be positive");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// A recipe for generating values of one type.
    ///
    /// Object-safe: `generate` takes `&self`, while the combinators are
    /// `Self: Sized`, so `Box<dyn Strategy<Value = T>>` works.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return start + rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + rng.next_f64() * (end - start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for types with a canonical strategy.

    use std::marker::PhantomData;

    use crate::strategy::{Strategy, TestRng};

    /// Types with a canonical "any value" generator.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use crate::strategy::{Strategy, TestRng};

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = if span == 0 { self.size.start } else { self.size.start + rng.below(span) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start <= size.end, "invalid size range");
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    //! Per-test configuration.

    /// Controls how many random cases each property test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::strategy::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let ($($arg,)*) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)*
                    );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        A,
        B,
    }

    fn arb_kind() -> impl Strategy<Value = Kind> {
        prop_oneof![Just(Kind::A), Just(Kind::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..5, any::<bool>()).prop_map(|(n, b)| (n * 2, b)),
            kind in arb_kind(),
        ) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(kind == Kind::A || kind == Kind::B);
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(0u64..10, 2..6),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let strat = arb_kind();
        let mut rng = crate::strategy::TestRng::deterministic("union_covers_all_arms");
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..100 {
            match strat.generate(&mut rng) {
                Kind::A => seen_a = true,
                Kind::B => seen_b = true,
            }
        }
        assert!(seen_a && seen_b);
    }
}
