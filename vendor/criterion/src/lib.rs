//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of the Criterion API the bench targets use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `warm_up_time` / `measurement_time` /
//! `bench_with_input` / `finish`, [`BenchmarkId`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs its routine in
//! a wall-clock loop until the measurement budget elapses, then reports
//! mean time per iteration. No statistics, plots or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; a hint only, all variants behave
/// identically here (setup runs outside the timed section every batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<P: Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Drives the timed loop of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    min_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(budget: Duration, min_iters: u64) -> Self {
        Bencher { budget, min_iters, iters: 0, elapsed: Duration::ZERO }
    }

    /// Times `routine` in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.min_iters || start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while iters < self.min_iters || elapsed < self.budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

fn report(id: &str, iters: u64, elapsed: Duration) {
    let per_iter = if iters == 0 { 0.0 } else { elapsed.as_secs_f64() / iters as f64 };
    let (value, unit) = if per_iter >= 1.0 {
        (per_iter, "s")
    } else if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!("{id:<50} time: {value:>10.3} {unit}/iter ({iters} iterations)");
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(100) }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.measurement_time, 1);
        f(&mut b);
        report(id, b.iters, b.elapsed);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup { _criterion: self, name: name.to_string(), measurement_time }
    }
}

/// A named group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted for API parity; the simple
    /// wall-clock loop does not use it).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up budget (accepted for API parity; one untimed call
    /// serves as warm-up).
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.measurement_time, 1);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), b.iters, b.elapsed);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.measurement_time, 1);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.iters, b.elapsed);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (CLI args are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_iterations() {
        let mut c = Criterion { measurement_time: Duration::from_millis(1) };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_batched_benchmarks() {
        let mut c = Criterion { measurement_time: Duration::from_millis(1) };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).measurement_time(Duration::from_millis(1));
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| {
            b.iter_batched(
                || n,
                |v| {
                    ran += v;
                    v
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(ran >= 3);
    }
}
