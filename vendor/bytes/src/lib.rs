//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset the trace codec uses: [`BytesMut`] as an appendable
//! buffer with little-endian `put_*` methods, frozen into [`Bytes`], which
//! is consumed from the front with `get_*` methods. Backed by a plain
//! `Vec<u8>` — no shared-slice optimization, which the workspace does not
//! rely on.

#![forbid(unsafe_code)]

/// Read side: consuming primitives from the front of a buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Copies the next `dst.len()` bytes out of the buffer, advancing it.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write side: appending primitives to the end of a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer consumed from the front.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the buffer is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unconsumed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// A growable byte buffer, frozen into [`Bytes`] once written.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the written bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_fields() {
        let mut buf = BytesMut::with_capacity(21);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_u64_le(u64::MAX);
        buf.put_u32_le(7);
        buf.put_u8(1);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 21);
        assert_eq!(bytes.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(bytes.get_u64_le(), u64::MAX);
        assert_eq!(bytes.get_u32_le(), 7);
        assert_eq!(bytes.get_u8(), 1);
        assert!(!bytes.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut bytes = Bytes::from(vec![1u8, 2]);
        let _ = bytes.get_u32_le();
    }
}
