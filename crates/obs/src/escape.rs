//! Escaping helpers shared by the JSON and Prometheus renderers.
//!
//! The workspace vendors a no-op `serde` stub, so every serializer in the
//! repo is hand-rolled; these helpers keep the quoting rules in one place
//! and under test.

/// Escapes a string for embedding inside a JSON string literal.
///
/// Escapes `"` and `\`, maps the common control characters to their short
/// forms and any other control character to `\u00XX`.
pub fn json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a `# HELP` line for the Prometheus text exposition format.
///
/// The exposition format requires `\` and line feeds to be escaped in help
/// text.
pub fn prometheus_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label *value* for the Prometheus text exposition format.
///
/// Label values additionally require `"` to be escaped.
pub fn prometheus_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_backslashes_and_controls() {
        assert_eq!(json("plain"), "plain");
        assert_eq!(json("a\"b"), "a\\\"b");
        assert_eq!(json("a\\b"), "a\\\\b");
        assert_eq!(json("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json("\u{1}"), "\\u0001");
    }

    #[test]
    fn prometheus_help_escapes_backslash_and_newline_only() {
        assert_eq!(prometheus_help("queue \\depth\nnext"), "queue \\\\depth\\nnext");
        assert_eq!(prometheus_help("quotes \" stay"), "quotes \" stay");
    }

    #[test]
    fn prometheus_label_escapes_quotes_too() {
        assert_eq!(prometheus_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
