//! The deterministic phase profiler: where does *wall* time go, per
//! subsystem?
//!
//! The paper's whole argument rests on attributing time to the right
//! bottleneck (cache vs. disk queues); this module makes the same
//! attribution about the reproduction itself. The simulator's hot loop is
//! carved into a fixed vocabulary of [`Phase`]s, and a [`PhaseSink`]
//! threaded through the loop accumulates monotonic-clock deltas and call
//! counts per phase — index-addressed arrays, zero allocation, no locking.
//!
//! Two implementations exist:
//!
//! - [`NoProf`], a zero-sized sink whose methods are empty `#[inline]`
//!   bodies. The unprofiled monomorphization of the hot loop compiles to
//!   exactly the code it had before profiling existed.
//! - [`PhaseProfiler`], which stamps [`std::time::Instant`] marks and
//!   accumulates `[u64; PHASE_COUNT]` totals. It follows the same
//!   write-only pattern as [`crate::SimObserver`]: it records, it never
//!   steers, and the determinism contract guarantees a profiled run's
//!   report is byte-identical to an unprofiled one.
//!
//! Profiles from different workers [`merge`](PhaseProfiler::merge)
//! commutatively (plain per-phase adds), the same fold contract the lab's
//! `MetricsFold` obeys — so a parallel sweep's aggregate profile is
//! order-independent even though the numbers themselves are wall-clock.
//! Rendered documents carry the [`PROF_SCHEMA`] marker; wall time lives
//! only in these artifacts, never in simulator reports.

use std::time::Instant;

/// Schema identifier stamped into rendered profile documents.
pub const PROF_SCHEMA: &str = "lbica-prof/v1";

/// Number of phases in the fixed vocabulary.
pub const PHASE_COUNT: usize = 7;

/// One subsystem of the simulator hot loop, as carved up for attribution.
///
/// The discriminants are array indices into the profiler's accumulators;
/// the order is fixed and documents render phases in this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Popping events off the queue and feeding interval arrivals in.
    EventQueue = 0,
    /// The cache module's datapath decision (`access_into`).
    CacheMap = 1,
    /// Device stations: enqueue fan-out, dispatch, completion bookkeeping.
    DeviceModel = 2,
    /// The per-interval controller consult and its bypass application.
    Controller = 3,
    /// Committing deferred promotion/demotion moves (tiered runs only).
    TierMovement = 4,
    /// Application request tracking (register / complete).
    Tracker = 5,
    /// Interval measurement gathering and final report assembly.
    Report = 6,
}

impl Phase {
    /// Every phase, in rendering order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::EventQueue,
        Phase::CacheMap,
        Phase::DeviceModel,
        Phase::Controller,
        Phase::TierMovement,
        Phase::Tracker,
        Phase::Report,
    ];

    /// The accumulator index of this phase.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The snake_case name used in documents and tables.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::EventQueue => "event_queue",
            Phase::CacheMap => "cache_map",
            Phase::DeviceModel => "device_model",
            Phase::Controller => "controller",
            Phase::TierMovement => "tier_movement",
            Phase::Tracker => "tracker",
            Phase::Report => "report",
        }
    }
}

/// The instrumentation point the simulator hot loop writes to.
///
/// `mark()` opens a region, `record(phase, mark)` closes it and attributes
/// the elapsed time. The associated `Mark` type lets [`NoProf`] use `()` —
/// no clock is read at all when profiling is off.
pub trait PhaseSink {
    /// An opaque begin-of-region stamp.
    type Mark: Copy;

    /// Opens a timed region.
    fn mark(&mut self) -> Self::Mark;

    /// Closes the region opened at `mark`, attributing it to `phase`.
    fn record(&mut self, phase: Phase, mark: Self::Mark);
}

/// The profiler-off sink: zero-sized, every method an empty inline body.
///
/// The hot loop is generic over [`PhaseSink`]; its `NoProf`
/// monomorphization is the code the simulator had before profiling
/// existed, so the unprofiled path pays nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProf;

impl PhaseSink for NoProf {
    type Mark = ();

    #[inline(always)]
    fn mark(&mut self) -> Self::Mark {}

    #[inline(always)]
    fn record(&mut self, _phase: Phase, _mark: Self::Mark) {}
}

/// Accumulated wall-time and call counts per [`Phase`].
///
/// Attach one to a run via `Simulation::with_profiler`, or let the lab
/// fold per-worker profilers into one (`ProfileFold`). Totals add
/// commutatively, so the merged profile of a parallel sweep is independent
/// of worker count and claim order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfiler {
    total_ns: [u64; PHASE_COUNT],
    calls: [u64; PHASE_COUNT],
}

impl PhaseProfiler {
    /// A profiler with all accumulators zeroed.
    pub fn new() -> Self {
        PhaseProfiler::default()
    }

    /// Total nanoseconds attributed to `phase`.
    pub const fn total_ns(&self, phase: Phase) -> u64 {
        self.total_ns[phase.index()]
    }

    /// Number of regions recorded against `phase`.
    pub const fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase.index()]
    }

    /// Nanoseconds attributed across all phases.
    pub fn grand_total_ns(&self) -> u64 {
        self.total_ns.iter().sum()
    }

    /// Regions recorded across all phases.
    pub fn grand_total_calls(&self) -> u64 {
        self.calls.iter().sum()
    }

    /// Folds `other`'s accumulators into this profiler. Plain per-phase
    /// adds: commutative and associative, so any fold order yields the
    /// same aggregate (the `MetricsFold` contract).
    pub fn merge(&mut self, other: &PhaseProfiler) {
        for i in 0..PHASE_COUNT {
            self.total_ns[i] += other.total_ns[i];
            self.calls[i] += other.calls[i];
        }
    }

    /// Renders the [`PROF_SCHEMA`] JSON document. The *structure* is fully
    /// deterministic — fixed phase order, every phase always present — only
    /// the measured values vary run to run.
    pub fn render_json(&self, label: &str) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{PROF_SCHEMA}\",");
        let _ = writeln!(out, "  \"label\": \"{}\",", crate::escape::json(label));
        let _ = writeln!(out, "  \"total_ns\": {},", self.grand_total_ns());
        let _ = writeln!(out, "  \"total_calls\": {},", self.grand_total_calls());
        let _ = writeln!(out, "  \"phases\": [");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let total = self.total_ns(*phase);
            let calls = self.calls(*phase);
            let mean = if calls == 0 { 0.0 } else { total as f64 / calls as f64 };
            let comma = if i + 1 < PHASE_COUNT { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"phase\": \"{}\", \"total_ns\": {}, \"calls\": {}, \"mean_ns\": {:.1}}}{}",
                phase.name(),
                total,
                calls,
                mean,
                comma
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Renders the human-readable self-time table (for stderr), phases
    /// sorted by total time descending.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let grand = self.grand_total_ns();
        let mut rows: Vec<Phase> = Phase::ALL.to_vec();
        // Stable sort + fixed tie-break on the enum order keeps the table
        // deterministic even when two phases measure identically.
        rows.sort_by_key(|p| std::cmp::Reverse(self.total_ns(*p)));
        let mut out = String::with_capacity(640);
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12} {:>12} {:>7}",
            "phase", "total_ms", "calls", "mean_ns", "share"
        );
        for phase in rows {
            let total = self.total_ns(phase);
            let calls = self.calls(phase);
            let mean = if calls == 0 { 0.0 } else { total as f64 / calls as f64 };
            let share = if grand == 0 { 0.0 } else { 100.0 * total as f64 / grand as f64 };
            let _ = writeln!(
                out,
                "{:<14} {:>12.3} {:>12} {:>12.1} {:>6.1}%",
                phase.name(),
                total as f64 / 1e6,
                calls,
                mean,
                share
            );
        }
        out
    }
}

impl PhaseSink for PhaseProfiler {
    type Mark = Instant;

    #[inline]
    fn mark(&mut self) -> Self::Mark {
        Instant::now()
    }

    #[inline]
    fn record(&mut self, phase: Phase, mark: Self::Mark) {
        let i = phase.index();
        self.total_ns[i] += mark.elapsed().as_nanos() as u64;
        self.calls[i] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_match_rendering_order() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
    }

    #[test]
    fn recording_accumulates_time_and_calls() {
        let mut prof = PhaseProfiler::new();
        for _ in 0..3 {
            let mark = prof.mark();
            prof.record(Phase::CacheMap, mark);
        }
        assert_eq!(prof.calls(Phase::CacheMap), 3);
        assert_eq!(prof.calls(Phase::Report), 0);
        assert_eq!(prof.grand_total_calls(), 3);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = PhaseProfiler::new();
        let mut b = PhaseProfiler::new();
        a.total_ns[0] = 100;
        a.calls[0] = 2;
        b.total_ns[0] = 50;
        b.calls[0] = 1;
        b.total_ns[6] = 7;
        b.calls[6] = 7;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_ns(Phase::EventQueue), 150);
        assert_eq!(ab.calls(Phase::EventQueue), 3);
        assert_eq!(ab.calls(Phase::Report), 7);
    }

    #[test]
    fn json_document_carries_schema_and_every_phase() {
        let mut prof = PhaseProfiler::new();
        let mark = prof.mark();
        prof.record(Phase::DeviceModel, mark);
        let doc = prof.render_json("tiny");
        assert!(doc.contains("\"schema\": \"lbica-prof/v1\""));
        assert!(doc.contains("\"label\": \"tiny\""));
        for phase in Phase::ALL {
            assert!(doc.contains(&format!("\"phase\": \"{}\"", phase.name())));
        }
        assert_eq!(doc.matches("\"phase\":").count(), PHASE_COUNT);
    }

    #[test]
    fn table_sorts_by_self_time_descending() {
        let mut prof = PhaseProfiler::new();
        prof.total_ns[Phase::Report.index()] = 10;
        prof.calls[Phase::Report.index()] = 1;
        prof.total_ns[Phase::CacheMap.index()] = 1000;
        prof.calls[Phase::CacheMap.index()] = 4;
        let table = prof.render_table();
        let cache_at = table.find("cache_map").expect("cache_map row");
        let report_at = table.find("report").expect("report row");
        assert!(cache_at < report_at, "the hotter phase renders first");
    }

    #[test]
    fn noprof_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoProf>(), 0);
        let mut sink = NoProf;
        #[allow(clippy::let_unit_value)]
        let mark = sink.mark();
        sink.record(Phase::EventQueue, mark);
    }
}
