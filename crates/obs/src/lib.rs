//! Observability substrate for the LBICA reproduction.
//!
//! The source paper is at heart an observability loop: `iostat`/`blktrace`
//! monitors feed a controller that reacts to queue buildup. This crate gives
//! the reproduction the same introspection for itself, under one hard rule —
//! the **determinism contract**: attaching any instrument from this crate to
//! a simulation or sweep must never change its reports. Telemetry is
//! out-of-band; wall-clock time lives only in telemetry artifacts, never in
//! simulator output.
//!
//! Three pieces:
//!
//! - [`MetricsRegistry`] — counters, gauges and latency histograms behind
//!   index handles with interned `&'static str` names. Updating an
//!   instrument is an array index plus an integer op: no allocation, no
//!   locking, no hashing on the hot path. Snapshots render to Prometheus
//!   text or JSON.
//! - [`TraceRing`] — a bounded ring buffer of structured simulation events
//!   stamped in *sim-time*, with deterministic 1-in-N sampling and an
//!   exporter to Chrome trace-event JSON ([`chrome::render`]) loadable in
//!   Perfetto.
//! - [`SimObserver`] — the facade the simulator runners talk to: one
//!   registry plus one ring with pre-registered instruments for the event
//!   vocabulary of the sim (interval rollover, burst, policy change,
//!   bypass/spill/promotion/demotion, queue high-water marks).
//! - [`PhaseProfiler`] ([`prof`]) — wall-time attribution of the hot loop
//!   itself across a fixed phase vocabulary, compiled to a no-op
//!   ([`NoProf`]) when absent. Profiles merge commutatively across sweep
//!   workers and render to `lbica-prof/v1` documents.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chrome;
pub mod escape;
pub mod metrics;
pub mod observer;
pub mod prof;
pub mod ring;
pub mod validate;

pub use metrics::{
    CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot, METRICS_SCHEMA,
};
pub use observer::{QueueTier, SimObserver};
pub use prof::{NoProf, Phase, PhaseProfiler, PhaseSink, PHASE_COUNT, PROF_SCHEMA};
pub use ring::{SmallLabel, TraceEvent, TraceEventKind, TraceRing};
