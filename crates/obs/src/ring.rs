//! Bounded trace ring buffer over structured simulation events.
//!
//! Events are stamped in **sim-time** (microseconds on the simulated
//! clock), never wall-clock, so a trace is a deterministic function of the
//! simulation inputs. The ring is fixed-capacity: recording is O(1), old
//! events are overwritten, and an optional 1-in-N sampling rate thins the
//! stream deterministically (a modulus over the offer counter, no RNG) so
//! full-rate tracing can be dialed down without perturbing anything.

/// A small fixed-capacity inline string, so [`TraceEvent`] stays `Copy` and
/// recording a label never allocates.
///
/// Holds up to 23 bytes of UTF-8; longer inputs are truncated at a char
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmallLabel {
    buf: [u8; 23],
    len: u8,
}

impl SmallLabel {
    /// Builds a label from a string, truncating to the inline capacity at a
    /// character boundary.
    pub fn new(s: &str) -> Self {
        let mut buf = [0u8; 23];
        let mut len = s.len().min(buf.len());
        while len > 0 && !s.is_char_boundary(len) {
            len -= 1;
        }
        buf[..len].copy_from_slice(&s.as_bytes()[..len]);
        SmallLabel { buf, len: len as u8 }
    }

    /// The stored text.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len as usize]).expect("label stores valid UTF-8")
    }
}

impl std::fmt::Display for SmallLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happened, with event-specific payload. All variants are `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// An interval boundary was crossed; carries per-tier completion counts.
    IntervalRollover {
        /// Interval index that just finished.
        interval: u32,
        /// Requests completed at the cache tier during the interval.
        cache_completed: u64,
        /// Requests completed at the disk tier during the interval.
        disk_completed: u64,
    },
    /// The controller flagged the interval as a burst.
    BurstDetected {
        /// Interval index.
        interval: u32,
    },
    /// The write policy changed at an interval boundary.
    PolicyChange {
        /// Interval index at which the new policy takes effect.
        interval: u32,
        /// Human-readable policy label (composite for tiered hierarchies).
        policy: SmallLabel,
    },
    /// Requests were bypassed (or spill-moved) away from the cache queue.
    Bypass {
        /// Interval index.
        interval: u32,
        /// Number of requests moved.
        requests: u64,
    },
    /// Tail writes were spilled to a lower cache tier.
    SpillWrites {
        /// Interval index.
        interval: u32,
        /// Number of requests spilled.
        requests: u64,
    },
    /// Tail reads were spilled to a lower cache tier.
    SpillReads {
        /// Interval index.
        interval: u32,
        /// Number of requests spilled.
        requests: u64,
    },
    /// Blocks promoted into a higher tier during the interval.
    Promotions {
        /// Interval index.
        interval: u32,
        /// Number of blocks promoted.
        blocks: u64,
    },
    /// Blocks demoted into a lower tier during the interval.
    Demotions {
        /// Interval index.
        interval: u32,
        /// Number of blocks demoted.
        blocks: u64,
    },
    /// Per-interval queue-depth high-water mark for one tier.
    QueueHighWater {
        /// Interval index.
        interval: u32,
        /// Tier label (`"cache"` / `"disk"`).
        tier: SmallLabel,
        /// Peak queue depth observed during the interval.
        depth: u64,
    },
    /// A controller decision with its Eq. 1 inputs.
    ControllerDecision {
        /// Interval index the decision was taken at.
        interval: u32,
        /// Cache-tier queueing time fed to the detector (µs).
        cache_qtime_us: u64,
        /// Disk-tier queueing time fed to the detector (µs).
        disk_qtime_us: u64,
        /// Whether the detector flagged a burst.
        burst: bool,
        /// Workload group label assigned by the characterizer.
        group: SmallLabel,
    },
}

/// One trace event: a sim-time stamp, an optional duration and a kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sim-time of the event start, µs since simulation start.
    pub ts_us: u64,
    /// Duration in sim-µs; zero for instantaneous events.
    pub dur_us: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// A bounded ring buffer of [`TraceEvent`]s with deterministic sampling.
///
/// ```
/// use lbica_obs::{TraceEvent, TraceEventKind, TraceRing};
///
/// let mut ring = TraceRing::new(2);
/// for i in 0..5 {
///     ring.record(TraceEvent {
///         ts_us: i * 100,
///         dur_us: 0,
///         kind: TraceEventKind::BurstDetected { interval: i as u32 },
///     });
/// }
/// // Capacity 2: only the last two events survive, oldest first.
/// let kept: Vec<u64> = ring.iter().map(|e| e.ts_us).collect();
/// assert_eq!(kept, vec![300, 400]);
/// assert_eq!(ring.overwritten(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct TraceRing {
    events: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    offered: u64,
    recorded: u64,
    sample_every: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events (minimum 1),
    /// recording every offered event.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            events: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            head: 0,
            offered: 0,
            recorded: 0,
            sample_every: 1,
        }
    }

    /// Sets deterministic 1-in-`n` sampling: of every `n` offered events the
    /// first is kept, the rest dropped. `n` is clamped to at least 1.
    pub fn with_sampling(mut self, n: u64) -> Self {
        self.sample_every = n.max(1);
        self
    }

    /// The configured sampling period (1 = record everything).
    pub const fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Offers an event to the ring. Returns `true` if it was kept (i.e. it
    /// survived sampling — it may still be overwritten later).
    pub fn record(&mut self, event: TraceEvent) -> bool {
        self.offered += 1;
        if !(self.offered - 1).is_multiple_of(self.sample_every) {
            return false;
        }
        self.recorded += 1;
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
        }
        self.head = (self.head + 1) % self.capacity;
        true
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum number of events the ring can hold.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events offered via [`TraceRing::record`], kept or not.
    pub const fn offered(&self) -> u64 {
        self.offered
    }

    /// Events that passed sampling (kept at the time of recording).
    pub const fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events dropped by sampling.
    pub const fn sampled_out(&self) -> u64 {
        self.offered - self.recorded
    }

    /// Recorded events later overwritten by newer ones.
    pub fn overwritten(&self) -> u64 {
        self.recorded - self.events.len() as u64
    }

    /// Iterates over held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let split = if self.events.len() < self.capacity { 0 } else { self.head };
        self.events[split..].iter().chain(self.events[..split].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            dur_us: 0,
            kind: TraceEventKind::BurstDetected { interval: ts as u32 },
        }
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut ring = TraceRing::new(3);
        for t in 0..3 {
            assert!(ring.record(ev(t)));
        }
        assert_eq!(ring.iter().map(|e| e.ts_us).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(ring.overwritten(), 0);

        for t in 3..7 {
            ring.record(ev(t));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.iter().map(|e| e.ts_us).collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(ring.overwritten(), 4);
        assert_eq!(ring.recorded(), 7);
    }

    #[test]
    fn wraparound_at_exact_capacity_boundary() {
        let mut ring = TraceRing::new(2);
        ring.record(ev(10));
        ring.record(ev(20));
        // Exactly full, head back at 0: next write replaces the oldest.
        ring.record(ev(30));
        assert_eq!(ring.iter().map(|e| e.ts_us).collect::<Vec<_>>(), vec![20, 30]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(ev(1));
        ring.record(ev(2));
        assert_eq!(ring.iter().map(|e| e.ts_us).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn sampling_keeps_every_nth_deterministically() {
        let mut kept_a = Vec::new();
        let mut kept_b = Vec::new();
        for kept in [&mut kept_a, &mut kept_b] {
            let mut ring = TraceRing::new(100).with_sampling(3);
            for t in 0..10 {
                if ring.record(ev(t)) {
                    kept.push(t);
                }
            }
            assert_eq!(ring.sampled_out(), 10 - kept.len() as u64);
        }
        // Same inputs, same decisions: sampling is counter-based, not random.
        assert_eq!(kept_a, kept_b);
        assert_eq!(kept_a, vec![0, 3, 6, 9]);
    }

    #[test]
    fn sampling_of_one_keeps_everything() {
        let mut ring = TraceRing::new(10).with_sampling(0);
        assert_eq!(ring.sample_every(), 1);
        for t in 0..5 {
            assert!(ring.record(ev(t)));
        }
        assert_eq!(ring.sampled_out(), 0);
    }

    #[test]
    fn small_label_truncates_at_char_boundary() {
        assert_eq!(SmallLabel::new("short").as_str(), "short");
        let long = "abcdefghijklmnopqrstuvwxyz";
        assert_eq!(SmallLabel::new(long).as_str(), &long[..23]);
        // 22 ASCII bytes then a 3-byte char: must truncate before the char.
        let multi = format!("{}\u{20AC}", "a".repeat(22));
        assert_eq!(SmallLabel::new(&multi).as_str(), "a".repeat(22));
    }
}
