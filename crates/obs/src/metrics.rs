//! Deterministic metrics registry.
//!
//! Instruments are registered once (cold path) against interned
//! `&'static str` names and returned as index handles; every subsequent
//! update is a `Vec` index plus an integer operation — no allocation,
//! hashing or locking on the hot path. Snapshots are rendered sorted by
//! instrument name so output is independent of registration order, and all
//! stored values are integers so folding metrics from parallel workers is
//! associative and commutative (the determinism contract for sweeps).

use lbica_storage::histogram::LatencyHistogram;
use lbica_storage::time::SimDuration;

use crate::escape;

/// Schema identifier embedded in JSON metrics snapshots.
pub const METRICS_SCHEMA: &str = "lbica-metrics/v1";

/// Handle to a registered counter (monotonically increasing `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge (last-written / high-water `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Clone)]
struct Scalar {
    name: &'static str,
    help: &'static str,
    value: u64,
}

#[derive(Debug, Clone)]
struct Hist {
    name: &'static str,
    help: &'static str,
    values: LatencyHistogram,
}

/// A registry of named counters, gauges and histograms.
///
/// ```
/// use lbica_obs::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// let requests = reg.counter("lbica_requests_total", "requests issued");
/// reg.add(requests, 3);
/// reg.add(requests, 2);
/// assert_eq!(reg.counter_value(requests), 5);
/// assert!(reg.snapshot().render_prometheus().contains("lbica_requests_total 5"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<Scalar>,
    gauges: Vec<Scalar>,
    histograms: Vec<Hist>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or looks up) a counter by name. Re-registering an existing
    /// name returns the original handle; the first help string wins.
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|c| c.name == name) {
            return CounterId(i);
        }
        self.counters.push(Scalar { name, help, value: 0 });
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or looks up) a gauge by name.
    pub fn gauge(&mut self, name: &'static str, help: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|g| g.name == name) {
            return GaugeId(i);
        }
        self.gauges.push(Scalar { name, help, value: 0 });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or looks up) a latency histogram by name.
    pub fn histogram(&mut self, name: &'static str, help: &'static str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|h| h.name == name) {
            return HistogramId(i);
        }
        self.histograms.push(Hist { name, help, values: LatencyHistogram::new() });
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `delta` to a counter. Hot-path safe: an index and an add.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].value += delta;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Sets a gauge to `value` (last write wins).
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: u64) {
        self.gauges[id.0].value = value;
    }

    /// Raises a gauge to `value` if it is higher (high-water mark). Unlike
    /// [`MetricsRegistry::set`], this is commutative, so it is safe to fold
    /// from parallel workers.
    #[inline]
    pub fn set_max(&mut self, id: GaugeId, value: u64) {
        let slot = &mut self.gauges[id.0].value;
        *slot = (*slot).max(value);
    }

    /// Records one latency sample into a histogram.
    #[inline]
    pub fn record(&mut self, id: HistogramId, latency: SimDuration) {
        self.histograms[id.0].values.record(latency);
    }

    /// Records one latency sample given in microseconds.
    #[inline]
    pub fn record_us(&mut self, id: HistogramId, us: u64) {
        self.histograms[id.0].values.record_us(us);
    }

    /// Merges a whole histogram into the registered one.
    pub fn merge_histogram(&mut self, id: HistogramId, other: &LatencyHistogram) {
        self.histograms[id.0].values.merge(other);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0].value
    }

    /// Read access to a registered histogram.
    pub fn histogram_values(&self, id: HistogramId) -> &LatencyHistogram {
        &self.histograms[id.0].values
    }

    /// Folds another registry into this one, matching instruments by name
    /// and registering any that are missing. Counters add, gauges take the
    /// maximum (high-water semantics), histograms merge — all commutative,
    /// so the merged result is independent of worker scheduling.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for c in &other.counters {
            let id = self.counter(c.name, c.help);
            self.add(id, c.value);
        }
        for g in &other.gauges {
            let id = self.gauge(g.name, g.help);
            self.set_max(id, g.value);
        }
        for h in &other.histograms {
            let id = self.histogram(h.name, h.help);
            self.merge_histogram(id, &h.values);
        }
    }

    /// Takes a point-in-time snapshot, sorted by instrument name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSample> = self
            .counters
            .iter()
            .map(|c| CounterSample { name: c.name, help: c.help, value: c.value })
            .collect();
        counters.sort_by_key(|c| c.name);
        let mut gauges: Vec<GaugeSample> = self
            .gauges
            .iter()
            .map(|g| GaugeSample { name: g.name, help: g.help, value: g.value })
            .collect();
        gauges.sort_by_key(|g| g.name);
        let mut histograms: Vec<HistogramSample> = self
            .histograms
            .iter()
            .map(|h| HistogramSample {
                name: h.name,
                help: h.help,
                count: h.values.count(),
                sum_us: h.values.total_us(),
                min_us: h.values.min().as_micros(),
                max_us: h.values.max().as_micros(),
                p50_us: h.values.percentile(50.0).as_micros(),
                p95_us: h.values.percentile(95.0).as_micros(),
                p99_us: h.values.percentile(99.0).as_micros(),
            })
            .collect();
        histograms.sort_by_key(|h| h.name);
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// One counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Instrument name.
    pub name: &'static str,
    /// Help text.
    pub help: &'static str,
    /// Counter value.
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Instrument name.
    pub name: &'static str,
    /// Help text.
    pub help: &'static str,
    /// Gauge value.
    pub value: u64,
}

/// One histogram in a snapshot, summarized to integer microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Instrument name.
    pub name: &'static str,
    /// Help text.
    pub help: &'static str,
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples (µs).
    pub sum_us: u64,
    /// Smallest sample (µs), zero when empty.
    pub min_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
    /// 50th percentile (µs, bucketed upper bound).
    pub p50_us: u64,
    /// 95th percentile (µs, bucketed upper bound).
    pub p95_us: u64,
    /// 99th percentile (µs, bucketed upper bound).
    pub p99_us: u64,
}

/// A point-in-time view of a [`MetricsRegistry`], sorted by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Histograms are rendered as summaries (`{quantile="..."}` series plus
    /// `_sum`/`_count`), which is what a scrape endpoint would serve.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!("# HELP {} {}\n", c.name, escape::prometheus_help(c.help)));
            out.push_str(&format!("# TYPE {} counter\n", c.name));
            out.push_str(&format!("{} {}\n", c.name, c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("# HELP {} {}\n", g.name, escape::prometheus_help(g.help)));
            out.push_str(&format!("# TYPE {} gauge\n", g.name));
            out.push_str(&format!("{} {}\n", g.name, g.value));
        }
        for h in &self.histograms {
            out.push_str(&format!("# HELP {} {}\n", h.name, escape::prometheus_help(h.help)));
            out.push_str(&format!("# TYPE {} summary\n", h.name));
            out.push_str(&format!("{}{{quantile=\"0.5\"}} {}\n", h.name, h.p50_us));
            out.push_str(&format!("{}{{quantile=\"0.95\"}} {}\n", h.name, h.p95_us));
            out.push_str(&format!("{}{{quantile=\"0.99\"}} {}\n", h.name, h.p99_us));
            out.push_str(&format!("{}_sum {}\n", h.name, h.sum_us));
            out.push_str(&format!("{}_count {}\n", h.name, h.count));
        }
        out
    }

    /// Renders the snapshot as a JSON document (schema [`METRICS_SCHEMA`]).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", escape::json(METRICS_SCHEMA)));
        out.push_str("  \"counters\": [\n");
        for (i, c) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {}}}{comma}\n",
                escape::json(c.name),
                c.value
            ));
        }
        out.push_str("  ],\n  \"gauges\": [\n");
        for (i, g) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {}}}{comma}\n",
                escape::json(g.name),
                g.value
            ));
        }
        out.push_str("  ],\n  \"histograms\": [\n");
        for (i, h) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"sum_us\": {}, \"min_us\": {}, \
                 \"max_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{comma}\n",
                escape::json(h.name),
                h.count,
                h.sum_us,
                h.min_us,
                h.max_us,
                h.p50_us,
                h.p95_us,
                h.p99_us
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_interns_by_name() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("lbica_x_total", "first help");
        let b = reg.counter("lbica_x_total", "second help ignored");
        assert_eq!(a, b);
        reg.inc(a);
        reg.add(b, 4);
        assert_eq!(reg.counter_value(a), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].help, "first help");
    }

    #[test]
    fn gauges_set_and_high_water() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("lbica_depth", "queue depth");
        reg.set(g, 10);
        reg.set_max(g, 7);
        assert_eq!(reg.gauge_value(g), 10);
        reg.set_max(g, 30);
        assert_eq!(reg.gauge_value(g), 30);
    }

    #[test]
    fn snapshot_is_sorted_by_name_regardless_of_registration_order() {
        let mut reg = MetricsRegistry::new();
        reg.counter("lbica_zeta_total", "");
        reg.counter("lbica_alpha_total", "");
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "lbica_alpha_total");
        assert_eq!(snap.counters[1].name, "lbica_zeta_total");
    }

    #[test]
    fn merge_is_commutative() {
        let build = |c: u64, g: u64, lat: &[u64]| {
            let mut reg = MetricsRegistry::new();
            let id = reg.counter("lbica_ops_total", "ops");
            reg.add(id, c);
            let gid = reg.gauge("lbica_peak", "peak");
            reg.set_max(gid, g);
            let h = reg.histogram("lbica_lat_us", "latency");
            for &us in lat {
                reg.record_us(h, us);
            }
            reg
        };
        let a = build(3, 9, &[100, 200]);
        let b = build(5, 4, &[400]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.snapshot().counters[0].value, 8);
        assert_eq!(ab.snapshot().gauges[0].value, 9);
        assert_eq!(ab.snapshot().histograms[0].count, 3);
    }

    #[test]
    fn prometheus_rendering_escapes_help_text() {
        let mut reg = MetricsRegistry::new();
        reg.counter("lbica_weird_total", "help with \\ backslash\nand newline");
        let text = reg.snapshot().render_prometheus();
        assert!(
            text.contains("# HELP lbica_weird_total help with \\\\ backslash\\nand newline\n"),
            "unescaped help in: {text}"
        );
        assert!(text.contains("# TYPE lbica_weird_total counter\n"));
        assert!(text.contains("lbica_weird_total 0\n"));
    }

    #[test]
    fn prometheus_histogram_renders_summary_series() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lbica_lat_us", "latency");
        for us in [100, 200, 300] {
            reg.record_us(h, us);
        }
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE lbica_lat_us summary\n"));
        assert!(text.contains("lbica_lat_us{quantile=\"0.5\"}"));
        assert!(text.contains("lbica_lat_us_sum 600\n"));
        assert!(text.contains("lbica_lat_us_count 3\n"));
    }

    #[test]
    fn json_rendering_is_schema_tagged_and_balanced() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("lbica_ops_total", "ops");
        reg.add(c, 7);
        let h = reg.histogram("lbica_lat_us", "latency");
        reg.record_us(h, 1_000);
        let json = reg.snapshot().render_json();
        assert!(json.contains(&format!("\"schema\": \"{METRICS_SCHEMA}\"")));
        assert!(json.contains("\"name\": \"lbica_ops_total\", \"value\": 7"));
        assert!(json.contains("\"count\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
