//! Exporter from a [`TraceRing`] to Chrome trace-event JSON.
//!
//! The output is the object-form trace format (`{"traceEvents": [...]}`)
//! understood by `chrome://tracing` and <https://ui.perfetto.dev>: load the
//! file and the simulation renders as a timeline — interval spans on one
//! track, queue-depth counters above it, controller activity (bursts,
//! policy changes, spills) on a second track. Timestamps are sim-time
//! microseconds, which is exactly the unit the trace format expects.

use crate::escape;
use crate::ring::{TraceEvent, TraceEventKind, TraceRing};

/// Process id used for all emitted events.
const PID: u32 = 1;
/// Thread id for the interval/queue-depth track.
const TID_INTERVALS: u32 = 1;
/// Thread id for the controller-activity track.
const TID_CONTROLLER: u32 = 2;

/// Renders the ring as a Chrome trace-event JSON document.
///
/// `label` names the trace (shown as the process name in Perfetto) —
/// typically the sweep cell id.
pub fn render(ring: &TraceRing, label: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("\"displayTimeUnit\": \"ms\",\n");
    out.push_str(&format!(
        "\"otherData\": {{\"generator\": \"lbica-obs\", \"cell\": \"{}\", \
         \"sampled_out\": {}, \"overwritten\": {}}},\n",
        escape::json(label),
        ring.sampled_out(),
        ring.overwritten()
    ));
    out.push_str("\"traceEvents\": [\n");
    let mut events = vec![
        format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {PID}, \
             \"args\": {{\"name\": \"lbica: {}\"}}}}",
            escape::json(label)
        ),
        format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {PID}, \
             \"tid\": {TID_INTERVALS}, \"args\": {{\"name\": \"intervals\"}}}}"
        ),
        format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {PID}, \
             \"tid\": {TID_CONTROLLER}, \"args\": {{\"name\": \"controller\"}}}}"
        ),
    ];
    events.extend(ring.iter().map(render_event));
    out.push_str(&events.join(",\n"));
    out.push_str("\n]\n}\n");
    out
}

fn render_event(event: &TraceEvent) -> String {
    let ts = event.ts_us;
    match &event.kind {
        TraceEventKind::IntervalRollover { interval, cache_completed, disk_completed } => format!(
            "{{\"name\": \"interval {interval}\", \"ph\": \"X\", \"ts\": {ts}, \
             \"dur\": {}, \"pid\": {PID}, \"tid\": {TID_INTERVALS}, \
             \"args\": {{\"cache_completed\": {cache_completed}, \
             \"disk_completed\": {disk_completed}}}}}",
            event.dur_us
        ),
        TraceEventKind::BurstDetected { interval } => format!(
            "{{\"name\": \"burst\", \"ph\": \"i\", \"ts\": {ts}, \"pid\": {PID}, \
             \"tid\": {TID_CONTROLLER}, \"s\": \"p\", \
             \"args\": {{\"interval\": {interval}}}}}"
        ),
        TraceEventKind::PolicyChange { interval, policy } => format!(
            "{{\"name\": \"policy \\u2192 {}\", \"ph\": \"i\", \"ts\": {ts}, \
             \"pid\": {PID}, \"tid\": {TID_CONTROLLER}, \"s\": \"t\", \
             \"args\": {{\"interval\": {interval}}}}}",
            escape::json(policy.as_str())
        ),
        TraceEventKind::Bypass { interval, requests } => format!(
            "{{\"name\": \"bypass\", \"ph\": \"i\", \"ts\": {ts}, \"pid\": {PID}, \
             \"tid\": {TID_CONTROLLER}, \"s\": \"t\", \
             \"args\": {{\"interval\": {interval}, \"requests\": {requests}}}}}"
        ),
        TraceEventKind::SpillWrites { interval, requests } => format!(
            "{{\"name\": \"spill writes\", \"ph\": \"i\", \"ts\": {ts}, \"pid\": {PID}, \
             \"tid\": {TID_CONTROLLER}, \"s\": \"t\", \
             \"args\": {{\"interval\": {interval}, \"requests\": {requests}}}}}"
        ),
        TraceEventKind::SpillReads { interval, requests } => format!(
            "{{\"name\": \"spill reads\", \"ph\": \"i\", \"ts\": {ts}, \"pid\": {PID}, \
             \"tid\": {TID_CONTROLLER}, \"s\": \"t\", \
             \"args\": {{\"interval\": {interval}, \"requests\": {requests}}}}}"
        ),
        TraceEventKind::Promotions { interval, blocks } => format!(
            "{{\"name\": \"promotions\", \"ph\": \"i\", \"ts\": {ts}, \"pid\": {PID}, \
             \"tid\": {TID_CONTROLLER}, \"s\": \"t\", \
             \"args\": {{\"interval\": {interval}, \"blocks\": {blocks}}}}}"
        ),
        TraceEventKind::Demotions { interval, blocks } => format!(
            "{{\"name\": \"demotions\", \"ph\": \"i\", \"ts\": {ts}, \"pid\": {PID}, \
             \"tid\": {TID_CONTROLLER}, \"s\": \"t\", \
             \"args\": {{\"interval\": {interval}, \"blocks\": {blocks}}}}}"
        ),
        TraceEventKind::QueueHighWater { interval, tier, depth } => format!(
            "{{\"name\": \"{} queue depth\", \"ph\": \"C\", \"ts\": {ts}, \
             \"pid\": {PID}, \"tid\": {TID_INTERVALS}, \
             \"args\": {{\"depth\": {depth}, \"interval\": {interval}}}}}",
            escape::json(tier.as_str())
        ),
        TraceEventKind::ControllerDecision {
            interval,
            cache_qtime_us,
            disk_qtime_us,
            burst,
            group,
        } => {
            format!(
                "{{\"name\": \"decision\", \"ph\": \"i\", \"ts\": {ts}, \"pid\": {PID}, \
                 \"tid\": {TID_CONTROLLER}, \"s\": \"t\", \
                 \"args\": {{\"interval\": {interval}, \"cache_qtime_us\": {cache_qtime_us}, \
                 \"disk_qtime_us\": {disk_qtime_us}, \"burst\": {burst}, \
                 \"group\": \"{}\"}}}}",
                escape::json(group.as_str())
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::SmallLabel;

    fn ring_with(kinds: Vec<(u64, u64, TraceEventKind)>) -> TraceRing {
        let mut ring = TraceRing::new(64);
        for (ts_us, dur_us, kind) in kinds {
            ring.record(TraceEvent { ts_us, dur_us, kind });
        }
        ring
    }

    #[test]
    fn renders_all_kinds_with_balanced_json() {
        let ring = ring_with(vec![
            (
                0,
                1_000_000,
                TraceEventKind::IntervalRollover {
                    interval: 0,
                    cache_completed: 10,
                    disk_completed: 4,
                },
            ),
            (1_000_000, 0, TraceEventKind::BurstDetected { interval: 0 }),
            (
                1_000_000,
                0,
                TraceEventKind::PolicyChange { interval: 1, policy: SmallLabel::new("WT") },
            ),
            (1_000_000, 0, TraceEventKind::Bypass { interval: 0, requests: 12 }),
            (1_000_000, 0, TraceEventKind::SpillWrites { interval: 0, requests: 3 }),
            (1_000_000, 0, TraceEventKind::SpillReads { interval: 0, requests: 2 }),
            (1_000_000, 0, TraceEventKind::Promotions { interval: 0, blocks: 5 }),
            (1_000_000, 0, TraceEventKind::Demotions { interval: 0, blocks: 6 }),
            (
                1_000_000,
                0,
                TraceEventKind::QueueHighWater {
                    interval: 0,
                    tier: SmallLabel::new("cache"),
                    depth: 42,
                },
            ),
            (
                1_000_000,
                0,
                TraceEventKind::ControllerDecision {
                    interval: 0,
                    cache_qtime_us: 900,
                    disk_qtime_us: 8_000,
                    burst: true,
                    group: SmallLabel::new("WriteIntensive"),
                },
            ),
        ]);
        let json = render(&ring, "tpcc/tiny/lbica/s42");
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"C\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"ph\": \"M\""));
        assert!(json.contains("\"dur\": 1000000"));
        assert!(json.contains("cache queue depth"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escapes_labels_in_names() {
        let ring = ring_with(vec![(
            0,
            0,
            TraceEventKind::PolicyChange { interval: 0, policy: SmallLabel::new("W\"B") },
        )]);
        let json = render(&ring, "cell \"quoted\"");
        assert!(json.contains("policy \\u2192 W\\\"B"), "policy label not escaped: {json}");
        assert!(json.contains("\\\"quoted\\\""), "cell label not escaped: {json}");
        // Still balanced after escaping.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_ring_renders_only_metadata() {
        let json = render(&TraceRing::new(8), "empty");
        assert!(json.contains("process_name"));
        assert!(!json.contains("\"ph\": \"X\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
