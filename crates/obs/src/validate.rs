//! Structural validators for observability artifacts.
//!
//! The vendored `serde` stub means the workspace has no general JSON
//! parser, so CI validates telemetry artifacts the same way
//! `lbica-bench`'s `perf` module validates `BENCH_sim.json`: a
//! string-aware balance check plus required schema markers and keys. The
//! checks are deliberately structural — enough to catch truncated files,
//! broken escaping and schema drift without a full parser.

use crate::metrics::METRICS_SCHEMA;
use crate::prof::{Phase, PROF_SCHEMA};

/// Schema identifier stamped on the first record of a telemetry JSONL
/// stream.
pub const TELEMETRY_SCHEMA: &str = "lbica-telemetry/v1";

/// Schema identifier stamped on `bench diff` regression reports.
///
/// The report itself is rendered by `lbica-bench`'s `diff` module; the
/// constant lives here so the validator and the renderer agree on it
/// (bench depends on obs, not the other way around).
pub const BENCH_DIFF_SCHEMA: &str = "lbica-bench-diff/v1";

/// Checks that `s` is non-empty, has balanced `{}`/`[]` outside string
/// literals, and terminates outside a string.
fn check_balanced(s: &str) -> Result<(), String> {
    if s.trim().is_empty() {
        return Err("document is empty".into());
    }
    let mut stack: Vec<char> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for ch in s.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_string = false;
            }
            continue;
        }
        match ch {
            '"' => in_string = true,
            '{' => stack.push('}'),
            '[' => stack.push(']'),
            '}' | ']' if stack.pop() != Some(ch) => {
                return Err(format!("mismatched closing bracket {ch:?}"));
            }
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string literal".into());
    }
    if !stack.is_empty() {
        return Err(format!("unbalanced brackets ({} unclosed at end)", stack.len()));
    }
    Ok(())
}

/// Summary of a validated metrics snapshot document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsStats {
    /// Number of scalar entries (counters plus gauges).
    pub scalars: usize,
    /// Number of histogram entries.
    pub histograms: usize,
}

/// Validates a JSON metrics snapshot rendered by
/// [`MetricsSnapshot::render_json`](crate::MetricsSnapshot::render_json).
pub fn metrics_json(s: &str) -> Result<MetricsStats, String> {
    check_balanced(s)?;
    if !s.contains(&format!("\"schema\": \"{METRICS_SCHEMA}\"")) {
        return Err(format!("missing schema marker {METRICS_SCHEMA:?}"));
    }
    for key in ["\"counters\":", "\"gauges\":", "\"histograms\":"] {
        if !s.contains(key) {
            return Err(format!("missing required key {key}"));
        }
    }
    Ok(MetricsStats {
        scalars: s.matches("\"value\":").count(),
        histograms: s.matches("\"count\":").count(),
    })
}

/// Summary of a validated Chrome trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total trace events (including metadata records).
    pub events: usize,
    /// Complete ("X") span events.
    pub spans: usize,
    /// Counter ("C") events.
    pub counters: usize,
}

/// Validates a Chrome trace-event JSON document rendered by
/// [`chrome::render`](crate::chrome::render).
pub fn chrome_trace(s: &str) -> Result<TraceStats, String> {
    check_balanced(s)?;
    if !s.contains("\"traceEvents\":") {
        return Err("missing \"traceEvents\" key".into());
    }
    let events = s.matches("\"ph\":").count();
    if events == 0 {
        return Err("trace contains no events".into());
    }
    if !s.contains("\"ph\": \"M\"") {
        return Err("trace is missing metadata (process/thread name) events".into());
    }
    Ok(TraceStats {
        events,
        spans: s.matches("\"ph\": \"X\"").count(),
        counters: s.matches("\"ph\": \"C\"").count(),
    })
}

/// Summary of a validated telemetry JSONL stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryStats {
    /// Total records in the stream.
    pub records: usize,
    /// Per-cell records.
    pub cells: usize,
    /// Shard-merge records.
    pub shards: usize,
}

/// Validates a telemetry JSONL stream: every line is a balanced object
/// with a `type` tag, the stream opens with a schema-tagged `start` record
/// and closes with an `end` record.
pub fn telemetry_jsonl(s: &str) -> Result<TelemetryStats, String> {
    let lines: Vec<&str> = s.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err("telemetry stream is empty".into());
    }
    let mut stats = TelemetryStats { records: 0, cells: 0, shards: 0 };
    for (i, line) in lines.iter().enumerate() {
        check_balanced(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if !line.starts_with("{\"type\": \"") {
            return Err(format!("line {}: record has no leading type tag", i + 1));
        }
        stats.records += 1;
        if line.starts_with("{\"type\": \"cell\"") {
            stats.cells += 1;
        } else if line.starts_with("{\"type\": \"shard_merged\"") {
            stats.shards += 1;
        }
    }
    let first = lines[0];
    if !first.starts_with("{\"type\": \"start\"") {
        return Err("first record must have type \"start\"".into());
    }
    if !first.contains(&format!("\"schema\": \"{TELEMETRY_SCHEMA}\"")) {
        return Err(format!("start record is missing schema marker {TELEMETRY_SCHEMA:?}"));
    }
    if !lines[lines.len() - 1].starts_with("{\"type\": \"end\"") {
        return Err("last record must have type \"end\"".into());
    }
    Ok(stats)
}

/// Summary of a validated phase-profile document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileStats {
    /// Number of per-phase entries in the document.
    pub phases: usize,
}

/// Validates a `lbica-prof/v1` document rendered by
/// [`PhaseProfiler::render_json`](crate::PhaseProfiler::render_json):
/// balanced, schema-tagged, and carrying one entry per known phase.
pub fn profile_json(s: &str) -> Result<ProfileStats, String> {
    check_balanced(s)?;
    if !s.contains(&format!("\"schema\": \"{PROF_SCHEMA}\"")) {
        return Err(format!("missing schema marker {PROF_SCHEMA:?}"));
    }
    for key in ["\"label\":", "\"total_ns\":", "\"total_calls\":", "\"phases\":"] {
        if !s.contains(key) {
            return Err(format!("missing required key {key}"));
        }
    }
    for phase in Phase::ALL {
        if !s.contains(&format!("\"phase\": \"{}\"", phase.name())) {
            return Err(format!("missing entry for phase {:?}", phase.name()));
        }
    }
    Ok(ProfileStats { phases: s.matches("\"phase\":").count() })
}

/// Summary of a validated `bench diff` report document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchDiffStats {
    /// Per-cell delta entries in the report.
    pub cells: usize,
    /// Cells flagged as regressions beyond the tolerance.
    pub regressions: usize,
}

/// Validates a `lbica-bench-diff/v1` report rendered by `bench diff`:
/// balanced, schema-tagged, and carrying the tolerance plus at least one
/// per-cell delta entry.
pub fn bench_diff_json(s: &str) -> Result<BenchDiffStats, String> {
    check_balanced(s)?;
    if !s.contains(&format!("\"schema\": \"{BENCH_DIFF_SCHEMA}\"")) {
        return Err(format!("missing schema marker {BENCH_DIFF_SCHEMA:?}"));
    }
    for key in ["\"tolerance_pct\":", "\"regressions\":", "\"cells\":"] {
        if !s.contains(key) {
            return Err(format!("missing required key {key}"));
        }
    }
    let cells = s.matches("\"id\":").count();
    if cells == 0 {
        return Err("report contains no per-cell deltas".into());
    }
    Ok(BenchDiffStats { cells, regressions: s.matches("\"regression\": true").count() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::prof::{PhaseProfiler, PhaseSink};
    use crate::ring::{TraceEvent, TraceEventKind, TraceRing};

    #[test]
    fn accepts_rendered_metrics_snapshot() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("lbica_ops_total", "ops");
        reg.add(c, 3);
        reg.histogram("lbica_lat_us", "latency");
        let stats = metrics_json(&reg.snapshot().render_json()).expect("valid snapshot");
        assert_eq!(stats.histograms, 1);
    }

    #[test]
    fn rejects_truncated_or_untagged_metrics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("lbica_ops_total", "ops");
        let json = reg.snapshot().render_json();
        assert!(metrics_json(&json[..json.len() - 3]).is_err());
        assert!(metrics_json(&json.replace("lbica-metrics/v1", "lbica-metrics/v0")).is_err());
        assert!(metrics_json("").is_err());
    }

    #[test]
    fn accepts_rendered_chrome_trace() {
        let mut ring = TraceRing::new(8);
        ring.record(TraceEvent {
            ts_us: 0,
            dur_us: 1_000,
            kind: TraceEventKind::IntervalRollover {
                interval: 0,
                cache_completed: 1,
                disk_completed: 1,
            },
        });
        let json = crate::chrome::render(&ring, "cell");
        let stats = chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.spans, 1);
        assert!(stats.events >= 4); // 3 metadata + 1 span
    }

    #[test]
    fn rejects_broken_chrome_trace() {
        assert!(chrome_trace("{\"traceEvents\": [").is_err());
        assert!(chrome_trace("{\"notTraceEvents\": []}").is_err());
        // Balanced but event-free.
        assert!(chrome_trace("{\"traceEvents\": []}").is_err());
    }

    #[test]
    fn validates_telemetry_stream_shape() {
        let stream = format!(
            "{{\"type\": \"start\", \"schema\": \"{TELEMETRY_SCHEMA}\", \"cells\": 2}}\n\
             {{\"type\": \"cell\", \"index\": 0}}\n\
             {{\"type\": \"cell\", \"index\": 1}}\n\
             {{\"type\": \"end\", \"wall_us\": 10}}\n"
        );
        let stats = telemetry_jsonl(&stream).expect("valid stream");
        assert_eq!(stats.records, 4);
        assert_eq!(stats.cells, 2);

        // Missing end record.
        let truncated: String = stream.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(telemetry_jsonl(&truncated).is_err());
        // Wrong schema.
        assert!(telemetry_jsonl(&stream.replace("/v1", "/v0")).is_err());
        // Unbalanced line.
        assert!(telemetry_jsonl(&stream.replace("\"index\": 0}", "\"index\": 0")).is_err());
        assert!(telemetry_jsonl("").is_err());
    }

    #[test]
    fn accepts_rendered_phase_profile() {
        let mut prof = PhaseProfiler::new();
        let mark = prof.mark();
        prof.record(Phase::CacheMap, mark);
        let json = prof.render_json("tiny");
        let stats = profile_json(&json).expect("valid profile");
        assert_eq!(stats.phases, Phase::ALL.len());
    }

    #[test]
    fn rejects_broken_phase_profile() {
        let json = PhaseProfiler::new().render_json("tiny");
        assert!(profile_json(&json[..json.len() - 3]).is_err());
        assert!(profile_json(&json.replace("lbica-prof/v1", "lbica-prof/v0")).is_err());
        assert!(profile_json(&json.replace("cache_map", "cache_mop")).is_err());
        assert!(profile_json("").is_err());
    }

    #[test]
    fn validates_bench_diff_report_shape() {
        let report = format!(
            "{{\n  \"schema\": \"{BENCH_DIFF_SCHEMA}\",\n  \"tolerance_pct\": 20.0,\n  \
             \"regressions\": 1,\n  \"cells\": [\n    \
             {{\"id\": \"a\", \"regression\": false}},\n    \
             {{\"id\": \"b\", \"regression\": true}}\n  ]\n}}\n"
        );
        let stats = bench_diff_json(&report).expect("valid report");
        assert_eq!(stats.cells, 2);
        assert_eq!(stats.regressions, 1);

        assert!(bench_diff_json(&report[..report.len() - 4]).is_err());
        assert!(bench_diff_json(&report.replace("/v1", "/v0")).is_err());
        assert!(bench_diff_json(&report.replace("\"id\"", "\"di\"")).is_err());
        assert!(bench_diff_json("").is_err());
    }

    #[test]
    fn balance_checker_is_string_aware() {
        assert!(check_balanced("{\"a\": \"}{][\"}").is_ok());
        assert!(check_balanced("{\"a\": \"\\\"}\"}").is_ok());
        assert!(check_balanced("{]").is_err());
        assert!(check_balanced("{\"a").is_err());
    }
}
