//! The simulator-facing observability facade.
//!
//! [`SimObserver`] bundles one [`MetricsRegistry`] and one [`TraceRing`]
//! with pre-registered instruments for the simulator's event vocabulary.
//! The runners call its emit methods at interval granularity; with no
//! observer attached the runners skip every call, so the per-event hot loop
//! carries zero observability cost and `bench_throughput` is unaffected.
//!
//! Determinism contract: the observer only *reads* simulation state. Its
//! ring and metrics are stamped in sim-time, so two runs of the same
//! scenario produce byte-identical traces and snapshots — and a run with an
//! observer attached produces a byte-identical report to one without.

use lbica_storage::histogram::LatencyHistogram;

use crate::chrome;
use crate::metrics::{CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot};
use crate::ring::{SmallLabel, TraceEvent, TraceEventKind, TraceRing};

/// Which device tier a queue observation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueTier {
    /// The SSD cache tier (top of a tiered hierarchy).
    Cache,
    /// The backing disk tier.
    Disk,
}

impl QueueTier {
    const fn label(self) -> &'static str {
        match self {
            QueueTier::Cache => "cache",
            QueueTier::Disk => "disk",
        }
    }
}

/// Pre-registered instrument handles for the sim event vocabulary.
#[derive(Debug, Clone)]
struct Instruments {
    intervals: CounterId,
    bursts: CounterId,
    policy_changes: CounterId,
    bypassed: CounterId,
    spilled_writes: CounterId,
    spilled_reads: CounterId,
    promotions: CounterId,
    demotions: CounterId,
    events_processed: CounterId,
    app_completed: CounterId,
    cache_queue_peak: GaugeId,
    disk_queue_peak: GaugeId,
    event_queue_peak: GaugeId,
    app_latency: HistogramId,
}

fn register(reg: &mut MetricsRegistry) -> Instruments {
    Instruments {
        intervals: reg.counter("lbica_sim_intervals_total", "monitoring intervals completed"),
        bursts: reg.counter("lbica_sim_bursts_total", "intervals flagged as bursts"),
        policy_changes: reg.counter("lbica_sim_policy_changes_total", "write-policy switches"),
        bypassed: reg.counter("lbica_sim_bypassed_total", "requests bypassed around the cache"),
        spilled_writes: reg
            .counter("lbica_sim_spilled_writes_total", "tail writes spilled to lower tiers"),
        spilled_reads: reg
            .counter("lbica_sim_spilled_reads_total", "tail reads spilled to lower tiers"),
        promotions: reg.counter("lbica_sim_promotions_total", "blocks promoted between tiers"),
        demotions: reg.counter("lbica_sim_demotions_total", "blocks demoted between tiers"),
        events_processed: reg
            .counter("lbica_sim_events_processed_total", "simulator events processed"),
        app_completed: reg
            .counter("lbica_sim_app_completed_total", "application requests completed"),
        cache_queue_peak: reg.gauge("lbica_sim_cache_queue_peak", "high-water cache queue depth"),
        disk_queue_peak: reg.gauge("lbica_sim_disk_queue_peak", "high-water disk queue depth"),
        event_queue_peak: reg
            .gauge("lbica_sim_event_queue_peak", "high-water simulator event-queue depth"),
        app_latency: reg
            .histogram("lbica_sim_app_latency_us", "end-to-end application request latency"),
    }
}

/// Observer attached to one simulation run.
#[derive(Debug, Clone)]
pub struct SimObserver {
    registry: MetricsRegistry,
    ring: TraceRing,
    ids: Instruments,
}

/// Default trace-ring capacity: comfortably holds every interval-granularity
/// event of the longest sweep scenarios (a few events per interval).
const DEFAULT_RING_CAPACITY: usize = 4096;

impl SimObserver {
    /// Creates an observer with the default ring capacity and no sampling.
    pub fn new() -> Self {
        Self::with_ring(TraceRing::new(DEFAULT_RING_CAPACITY))
    }

    /// Creates an observer around a caller-configured ring (capacity,
    /// sampling rate).
    pub fn with_ring(ring: TraceRing) -> Self {
        let mut registry = MetricsRegistry::new();
        let ids = register(&mut registry);
        SimObserver { registry, ring, ids }
    }

    /// An interval boundary was crossed. `start_us`/`dur_us` locate the
    /// interval on the sim clock.
    pub fn interval_rollover(
        &mut self,
        interval: u32,
        start_us: u64,
        dur_us: u64,
        cache_completed: u64,
        disk_completed: u64,
    ) {
        self.registry.inc(self.ids.intervals);
        self.ring.record(TraceEvent {
            ts_us: start_us,
            dur_us,
            kind: TraceEventKind::IntervalRollover { interval, cache_completed, disk_completed },
        });
    }

    /// Per-interval queue-depth high-water mark for one tier.
    pub fn queue_high_water(&mut self, ts_us: u64, interval: u32, tier: QueueTier, depth: u64) {
        let gauge = match tier {
            QueueTier::Cache => self.ids.cache_queue_peak,
            QueueTier::Disk => self.ids.disk_queue_peak,
        };
        self.registry.set_max(gauge, depth);
        self.ring.record(TraceEvent {
            ts_us,
            dur_us: 0,
            kind: TraceEventKind::QueueHighWater {
                interval,
                tier: SmallLabel::new(tier.label()),
                depth,
            },
        });
    }

    /// The controller flagged the interval as a burst.
    pub fn burst(&mut self, ts_us: u64, interval: u32) {
        self.registry.inc(self.ids.bursts);
        self.ring.record(TraceEvent {
            ts_us,
            dur_us: 0,
            kind: TraceEventKind::BurstDetected { interval },
        });
    }

    /// The write policy changed, effective from `interval`.
    pub fn policy_change(&mut self, ts_us: u64, interval: u32, policy: &str) {
        self.registry.inc(self.ids.policy_changes);
        self.ring.record(TraceEvent {
            ts_us,
            dur_us: 0,
            kind: TraceEventKind::PolicyChange { interval, policy: SmallLabel::new(policy) },
        });
    }

    /// Requests were bypassed around the cache queue (no-op when zero).
    pub fn bypass(&mut self, ts_us: u64, interval: u32, requests: u64) {
        if requests == 0 {
            return;
        }
        self.registry.add(self.ids.bypassed, requests);
        self.ring.record(TraceEvent {
            ts_us,
            dur_us: 0,
            kind: TraceEventKind::Bypass { interval, requests },
        });
    }

    /// Tail writes spilled to a lower tier (no-op when zero).
    pub fn spill_writes(&mut self, ts_us: u64, interval: u32, requests: u64) {
        if requests == 0 {
            return;
        }
        self.registry.add(self.ids.spilled_writes, requests);
        self.ring.record(TraceEvent {
            ts_us,
            dur_us: 0,
            kind: TraceEventKind::SpillWrites { interval, requests },
        });
    }

    /// Tail reads spilled to a lower tier (no-op when zero).
    pub fn spill_reads(&mut self, ts_us: u64, interval: u32, requests: u64) {
        if requests == 0 {
            return;
        }
        self.registry.add(self.ids.spilled_reads, requests);
        self.ring.record(TraceEvent {
            ts_us,
            dur_us: 0,
            kind: TraceEventKind::SpillReads { interval, requests },
        });
    }

    /// Blocks promoted during the interval (no-op when zero).
    pub fn promotions(&mut self, ts_us: u64, interval: u32, blocks: u64) {
        if blocks == 0 {
            return;
        }
        self.registry.add(self.ids.promotions, blocks);
        self.ring.record(TraceEvent {
            ts_us,
            dur_us: 0,
            kind: TraceEventKind::Promotions { interval, blocks },
        });
    }

    /// Blocks demoted during the interval (no-op when zero).
    pub fn demotions(&mut self, ts_us: u64, interval: u32, blocks: u64) {
        if blocks == 0 {
            return;
        }
        self.registry.add(self.ids.demotions, blocks);
        self.ring.record(TraceEvent {
            ts_us,
            dur_us: 0,
            kind: TraceEventKind::Demotions { interval, blocks },
        });
    }

    /// A controller decision with the queueing times that drove it
    /// (typically replayed from a decision log at end of run).
    pub fn controller_decision(
        &mut self,
        ts_us: u64,
        interval: u32,
        cache_qtime_us: u64,
        disk_qtime_us: u64,
        burst: bool,
        group: &str,
    ) {
        self.ring.record(TraceEvent {
            ts_us,
            dur_us: 0,
            kind: TraceEventKind::ControllerDecision {
                interval,
                cache_qtime_us,
                disk_qtime_us,
                burst,
                group: SmallLabel::new(group),
            },
        });
    }

    /// Folds end-of-run totals into the metrics registry.
    pub fn run_totals(&mut self, events_processed: u64, app_completed: u64, event_queue_peak: u64) {
        self.registry.add(self.ids.events_processed, events_processed);
        self.registry.add(self.ids.app_completed, app_completed);
        self.registry.set_max(self.ids.event_queue_peak, event_queue_peak);
    }

    /// Merges the application latency histogram observed by the tracker.
    pub fn observe_app_latency(&mut self, histogram: &LatencyHistogram) {
        self.registry.merge_histogram(self.ids.app_latency, histogram);
    }

    /// Read access to the metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mutable access for callers registering their own instruments.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Read access to the trace ring.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Snapshot of the metrics registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Renders the trace ring as Chrome trace-event JSON (see
    /// [`chrome::render`]).
    pub fn render_chrome_trace(&self, label: &str) -> String {
        chrome::render(&self.ring, label)
    }
}

impl Default for SimObserver {
    fn default() -> Self {
        SimObserver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_metrics_and_ring_events_together() {
        let mut obs = SimObserver::new();
        obs.interval_rollover(0, 0, 1_000_000, 10, 5);
        obs.queue_high_water(1_000_000, 0, QueueTier::Cache, 42);
        obs.queue_high_water(1_000_000, 0, QueueTier::Disk, 7);
        obs.burst(1_000_000, 0);
        obs.policy_change(1_000_000, 1, "WT");
        obs.bypass(1_000_000, 0, 12);
        obs.run_totals(5_000, 100, 64);
        assert_eq!(obs.ring().len(), 6);
        let snap = obs.snapshot();
        let counter = |name: &str| {
            snap.counters.iter().find(|c| c.name == name).map(|c| c.value).unwrap_or(u64::MAX)
        };
        assert_eq!(counter("lbica_sim_intervals_total"), 1);
        assert_eq!(counter("lbica_sim_bursts_total"), 1);
        assert_eq!(counter("lbica_sim_policy_changes_total"), 1);
        assert_eq!(counter("lbica_sim_bypassed_total"), 12);
        assert_eq!(counter("lbica_sim_events_processed_total"), 5_000);
        let cache_peak = snap.gauges.iter().find(|g| g.name == "lbica_sim_cache_queue_peak");
        assert_eq!(cache_peak.map(|g| g.value), Some(42));
    }

    #[test]
    fn zero_valued_movement_events_are_suppressed() {
        let mut obs = SimObserver::new();
        obs.bypass(0, 0, 0);
        obs.spill_writes(0, 0, 0);
        obs.spill_reads(0, 0, 0);
        obs.promotions(0, 0, 0);
        obs.demotions(0, 0, 0);
        assert!(obs.ring().is_empty());
    }

    #[test]
    fn chrome_export_round_trip_contains_events() {
        let mut obs = SimObserver::new();
        obs.interval_rollover(3, 3_000_000, 1_000_000, 1, 2);
        let json = obs.render_chrome_trace("cell");
        assert!(json.contains("interval 3"));
        assert!(json.contains("\"ts\": 3000000"));
    }
}
