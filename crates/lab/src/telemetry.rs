//! Pluggable sweep telemetry: who ran which cell, how long it took and
//! how busy the workers were.
//!
//! A [`TelemetryHook`] observes the *execution* of a sweep — wall-clock
//! cell times, worker utilization, completion progress — without ever
//! feeding back into its *results*: the aggregated summary and the
//! CSV/JSON sinks read only deterministic simulation quantities, so a
//! sweep produces byte-identical reports with any hook attached (or
//! none). Wall-clock readings flow exclusively into telemetry artifacts
//! (the JSONL stream, the stderr progress lines), never into reports.
//!
//! The provided hooks cover the `sweep` binary's needs:
//!
//! * [`NullTelemetry`] — no-op default.
//! * [`StderrProgress`] — the human-facing progress lines.
//! * [`JsonlTelemetry`] — a machine-readable JSONL stream, one record per
//!   event, validated by `lbica_obs::validate::telemetry_jsonl`.
//! * [`MetricsFold`] — folds per-cell simulation counters into a
//!   [`MetricsRegistry`]; the fold is commutative, so the snapshot is
//!   identical for any `--jobs`.
//! * [`FanOut`] — broadcasts to several hooks at once.

use std::fmt::Write as _;
use std::io;
use std::sync::Mutex;

use lbica_obs::validate::TELEMETRY_SCHEMA;
use lbica_obs::{CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot, PhaseProfiler};
use lbica_sim::SimulationReport;

use crate::sink::json_string;

/// Wall-clock measurements of one completed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTelemetry {
    /// The cell's global matrix index.
    pub index: usize,
    /// The cell's human-readable id.
    pub id: String,
    /// Index of the worker thread that ran the cell.
    pub worker: usize,
    /// Wall-clock time the cell took, µs.
    pub wall_us: u64,
    /// Discrete simulation events the cell processed.
    pub events: u64,
    /// Simulation events per wall-clock second.
    pub events_per_sec: f64,
    /// Cells completed so far (including this one).
    pub completed: usize,
    /// Total cells in the sweep (or shard).
    pub total: usize,
}

/// Whole-sweep wall-clock measurements, emitted once at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTelemetry {
    /// Name of the matrix that ran.
    pub matrix: String,
    /// Worker threads the executor was configured with.
    pub jobs: usize,
    /// Cells the sweep ran.
    pub cells: usize,
    /// End-to-end wall-clock time, µs.
    pub wall_us: u64,
    /// Total simulation events processed across all cells.
    pub events: u64,
    /// Aggregate simulation events per wall-clock second.
    pub events_per_sec: f64,
    /// Per-worker busy time (sum of cell wall times), µs.
    pub worker_busy_us: Vec<u64>,
    /// Mean fraction of the sweep's wall time the workers spent running
    /// cells, `0.0..=1.0` (scheduling gaps and result folding excluded).
    pub worker_utilization: f64,
}

/// One observation delivered to a [`TelemetryHook`]. All variants hold
/// borrows, so the event is `Copy` and can be fanned out cheaply.
#[derive(Debug, Clone, Copy)]
pub enum TelemetryEvent<'a> {
    /// The sweep (or shard) is about to run.
    SweepStart {
        /// Name of the matrix.
        matrix: &'a str,
        /// Cells about to run.
        cells: usize,
        /// Configured worker threads.
        jobs: usize,
    },
    /// One cell finished (delivered in completion order, which is
    /// nondeterministic under parallel execution).
    Cell {
        /// Wall-clock measurements of the cell.
        cell: &'a CellTelemetry,
        /// The cell's full simulation report.
        report: &'a SimulationReport,
    },
    /// `sweep merge` folded one shard's partial.
    ShardMerged {
        /// The shard's index.
        shard_index: usize,
        /// Total shards being merged.
        shard_count: usize,
        /// Cells the shard carried.
        cells: usize,
    },
    /// The sweep finished.
    SweepEnd {
        /// Whole-sweep wall-clock measurements.
        telemetry: &'a SweepTelemetry,
    },
}

/// Observes sweep execution. Implementations must be `Sync`: cells
/// complete on worker threads and events are delivered from whichever
/// thread finished the work.
pub trait TelemetryHook: Sync {
    /// Delivers one event. Called under no lock; implementations
    /// serialize internally if they need to.
    fn record(&self, event: TelemetryEvent<'_>);
}

/// The no-op hook.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTelemetry;

impl TelemetryHook for NullTelemetry {
    fn record(&self, _event: TelemetryEvent<'_>) {}
}

/// Adapts a plain `(completed, total)` progress closure to the hook
/// interface — the compatibility shim behind
/// [`SweepExecutor::aggregate_with_progress`](crate::SweepExecutor::aggregate_with_progress).
#[derive(Debug)]
pub struct ProgressHook<F>(pub F);

impl<F: Fn(usize, usize) + Sync> TelemetryHook for ProgressHook<F> {
    fn record(&self, event: TelemetryEvent<'_>) {
        if let TelemetryEvent::Cell { cell, .. } = event {
            (self.0)(cell.completed, cell.total);
        }
    }
}

/// Human-facing progress lines on stderr, in the `sweep` binary's
/// established format.
#[derive(Debug, Clone, Copy)]
pub struct StderrProgress {
    noun: &'static str,
}

impl StderrProgress {
    /// Progress for a whole-matrix sweep (`cells complete`).
    pub const fn new() -> Self {
        StderrProgress { noun: "cells" }
    }

    /// Progress for one shard of a distributed sweep
    /// (`shard cells complete`).
    pub const fn shard() -> Self {
        StderrProgress { noun: "shard cells" }
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        StderrProgress::new()
    }
}

impl TelemetryHook for StderrProgress {
    fn record(&self, event: TelemetryEvent<'_>) {
        match event {
            TelemetryEvent::Cell { cell, .. } => {
                eprintln!("  [{}/{}] {} complete", cell.completed, cell.total, self.noun);
            }
            TelemetryEvent::ShardMerged { shard_index, shard_count, cells } => {
                eprintln!("  merged shard {}/{shard_count} ({cells} cells)", shard_index + 1);
            }
            TelemetryEvent::SweepEnd { telemetry } => {
                if telemetry.jobs > 1 {
                    eprintln!(
                        "  {} workers, {:.0}% utilization",
                        telemetry.worker_busy_us.len(),
                        telemetry.worker_utilization * 100.0
                    );
                }
            }
            TelemetryEvent::SweepStart { .. } => {}
        }
    }
}

/// Streams every event as one JSON object per line.
///
/// The stream satisfies `lbica_obs::validate::telemetry_jsonl`: it opens
/// with a schema-tagged `start` record, carries one `cell` record per
/// completed cell (in completion order) and closes with an `end` record.
/// Cell ordering and all wall-clock fields are nondeterministic — the
/// stream is an out-of-band artifact, never an input to reports.
#[derive(Debug)]
pub struct JsonlTelemetry<W: io::Write + Send> {
    out: Mutex<W>,
}

impl JsonlTelemetry<io::BufWriter<std::fs::File>> {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        Ok(Self::from_writer(io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: io::Write + Send> JsonlTelemetry<W> {
    /// Wraps an arbitrary writer.
    pub fn from_writer(writer: W) -> Self {
        JsonlTelemetry { out: Mutex::new(writer) }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(self) -> W {
        let mut w = self.out.into_inner().expect("telemetry writer lock");
        let _ = w.flush();
        w
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().expect("telemetry writer lock");
        let _ = writeln!(out, "{line}");
    }
}

impl<W: io::Write + Send> TelemetryHook for JsonlTelemetry<W> {
    fn record(&self, event: TelemetryEvent<'_>) {
        let mut line = String::new();
        match event {
            TelemetryEvent::SweepStart { matrix, cells, jobs } => {
                let _ = write!(
                    line,
                    "{{\"type\": \"start\", \"schema\": {}, \"matrix\": {}, \
                     \"cells\": {cells}, \"jobs\": {jobs}}}",
                    json_string(TELEMETRY_SCHEMA),
                    json_string(matrix),
                );
            }
            TelemetryEvent::Cell { cell, report } => {
                let _ = write!(
                    line,
                    "{{\"type\": \"cell\", \"index\": {}, \"id\": {}, \"worker\": {}, \
                     \"wall_us\": {}, \"events\": {}, \"events_per_sec\": {:.3}, \
                     \"app_completed\": {}, \"completed\": {}, \"total\": {}}}",
                    cell.index,
                    json_string(&cell.id),
                    cell.worker,
                    cell.wall_us,
                    cell.events,
                    cell.events_per_sec,
                    report.app_completed,
                    cell.completed,
                    cell.total,
                );
            }
            TelemetryEvent::ShardMerged { shard_index, shard_count, cells } => {
                let _ = write!(
                    line,
                    "{{\"type\": \"shard_merged\", \"shard_index\": {shard_index}, \
                     \"shard_count\": {shard_count}, \"cells\": {cells}}}"
                );
            }
            TelemetryEvent::SweepEnd { telemetry } => {
                let mut busy = String::from("[");
                for (i, us) in telemetry.worker_busy_us.iter().enumerate() {
                    if i > 0 {
                        busy.push_str(", ");
                    }
                    let _ = write!(busy, "{us}");
                }
                busy.push(']');
                let _ = write!(
                    line,
                    "{{\"type\": \"end\", \"matrix\": {}, \"jobs\": {}, \"cells\": {}, \
                     \"wall_us\": {}, \"events\": {}, \"events_per_sec\": {:.3}, \
                     \"worker_busy_us\": {busy}, \"worker_utilization\": {:.4}}}",
                    json_string(&telemetry.matrix),
                    telemetry.jobs,
                    telemetry.cells,
                    telemetry.wall_us,
                    telemetry.events,
                    telemetry.events_per_sec,
                    telemetry.worker_utilization,
                );
            }
        }
        self.write_line(&line);
        if matches!(event, TelemetryEvent::SweepEnd { .. }) {
            let _ = self.out.lock().expect("telemetry writer lock").flush();
        }
    }
}

/// Folds per-cell *simulation* counters into a metrics registry.
///
/// Every folded quantity is deterministic (derived from reports, never
/// from wall-clock) and the fold is commutative — counters add, the
/// gauge takes a maximum, histogram recording is order-independent — so
/// the snapshot is byte-identical for any `--jobs` and any completion
/// order.
#[derive(Debug)]
pub struct MetricsFold {
    inner: Mutex<FoldInner>,
}

#[derive(Debug)]
struct FoldInner {
    registry: MetricsRegistry,
    cells: CounterId,
    app_completed: CounterId,
    events: CounterId,
    policy_changes: CounterId,
    bypassed: CounterId,
    bursts: CounterId,
    spilled_writes: CounterId,
    spilled_reads: CounterId,
    peak_queue: GaugeId,
    cell_avg_latency: HistogramId,
    cell_p99_latency: HistogramId,
}

impl MetricsFold {
    /// An empty fold with every instrument pre-registered.
    pub fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        let cells = registry.counter("lbica_sweep_cells_total", "Cells completed");
        let app_completed =
            registry.counter("lbica_sweep_app_completed_total", "Application requests completed");
        let events =
            registry.counter("lbica_sweep_events_total", "Discrete simulation events processed");
        let policy_changes =
            registry.counter("lbica_sweep_policy_changes_total", "Write-policy changes applied");
        let bypassed =
            registry.counter("lbica_sweep_bypassed_total", "Requests bypassed to the disk");
        let bursts =
            registry.counter("lbica_sweep_burst_intervals_total", "Intervals flagged as bursts");
        let spilled_writes = registry
            .counter("lbica_sweep_spilled_writes_total", "Writes spilled to lower cache tiers");
        let spilled_reads = registry
            .counter("lbica_sweep_spilled_reads_total", "Reads spilled to lower cache tiers");
        let peak_queue = registry
            .gauge("lbica_sweep_peak_event_queue_depth", "Largest event-queue depth of any cell");
        let cell_avg_latency = registry.histogram(
            "lbica_sweep_cell_avg_latency_us",
            "Distribution of per-cell mean application latencies",
        );
        let cell_p99_latency = registry.histogram(
            "lbica_sweep_cell_p99_latency_us",
            "Distribution of per-cell p99 application latencies",
        );
        MetricsFold {
            inner: Mutex::new(FoldInner {
                registry,
                cells,
                app_completed,
                events,
                policy_changes,
                bypassed,
                bursts,
                spilled_writes,
                spilled_reads,
                peak_queue,
                cell_avg_latency,
                cell_p99_latency,
            }),
        }
    }

    /// A deterministic snapshot of the folded metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().expect("metrics fold lock").registry.snapshot()
    }
}

impl Default for MetricsFold {
    fn default() -> Self {
        MetricsFold::new()
    }
}

impl TelemetryHook for MetricsFold {
    fn record(&self, event: TelemetryEvent<'_>) {
        let TelemetryEvent::Cell { report, .. } = event else {
            return;
        };
        let mut inner = self.inner.lock().expect("metrics fold lock");
        let FoldInner {
            cells,
            app_completed,
            events,
            policy_changes,
            bypassed,
            bursts,
            spilled_writes,
            spilled_reads,
            peak_queue,
            cell_avg_latency,
            cell_p99_latency,
            ..
        } = *inner;
        let registry = &mut inner.registry;
        registry.inc(cells);
        registry.add(app_completed, report.app_completed);
        registry.add(events, report.perf.events_processed);
        registry.add(policy_changes, (report.policy_changes.len() as u64).saturating_sub(1));
        registry.add(bypassed, report.bypassed_requests);
        registry.add(bursts, report.burst_intervals() as u64);
        registry.add(spilled_writes, report.spilled_requests());
        registry.add(spilled_reads, report.spilled_reads());
        registry.set_max(peak_queue, report.perf.peak_event_queue_depth as u64);
        registry.record_us(cell_avg_latency, report.app_avg_latency_us);
        registry.record_us(cell_p99_latency, report.app_p99_latency_us);
    }
}

/// Folds per-worker [`PhaseProfiler`]s into one aggregate sweep profile.
///
/// Unlike the hooks above this is not a [`TelemetryHook`]: profiles are
/// accumulated worker-locally across all the cells a worker ran and folded
/// exactly once when the worker exits, not per cell. The fold is plain
/// per-phase addition — commutative and associative — so the aggregate is
/// independent of worker count and claim order (the `MetricsFold`
/// contract), even though the folded quantities are wall-clock readings.
/// Profiles are telemetry artifacts only; nothing in a summary or sink
/// reads them.
#[derive(Debug, Default)]
pub struct ProfileFold {
    inner: Mutex<PhaseProfiler>,
}

impl ProfileFold {
    /// An empty fold.
    pub fn new() -> Self {
        ProfileFold::default()
    }

    /// Merges one worker's accumulated profile into the aggregate.
    pub fn fold(&self, profile: &PhaseProfiler) {
        self.inner.lock().expect("profile fold lock").merge(profile);
    }

    /// The aggregate profile folded so far.
    pub fn snapshot(&self) -> PhaseProfiler {
        self.inner.lock().expect("profile fold lock").clone()
    }
}

/// Broadcasts every event to a list of hooks, in order.
pub struct FanOut<'a> {
    hooks: &'a [&'a dyn TelemetryHook],
}

impl std::fmt::Debug for FanOut<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanOut").field("hooks", &self.hooks.len()).finish()
    }
}

impl<'a> FanOut<'a> {
    /// A hook that forwards to every hook in `hooks`.
    pub const fn new(hooks: &'a [&'a dyn TelemetryHook]) -> Self {
        FanOut { hooks }
    }
}

impl TelemetryHook for FanOut<'_> {
    fn record(&self, event: TelemetryEvent<'_>) {
        for hook in self.hooks {
            hook.record(event);
        }
    }
}

/// Simulation events per wall-clock second (0 when no time elapsed).
pub(crate) fn events_rate(events: u64, wall_us: u64) -> f64 {
    if wall_us == 0 {
        0.0
    } else {
        events as f64 / (wall_us as f64 / 1_000_000.0)
    }
}

/// Mean busy fraction across the workers over `wall_us`.
pub(crate) fn utilization(busy_us: &[u64], wall_us: u64) -> f64 {
    if busy_us.is_empty() || wall_us == 0 {
        return 0.0;
    }
    let busy: u128 = busy_us.iter().map(|&b| b as u128).sum();
    (busy as f64 / (busy_us.len() as u128 * wall_us as u128) as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SweepExecutor;
    use crate::matrix::ScenarioMatrix;
    use lbica_obs::validate;
    use proptest::prelude::*;

    #[test]
    fn jsonl_stream_validates_and_counts_every_cell() {
        let matrix = ScenarioMatrix::smoke();
        let hook = JsonlTelemetry::from_writer(Vec::new());
        let summary = SweepExecutor::new(2).aggregate_with_telemetry(&matrix, "smoke", &hook);
        assert_eq!(summary.total.cells, matrix.len() as u64);
        let stream = String::from_utf8(hook.into_inner()).expect("utf8 stream");
        let stats = validate::telemetry_jsonl(&stream).expect("valid stream");
        assert_eq!(stats.cells, matrix.len());
        assert_eq!(stats.records, matrix.len() + 2); // start + cells + end
        assert!(stream.contains("\"worker_busy_us\": ["));
    }

    #[test]
    fn telemetry_does_not_change_the_summary() {
        let matrix = ScenarioMatrix::smoke();
        let bare = SweepExecutor::serial().aggregate(&matrix);
        let hook = MetricsFold::new();
        let observed = SweepExecutor::new(4).aggregate_with_telemetry(&matrix, "smoke", &hook);
        assert_eq!(bare, observed);
    }

    #[test]
    fn metrics_fold_counts_deterministic_quantities() {
        let matrix = ScenarioMatrix::smoke();
        let hook = MetricsFold::new();
        SweepExecutor::serial().aggregate_with_telemetry(&matrix, "smoke", &hook);
        let snapshot = hook.snapshot();
        let json = snapshot.render_json();
        validate::metrics_json(&json).expect("valid metrics snapshot");
        let cells = snapshot
            .counters
            .iter()
            .find(|c| c.name == "lbica_sweep_cells_total")
            .expect("cells counter");
        assert_eq!(cells.value, matrix.len() as u64);
        let app = snapshot
            .counters
            .iter()
            .find(|c| c.name == "lbica_sweep_app_completed_total")
            .expect("app counter");
        assert!(app.value > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        // The observability determinism contract, property-tested: the
        // folded metrics snapshot renders byte-identically no matter how
        // many workers raced to complete the cells.
        #[test]
        fn metrics_snapshot_is_job_count_invariant(jobs in 2usize..=8) {
            let matrix = ScenarioMatrix::smoke();
            let serial = MetricsFold::new();
            SweepExecutor::serial().aggregate_with_telemetry(&matrix, "smoke", &serial);
            let parallel = MetricsFold::new();
            SweepExecutor::new(jobs).aggregate_with_telemetry(&matrix, "smoke", &parallel);
            prop_assert_eq!(
                serial.snapshot().render_json(),
                parallel.snapshot().render_json()
            );
            prop_assert_eq!(
                serial.snapshot().render_prometheus(),
                parallel.snapshot().render_prometheus()
            );
        }
    }

    #[test]
    fn fan_out_reaches_every_hook() {
        let matrix = ScenarioMatrix::smoke();
        let jsonl = JsonlTelemetry::from_writer(Vec::new());
        let metrics = MetricsFold::new();
        let hooks: [&dyn TelemetryHook; 2] = [&jsonl, &metrics];
        let fan = FanOut::new(&hooks);
        SweepExecutor::new(2).aggregate_with_telemetry(&matrix, "smoke", &fan);
        let stream = String::from_utf8(jsonl.into_inner()).expect("utf8");
        assert_eq!(validate::telemetry_jsonl(&stream).expect("valid").cells, matrix.len());
        let cells = metrics
            .snapshot()
            .counters
            .iter()
            .find(|c| c.name == "lbica_sweep_cells_total")
            .map(|c| c.value);
        assert_eq!(cells, Some(matrix.len() as u64));
    }

    #[test]
    fn rate_and_utilization_handle_degenerate_inputs() {
        assert_eq!(events_rate(100, 0), 0.0);
        assert!((events_rate(1_000, 1_000_000) - 1_000.0).abs() < 1e-9);
        assert_eq!(utilization(&[], 10), 0.0);
        assert_eq!(utilization(&[10, 10], 0), 0.0);
        assert!((utilization(&[5, 15], 20) - 0.5).abs() < 1e-9);
        // Clamped: folding rounds can make busy exceed wall.
        assert_eq!(utilization(&[100], 10), 1.0);
    }

    #[test]
    fn null_hook_and_progress_adapter_behave() {
        NullTelemetry.record(TelemetryEvent::SweepStart { matrix: "x", cells: 1, jobs: 1 });
        let seen = std::sync::atomic::AtomicUsize::new(0);
        let hook = ProgressHook(|done: usize, total: usize| {
            seen.fetch_add(done + total, std::sync::atomic::Ordering::Relaxed);
        });
        hook.record(TelemetryEvent::SweepStart { matrix: "x", cells: 1, jobs: 1 });
        assert_eq!(seen.load(std::sync::atomic::Ordering::Relaxed), 0);
        let cell = CellTelemetry {
            index: 0,
            id: "id".into(),
            worker: 0,
            wall_us: 1,
            events: 1,
            events_per_sec: 1.0,
            completed: 1,
            total: 2,
        };
        let report = ScenarioMatrix::smoke().cell(0).expect("cell").run();
        hook.record(TelemetryEvent::Cell { cell: &cell, report: &report });
        assert_eq!(seen.load(std::sync::atomic::Ordering::Relaxed), 3);
    }
}
