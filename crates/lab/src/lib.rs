//! Experiment orchestration for the LBICA reproduction.
//!
//! The paper evaluates exactly three canned workloads against two baselines;
//! this crate generalizes that 3 × 3 grid into a *scenario sweep*:
//!
//! * [`ScenarioMatrix`] — a declarative cartesian product of axes (workload
//!   specs, simulator configurations, controllers, seeds), expanded lazily
//!   into [`Scenario`] cells. Every cell carries a stable id and a stream
//!   seed derived by hashing its coordinates, so results do not depend on
//!   the order in which cells are executed.
//! * [`SweepExecutor`] — a work-stealing executor built on
//!   `std::thread::scope` and a shared atomic cursor: `jobs` worker threads
//!   pull the next unclaimed cell until the matrix is exhausted.
//! * [`Aggregator`] — a streaming fold of [`SimulationReport`]s into
//!   per-axis summaries (integer accumulators only, so the result is
//!   bit-identical regardless of completion order) without retaining the
//!   individual reports.
//! * [`CsvSink`] / [`JsonSink`] — reporters for the aggregated
//!   [`SweepSummary`].
//! * [`PartialSweep`] — the shard-and-merge layer for *multi-process*
//!   sweeps: a matrix splits into N contiguous cell ranges
//!   ([`ScenarioMatrix::shard`]), each shard emits a versioned,
//!   fingerprint-stamped partial document, and
//!   [`PartialSweep::merge`] folds a complete set back into a summary
//!   byte-identical to a single-process run.
//! * [`TelemetryHook`] — pluggable execution telemetry (per-cell wall
//!   time, worker utilization, JSONL streams, folded metrics). Telemetry
//!   observes the sweep but never feeds into its results: summaries and
//!   sinks stay byte-identical with any hook attached.
//!
//! [`SimulationReport`]: lbica_sim::SimulationReport
//!
//! # Example
//!
//! ```
//! use lbica_lab::{Aggregator, ScenarioMatrix, SweepExecutor};
//!
//! let matrix = ScenarioMatrix::smoke();
//! let summary = SweepExecutor::new(2).aggregate(&matrix);
//! assert_eq!(summary.total.cells, matrix.len() as u64);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregate;
pub mod controller;
pub mod executor;
pub mod matrix;
pub mod partial;
pub mod scenario;
pub mod sink;
pub mod telemetry;

pub use aggregate::{
    tenant_rows, Aggregator, CellSummary, GroupStats, SweepSummary, TenantRow, WorkloadDelta,
};
pub use controller::ControllerKind;
pub use executor::SweepExecutor;
pub use matrix::{CellRange, ConfigAxis, ScenarioMatrix, SeedMode};
pub use partial::{MergeError, MergedSweep, PartialError, PartialSweep, PARTIAL_SCHEMA};
pub use scenario::{derive_seed, Scenario};
pub use sink::{CsvSink, JsonSink};
pub use telemetry::{
    CellTelemetry, FanOut, JsonlTelemetry, MetricsFold, NullTelemetry, ProfileFold, StderrProgress,
    SweepTelemetry, TelemetryEvent, TelemetryHook,
};
