//! One cell of a scenario matrix.

use lbica_sim::{Simulation, SimulationConfig, SimulationReport};
use lbica_trace::workload::WorkloadSpec;

use crate::controller::ControllerKind;

/// Derives the random-stream seed of a matrix cell from its coordinates.
///
/// The hash (FNV-1a over the labelled coordinates, finished with a
/// splitmix64 avalanche) depends only on the coordinate *values* — never on
/// the cell's position in the matrix or on execution order — so a scenario
/// keeps its arrival streams when axes are reordered, extended or executed
/// on a different number of worker threads.
///
/// The controller coordinate is deliberately **excluded**: the three schemes
/// of one (workload, config, seed) cell group must see identical arrival
/// streams for their comparison to be paired, exactly as the paper's
/// harness shares one seed across WB, SIB and LBICA.
pub fn derive_seed(workload: &str, config_label: &str, seed: u64) -> u64 {
    let mut h = fnv1a(workload.as_bytes(), FNV_OFFSET);
    h = fnv1a(&[0xff], h);
    h = fnv1a(config_label.as_bytes(), h);
    h = fnv1a(&[0xff], h);
    h = fnv1a(&seed.to_le_bytes(), h);
    splitmix64(h)
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

pub(crate) fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// splitmix64 finalizer: FNV alone avalanches poorly in the high bits.
pub(crate) fn splitmix64(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// One fully-specified experiment: a workload driven through a simulator
/// configuration under a controller, with a deterministic stream seed.
#[derive(Debug, Clone)]
pub struct Scenario {
    workload: WorkloadSpec,
    config_label: String,
    config: SimulationConfig,
    controller: ControllerKind,
    seed: u64,
    stream_seed: u64,
}

impl Scenario {
    /// Creates a cell. `stream_seed` is normally [`derive_seed`] of the
    /// coordinates; [`crate::SeedMode::Literal`] matrices pass `seed`
    /// through unchanged.
    pub fn new(
        workload: WorkloadSpec,
        config_label: impl Into<String>,
        config: SimulationConfig,
        controller: ControllerKind,
        seed: u64,
        stream_seed: u64,
    ) -> Self {
        Scenario {
            workload,
            config_label: config_label.into(),
            config,
            controller,
            seed,
            stream_seed,
        }
    }

    /// A stable, human-readable cell id:
    /// `workload/config/controller/s<seed>`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/s{}",
            self.workload.name(),
            self.config_label,
            self.controller.label(),
            self.seed
        )
    }

    /// The workload this cell runs.
    pub fn workload(&self) -> &WorkloadSpec {
        &self.workload
    }

    /// The label of the simulator-configuration axis value.
    pub fn config_label(&self) -> &str {
        &self.config_label
    }

    /// The simulator configuration this cell runs under.
    pub const fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The controller driving the cache.
    pub const fn controller(&self) -> ControllerKind {
        self.controller
    }

    /// The seed-axis value (the replicate index, not the stream seed).
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// The seed actually fed to the simulation's random streams.
    pub const fn stream_seed(&self) -> u64 {
        self.stream_seed
    }

    /// Runs the cell to completion and returns its report.
    pub fn run(&self) -> SimulationReport {
        let mut controller = self.controller.build();
        Simulation::new(self.config, self.workload.clone(), self.stream_seed)
            .run(controller.as_mut())
    }

    /// Like [`Scenario::run`], but drawing the simulated system from
    /// `arena` so consecutive cells on one worker thread reuse their
    /// backing allocations. Byte-identical to [`Scenario::run`] (reset is
    /// observationally equivalent to fresh construction).
    pub fn run_in(&self, arena: &mut lbica_sim::SimArena) -> SimulationReport {
        let mut controller = self.controller.build();
        Simulation::new(self.config, self.workload.clone(), self.stream_seed)
            .run_in(controller.as_mut(), arena)
    }

    /// Runs the cell split at interval `split_at`: the first segment runs
    /// to a [`lbica_sim::ReplayCheckpoint`], the checkpoint round-trips
    /// through its binary encoding (as it would when handed between sweep
    /// shards), and a fresh simulation resumes the remainder. The report
    /// is byte-identical to [`Scenario::run`]'s — the property the sweep
    /// CLI's `--checkpoint-cell` smoke check pins in CI.
    pub fn run_checkpointed(
        &self,
        split_at: u32,
    ) -> Result<SimulationReport, lbica_sim::SnapError> {
        let mut controller = self.controller.build();
        let checkpoint = Simulation::new(self.config, self.workload.clone(), self.stream_seed)
            .run_to_checkpoint(controller.as_mut(), split_at)?;
        let checkpoint = lbica_sim::ReplayCheckpoint::from_bytes(&checkpoint.to_bytes())?;
        let mut resumed = self.controller.build();
        Simulation::new(self.config, self.workload.clone(), self.stream_seed)
            .resume_from_checkpoint(resumed.as_mut(), &checkpoint)
    }

    /// Runs the cell with `observer` attached and returns the report
    /// together with the observer, now holding the run's metrics and
    /// trace ring. The report is identical to [`Scenario::run`]'s — the
    /// observer only records, it never steers.
    pub fn run_observed(
        &self,
        observer: lbica_obs::SimObserver,
    ) -> (SimulationReport, lbica_obs::SimObserver) {
        let mut controller = self.controller.build();
        let mut sim = Simulation::new(self.config, self.workload.clone(), self.stream_seed)
            .with_observer(observer);
        let report = sim.run(controller.as_mut());
        let observer = sim.take_observer().expect("observer survives the run");
        (report, observer)
    }

    /// The arena-backed twin of [`Scenario::run_observed`]: identical
    /// report and observer contents, reused backing stores.
    pub fn run_observed_in(
        &self,
        observer: lbica_obs::SimObserver,
        arena: &mut lbica_sim::SimArena,
    ) -> (SimulationReport, lbica_obs::SimObserver) {
        let mut controller = self.controller.build();
        let mut sim = Simulation::new(self.config, self.workload.clone(), self.stream_seed)
            .with_observer(observer);
        let report = sim.run_in(controller.as_mut(), arena);
        let observer = sim.take_observer().expect("observer survives the run");
        (report, observer)
    }

    /// Runs the cell with a phase profiler attached, returning the report
    /// together with the profiler (its accumulators grown by this run's
    /// wall time). The report is byte-identical to [`Scenario::run_in`]'s
    /// — the profiler attributes time, it never steers. Passing the same
    /// profiler through consecutive cells accumulates a worker-local
    /// profile that a [`crate::ProfileFold`] merges commutatively.
    pub fn run_profiled_in(
        &self,
        profiler: lbica_obs::PhaseProfiler,
        arena: &mut lbica_sim::SimArena,
    ) -> (SimulationReport, lbica_obs::PhaseProfiler) {
        let mut controller = self.controller.build();
        let mut sim = Simulation::new(self.config, self.workload.clone(), self.stream_seed)
            .with_profiler(profiler);
        let report = sim.run_in(controller.as_mut(), arena);
        let profiler = sim.take_profiler().expect("profiler survives the run");
        (report, profiler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbica_trace::workload::WorkloadScale;

    #[test]
    fn derived_seeds_differ_across_coordinates() {
        let a = derive_seed("tpcc", "tiny", 0);
        assert_ne!(a, derive_seed("mail-server", "tiny", 0));
        assert_ne!(a, derive_seed("tpcc", "harness", 0));
        assert_ne!(a, derive_seed("tpcc", "tiny", 1));
    }

    #[test]
    fn derived_seeds_are_stable_values() {
        // Pin the function: a silent change would reshuffle every sweep.
        assert_eq!(derive_seed("tpcc", "tiny", 0), derive_seed("tpcc", "tiny", 0));
    }

    #[test]
    fn separator_prevents_label_concatenation_collisions() {
        assert_ne!(derive_seed("ab", "c", 0), derive_seed("a", "bc", 0));
    }

    #[test]
    fn observed_run_matches_plain_run() {
        let spec = WorkloadSpec::web_server_scaled(WorkloadScale::tiny());
        let seed = derive_seed(spec.name(), "tiny", 0);
        let cell =
            Scenario::new(spec, "tiny", SimulationConfig::tiny(), ControllerKind::Lbica, 0, seed);
        let plain = cell.run();
        let (observed, obs) = cell.run_observed(lbica_obs::SimObserver::new());
        assert_eq!(plain, observed);
        assert!(!obs.ring().is_empty());
    }

    #[test]
    fn checkpointed_run_matches_plain_run_under_lbica() {
        // The runner's own tests split static-policy cells; this covers
        // the stateful LBICA controller through the scenario-level API.
        let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
        let seed = derive_seed(spec.name(), "tiny", 1);
        let cell =
            Scenario::new(spec, "tiny", SimulationConfig::tiny(), ControllerKind::Lbica, 1, seed);
        let direct = cell.run();
        for split in [0, direct.total_intervals / 2, direct.total_intervals] {
            assert_eq!(direct, cell.run_checkpointed(split).unwrap(), "split at {split}");
        }
    }

    #[test]
    fn scenario_id_and_run_work() {
        let spec = WorkloadSpec::web_server_scaled(WorkloadScale::tiny());
        let seed = derive_seed(spec.name(), "tiny", 2);
        let cell =
            Scenario::new(spec, "tiny", SimulationConfig::tiny(), ControllerKind::Lbica, 2, seed);
        assert_eq!(cell.id(), "web-server/tiny/LBICA/s2");
        assert_eq!(cell.stream_seed(), seed);
        let report = cell.run();
        assert_eq!(report.controller, "LBICA");
        assert!(report.app_completed > 0);
    }
}
