//! Serializable partial sweeps: the shard-and-merge layer of a
//! distributed sweep.
//!
//! A sweep of a [`ScenarioMatrix`] distributes across processes (or
//! machines) as N contiguous cell ranges ([`ScenarioMatrix::shard`]).
//! Each shard runs its range and emits a [`PartialSweep`]: a versioned
//! header identifying *which* matrix and *which* shard, plus one
//! [`CellSummary`] per cell — exactly the integer quantities the
//! [`Aggregator`] folds. [`PartialSweep::merge`]
//! validates that a set of partials is complete and mutually compatible,
//! then folds every cell through the same aggregation arithmetic a
//! single-process sweep uses, so the merged summary — and therefore the
//! CSV/JSON sink output — is byte-identical to running the whole matrix
//! in one process.
//!
//! The JSON document is hand-rolled in the same style as
//! [`JsonSink`](crate::JsonSink) (the build environment has no
//! `serde_json`); its schema is versioned by [`PARTIAL_SCHEMA`] and
//! documented in `docs/ARCHITECTURE.md`.

use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::Mutex;

use crate::aggregate::{Aggregator, CellSummary, SweepSummary};
use crate::executor::SweepExecutor;
use crate::matrix::{CellRange, ScenarioMatrix};
use crate::sink::json_string;
use crate::telemetry::{NullTelemetry, ProgressHook, TelemetryHook};

/// Schema identifier stamped into (and required of) every partial-sweep
/// document. Bump the `/v2` suffix on any incompatible layout change;
/// merge refuses documents written by a different version outright.
/// (`/v2` added the per-cell latency percentile fields.)
pub const PARTIAL_SCHEMA: &str = "lbica-partial-sweep/v2";

/// The output of one shard of a distributed sweep: a compatibility header
/// plus the per-cell summaries of the shard's cell range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialSweep {
    /// Name of the matrix the shard ran (keys the merged output files).
    pub matrix: String,
    /// [`ScenarioMatrix::fingerprint`] of the matrix definition.
    pub fingerprint: u64,
    /// Which shard this is, `0..shard_count`.
    pub shard_index: usize,
    /// Total number of shards the matrix was split into.
    pub shard_count: usize,
    /// Total number of cells in the (whole) matrix.
    pub cells_total: usize,
    /// The contiguous cell range this shard ran.
    pub range: CellRange,
    /// One summary per cell of `range`, in enumeration order.
    pub cells: Vec<CellSummary>,
}

impl PartialSweep {
    /// Runs shard `shard_index` of `shard_count` of `matrix` on
    /// `executor` and collects the partial. `matrix_name` is recorded in
    /// the header so `merge` can name its output files.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0` or `shard_index >= shard_count`.
    pub fn collect(
        executor: &SweepExecutor,
        matrix: &ScenarioMatrix,
        matrix_name: &str,
        shard_index: usize,
        shard_count: usize,
    ) -> Self {
        Self::collect_with_telemetry(
            executor,
            matrix,
            matrix_name,
            shard_index,
            shard_count,
            &NullTelemetry,
        )
    }

    /// [`PartialSweep::collect`] with a `(completed, shard_total)`
    /// progress callback invoked after every cell.
    pub fn collect_with_progress(
        executor: &SweepExecutor,
        matrix: &ScenarioMatrix,
        matrix_name: &str,
        shard_index: usize,
        shard_count: usize,
        progress: impl Fn(usize, usize) + Sync,
    ) -> Self {
        Self::collect_with_telemetry(
            executor,
            matrix,
            matrix_name,
            shard_index,
            shard_count,
            &ProgressHook(progress),
        )
    }

    /// [`PartialSweep::collect`] with full execution telemetry: the hook
    /// sees the shard's start, every cell completion (with wall-clock
    /// timings) and the final worker-utilization summary. The collected
    /// partial reads only deterministic simulation quantities and is
    /// byte-identical for any `jobs` and any hook.
    pub fn collect_with_telemetry(
        executor: &SweepExecutor,
        matrix: &ScenarioMatrix,
        matrix_name: &str,
        shard_index: usize,
        shard_count: usize,
        hook: &dyn TelemetryHook,
    ) -> Self {
        let range = matrix.shard(shard_index, shard_count);
        let slots: Mutex<Vec<Option<CellSummary>>> = Mutex::new(vec![None; range.len()]);
        executor.run_with_telemetry(
            matrix,
            range,
            matrix_name,
            hook,
            None,
            |index, scenario, report| {
                let cell = CellSummary::capture(index, scenario, report);
                slots.lock().expect("slot lock")[index - range.start] = Some(cell);
            },
        );
        let cells = slots
            .into_inner()
            .expect("slot lock")
            .into_iter()
            .map(|c| c.expect("every cell in the range produced a summary"))
            .collect();
        PartialSweep {
            matrix: matrix_name.to_string(),
            fingerprint: matrix.fingerprint(),
            shard_index,
            shard_count,
            cells_total: matrix.len(),
            range,
            cells,
        }
    }

    /// Renders the partial as a JSON document (one cell per line).
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(PARTIAL_SCHEMA));
        let _ = writeln!(out, "  \"matrix\": {},", json_string(&self.matrix));
        let _ = writeln!(out, "  \"fingerprint\": \"{:016x}\",", self.fingerprint);
        let _ = writeln!(out, "  \"shard_index\": {},", self.shard_index);
        let _ = writeln!(out, "  \"shard_count\": {},", self.shard_count);
        let _ = writeln!(out, "  \"cells_total\": {},", self.cells_total);
        let _ = writeln!(out, "  \"cell_start\": {},", self.range.start);
        let _ = writeln!(out, "  \"cell_end\": {},", self.range.end);
        out.push_str("  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(
                out,
                "{{\"index\": {}, \"id\": {}, \"workload\": {}, \"config\": {}, \
                 \"controller\": {}, \"seed\": {}, \"app_completed\": {}, \
                 \"avg_latency_us\": {}, \"p50_latency_us\": {}, \"p95_latency_us\": {}, \
                 \"p99_latency_us\": {}, \"max_latency_us\": {}, \"intervals\": {}, \
                 \"cache_load_sum_us\": {}, \"disk_load_sum_us\": {}, \
                 \"policy_changes\": {}, \"bypassed_requests\": {}, \"burst_intervals\": {}}}",
                cell.index,
                json_string(&cell.id),
                json_string(&cell.workload),
                json_string(&cell.config),
                json_string(&cell.controller),
                cell.seed,
                cell.app_completed,
                cell.avg_latency_us,
                cell.p50_latency_us,
                cell.p95_latency_us,
                cell.p99_latency_us,
                cell.max_latency_us,
                cell.intervals,
                cell.cache_load_sum_us,
                cell.disk_load_sum_us,
                cell.policy_changes,
                cell.bypassed_requests,
                cell.burst_intervals,
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders and writes the partial to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.render())
    }

    /// Parses a partial-sweep JSON document, validating the schema
    /// version and the document's internal consistency (shard arithmetic,
    /// cell count, cell indices).
    ///
    /// # Errors
    ///
    /// [`PartialError::Parse`] for malformed JSON or missing/mistyped
    /// fields, [`PartialError::Schema`] for an unknown schema version and
    /// [`PartialError::Invalid`] for a well-formed document whose header
    /// and cells disagree.
    pub fn parse(text: &str) -> Result<Self, PartialError> {
        let doc = json::parse(text)?;
        let schema = doc.str_field("schema")?;
        if schema != PARTIAL_SCHEMA {
            return Err(PartialError::Schema(schema.to_string()));
        }
        let fingerprint_hex = doc.str_field("fingerprint")?;
        let fingerprint = u64::from_str_radix(fingerprint_hex, 16).map_err(|_| {
            PartialError::Parse(format!("`fingerprint` is not a hex u64: `{fingerprint_hex}`"))
        })?;
        let partial = PartialSweep {
            matrix: doc.str_field("matrix")?.to_string(),
            fingerprint,
            shard_index: doc.usize_field("shard_index")?,
            shard_count: doc.usize_field("shard_count")?,
            cells_total: doc.usize_field("cells_total")?,
            range: CellRange {
                start: doc.usize_field("cell_start")?,
                end: doc.usize_field("cell_end")?,
            },
            cells: doc
                .array_field("cells")?
                .iter()
                .map(Self::parse_cell)
                .collect::<Result<Vec<_>, _>>()?,
        };
        partial.validate()?;
        Ok(partial)
    }

    /// Reads and parses the partial at `path`.
    ///
    /// # Errors
    ///
    /// Filesystem errors surface as [`PartialError::Parse`] with the
    /// path in the message; everything else as [`PartialSweep::parse`].
    pub fn read_from(path: &Path) -> Result<Self, PartialError> {
        let text = fs::read_to_string(path)
            .map_err(|e| PartialError::Parse(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    fn parse_cell(value: &json::Value) -> Result<CellSummary, PartialError> {
        Ok(CellSummary {
            index: value.usize_field("index")?,
            id: value.str_field("id")?.to_string(),
            workload: value.str_field("workload")?.to_string(),
            config: value.str_field("config")?.to_string(),
            controller: value.str_field("controller")?.to_string(),
            seed: value.u64_field("seed")?,
            app_completed: value.u64_field("app_completed")?,
            avg_latency_us: value.u64_field("avg_latency_us")?,
            p50_latency_us: value.u64_field("p50_latency_us")?,
            p95_latency_us: value.u64_field("p95_latency_us")?,
            p99_latency_us: value.u64_field("p99_latency_us")?,
            max_latency_us: value.u64_field("max_latency_us")?,
            intervals: value.u64_field("intervals")?,
            cache_load_sum_us: value.u128_field("cache_load_sum_us")?,
            disk_load_sum_us: value.u128_field("disk_load_sum_us")?,
            policy_changes: value.u64_field("policy_changes")?,
            bypassed_requests: value.u64_field("bypassed_requests")?,
            burst_intervals: value.u64_field("burst_intervals")?,
        })
    }

    fn validate(&self) -> Result<(), PartialError> {
        if self.shard_count == 0 {
            return Err(PartialError::Invalid("shard_count is zero".to_string()));
        }
        if self.shard_index >= self.shard_count {
            return Err(PartialError::Invalid(format!(
                "shard_index {} out of range for {} shard(s)",
                self.shard_index, self.shard_count
            )));
        }
        let expected = CellRange::shard_of(self.cells_total, self.shard_index, self.shard_count);
        if self.range != expected {
            return Err(PartialError::Invalid(format!(
                "cell range [{}, {}) does not match shard {}/{} of {} cells \
                 (expected [{}, {}))",
                self.range.start,
                self.range.end,
                self.shard_index,
                self.shard_count,
                self.cells_total,
                expected.start,
                expected.end,
            )));
        }
        if self.cells.len() != self.range.len() {
            return Err(PartialError::Invalid(format!(
                "shard {} carries {} cell(s) but its range holds {}",
                self.shard_index,
                self.cells.len(),
                self.range.len()
            )));
        }
        for (offset, cell) in self.cells.iter().enumerate() {
            let expected = self.range.start + offset;
            if cell.index != expected {
                return Err(PartialError::Invalid(format!(
                    "cell `{}` carries index {} where {} was expected",
                    cell.id, cell.index, expected
                )));
            }
        }
        Ok(())
    }

    /// Merges a complete, mutually compatible set of partials into the
    /// whole-matrix summary.
    ///
    /// Compatibility means: same matrix name, same
    /// [`ScenarioMatrix::fingerprint`], same shard count and cell total,
    /// and shard indices `0..shard_count` each present exactly once. The
    /// fold itself is order-independent (integer accumulators), so the
    /// partials may be passed in any order.
    ///
    /// # Errors
    ///
    /// A [`MergeError`] naming the first incompatibility found.
    pub fn merge(partials: &[PartialSweep]) -> Result<MergedSweep, MergeError> {
        let first = partials.first().ok_or(MergeError::Empty)?;
        let mut seen = vec![false; first.shard_count];
        for p in partials {
            if p.matrix != first.matrix {
                return Err(MergeError::MatrixMismatch {
                    expected: first.matrix.clone(),
                    found: p.matrix.clone(),
                });
            }
            if p.fingerprint != first.fingerprint {
                return Err(MergeError::FingerprintMismatch {
                    expected: first.fingerprint,
                    found: p.fingerprint,
                });
            }
            if p.shard_count != first.shard_count {
                return Err(MergeError::ShardCountMismatch {
                    expected: first.shard_count,
                    found: p.shard_count,
                });
            }
            if p.cells_total != first.cells_total {
                return Err(MergeError::TotalMismatch {
                    expected: first.cells_total,
                    found: p.cells_total,
                });
            }
            if std::mem::replace(&mut seen[p.shard_index], true) {
                return Err(MergeError::DuplicateShard(p.shard_index));
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(MergeError::MissingShard(missing));
        }
        let mut aggregator = Aggregator::new();
        for p in partials {
            for cell in &p.cells {
                aggregator.observe_cell(cell);
            }
        }
        Ok(MergedSweep {
            matrix: first.matrix.clone(),
            cells: aggregator.cells(),
            summary: aggregator.summary(),
        })
    }
}

/// The result of merging a complete set of [`PartialSweep`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedSweep {
    /// The matrix name shared by the partials.
    pub matrix: String,
    /// Total cells folded across all shards.
    pub cells: u64,
    /// The whole-matrix summary — bit-identical to a single-process run.
    pub summary: SweepSummary,
}

/// Why a partial-sweep document could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartialError {
    /// The document is not valid JSON, a field is missing or mistyped, or
    /// the file could not be read.
    Parse(String),
    /// The document's schema version is not [`PARTIAL_SCHEMA`].
    Schema(String),
    /// The document parsed but its header and cells are inconsistent.
    Invalid(String),
}

impl fmt::Display for PartialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartialError::Parse(msg) => write!(f, "malformed partial sweep: {msg}"),
            PartialError::Schema(found) => write!(
                f,
                "unsupported partial-sweep schema `{found}` (this build reads `{PARTIAL_SCHEMA}`)"
            ),
            PartialError::Invalid(msg) => write!(f, "inconsistent partial sweep: {msg}"),
        }
    }
}

impl std::error::Error for PartialError {}

/// Why a set of [`PartialSweep`]s could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No partials were given.
    Empty,
    /// Two partials name different matrices.
    MatrixMismatch {
        /// Matrix name of the first partial.
        expected: String,
        /// The conflicting matrix name.
        found: String,
    },
    /// Two partials carry different matrix fingerprints — they were run
    /// against different matrix definitions.
    FingerprintMismatch {
        /// Fingerprint of the first partial.
        expected: u64,
        /// The conflicting fingerprint.
        found: u64,
    },
    /// Two partials disagree on how many shards the sweep was split into.
    ShardCountMismatch {
        /// Shard count of the first partial.
        expected: usize,
        /// The conflicting shard count.
        found: usize,
    },
    /// Two partials disagree on the matrix's total cell count.
    TotalMismatch {
        /// Cell total of the first partial.
        expected: usize,
        /// The conflicting cell total.
        found: usize,
    },
    /// The same shard index appears more than once.
    DuplicateShard(usize),
    /// A shard index in `0..shard_count` has no partial.
    MissingShard(usize),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no partial sweeps to merge"),
            MergeError::MatrixMismatch { expected, found } => {
                write!(f, "partials name different matrices: `{expected}` vs `{found}`")
            }
            MergeError::FingerprintMismatch { expected, found } => write!(
                f,
                "partials were run against different matrix definitions \
                 (fingerprint {expected:016x} vs {found:016x})"
            ),
            MergeError::ShardCountMismatch { expected, found } => {
                write!(f, "partials disagree on the shard count: {expected} vs {found}")
            }
            MergeError::TotalMismatch { expected, found } => {
                write!(f, "partials disagree on the matrix cell total: {expected} vs {found}")
            }
            MergeError::DuplicateShard(index) => {
                write!(f, "shard {index} appears more than once")
            }
            MergeError::MissingShard(index) => write!(f, "shard {index} is missing"),
        }
    }
}

impl std::error::Error for MergeError {}

/// A minimal strict JSON reader for the partial-sweep document: objects,
/// arrays, strings and non-negative integers (the only shapes the schema
/// uses). Anything else — floats, negatives, booleans, `null`, trailing
/// garbage — is a parse error, which doubles as validation.
mod json {
    use super::PartialError;

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Value {
        Object(Vec<(String, Value)>),
        Array(Vec<Value>),
        Str(String),
        Num(u128),
    }

    impl Value {
        fn field(&self, name: &str) -> Result<&Value, PartialError> {
            match self {
                Value::Object(fields) => fields
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| v)
                    .ok_or_else(|| PartialError::Parse(format!("missing field `{name}`"))),
                _ => Err(PartialError::Parse(format!(
                    "expected an object while looking for `{name}`"
                ))),
            }
        }

        pub fn str_field(&self, name: &str) -> Result<&str, PartialError> {
            match self.field(name)? {
                Value::Str(s) => Ok(s),
                _ => Err(PartialError::Parse(format!("field `{name}` is not a string"))),
            }
        }

        pub fn u128_field(&self, name: &str) -> Result<u128, PartialError> {
            match self.field(name)? {
                Value::Num(n) => Ok(*n),
                _ => Err(PartialError::Parse(format!("field `{name}` is not an integer"))),
            }
        }

        pub fn u64_field(&self, name: &str) -> Result<u64, PartialError> {
            u64::try_from(self.u128_field(name)?)
                .map_err(|_| PartialError::Parse(format!("field `{name}` overflows u64")))
        }

        pub fn usize_field(&self, name: &str) -> Result<usize, PartialError> {
            usize::try_from(self.u128_field(name)?)
                .map_err(|_| PartialError::Parse(format!("field `{name}` overflows usize")))
        }

        pub fn array_field(&self, name: &str) -> Result<&[Value], PartialError> {
            match self.field(name)? {
                Value::Array(items) => Ok(items),
                _ => Err(PartialError::Parse(format!("field `{name}` is not an array"))),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, PartialError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing data after the document"));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn error(&self, msg: &str) -> PartialError {
            PartialError::Parse(format!("{msg} at byte {}", self.pos))
        }

        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, byte: u8) -> Result<(), PartialError> {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.error(&format!("expected `{}`", byte as char)))
            }
        }

        fn value(&mut self) -> Result<Value, PartialError> {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'0'..=b'9') => self.number(),
                _ => Err(self.error("expected an object, array, string or integer")),
            }
        }

        fn object(&mut self) -> Result<Value, PartialError> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b'}') {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(b':')?;
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(self.error("expected `,` or `}`")),
                }
            }
        }

        fn array(&mut self) -> Result<Value, PartialError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(self.error("expected `,` or `]`")),
                }
            }
        }

        fn string(&mut self) -> Result<String, PartialError> {
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.error("expected `\"`"));
            }
            self.pos += 1;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    None => return Err(self.error("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.bytes.get(self.pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| self.error("bad \\u escape"))?;
                                out.push(
                                    char::from_u32(hex)
                                        .ok_or_else(|| self.error("bad \\u escape"))?,
                                );
                                self.pos += 4;
                            }
                            _ => return Err(self.error("bad escape")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (the input is a &str,
                        // so boundaries are valid by construction).
                        let rest = &self.bytes[self.pos..];
                        let s =
                            std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                        let c = s.chars().next().expect("non-empty");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, PartialError> {
            let start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            let digits = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
            digits.parse::<u128>().map(Value::Num).map_err(|_| self.error("integer overflows u128"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_partials(count: usize) -> Vec<PartialSweep> {
        let matrix = ScenarioMatrix::smoke();
        (0..count)
            .map(|i| PartialSweep::collect(&SweepExecutor::serial(), &matrix, "smoke", i, count))
            .collect()
    }

    #[test]
    fn render_parse_round_trips_exactly() {
        for partial in smoke_partials(2) {
            let parsed = PartialSweep::parse(&partial.render()).expect("round trip");
            assert_eq!(parsed, partial);
        }
    }

    #[test]
    fn merged_partials_equal_a_single_process_aggregate() {
        let matrix = ScenarioMatrix::smoke();
        let single = SweepExecutor::serial().aggregate(&matrix);
        let partials = smoke_partials(3);
        let merged = PartialSweep::merge(&partials).expect("compatible partials");
        assert_eq!(merged.matrix, "smoke");
        assert_eq!(merged.cells, matrix.len() as u64);
        assert_eq!(merged.summary, single);
    }

    #[test]
    fn merge_is_order_independent() {
        let partials = smoke_partials(3);
        let forward = PartialSweep::merge(&partials).expect("merge");
        let shuffled = vec![partials[2].clone(), partials[0].clone(), partials[1].clone()];
        assert_eq!(PartialSweep::merge(&shuffled).expect("merge").summary, forward.summary);
    }

    #[test]
    fn merge_rejects_incomplete_and_inconsistent_sets() {
        let partials = smoke_partials(2);
        assert_eq!(PartialSweep::merge(&[]), Err(MergeError::Empty));
        assert_eq!(PartialSweep::merge(&partials[..1]), Err(MergeError::MissingShard(1)));
        let duplicated = vec![partials[0].clone(), partials[0].clone()];
        assert_eq!(PartialSweep::merge(&duplicated), Err(MergeError::DuplicateShard(0)));
        let mut other_count = partials[1].clone();
        other_count.shard_count = 3;
        // Re-fit the header so the partial itself stays self-consistent.
        other_count.range = CellRange::shard_of(other_count.cells_total, 1, 3);
        assert_eq!(
            PartialSweep::merge(&[partials[0].clone(), other_count]),
            Err(MergeError::ShardCountMismatch { expected: 2, found: 3 })
        );
        let mut other_matrix = partials[1].clone();
        other_matrix.matrix = "tiny".to_string();
        assert!(matches!(
            PartialSweep::merge(&[partials[0].clone(), other_matrix]),
            Err(MergeError::MatrixMismatch { .. })
        ));
        let mut other_fingerprint = partials[1].clone();
        other_fingerprint.fingerprint ^= 1;
        assert!(matches!(
            PartialSweep::merge(&[partials[0].clone(), other_fingerprint]),
            Err(MergeError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn parse_rejects_foreign_schemas_and_malformed_documents() {
        let good = smoke_partials(1).remove(0).render();
        let foreign = good.replace(PARTIAL_SCHEMA, "lbica-partial-sweep/v0");
        assert!(matches!(PartialSweep::parse(&foreign), Err(PartialError::Schema(_))));
        assert!(matches!(PartialSweep::parse("not json"), Err(PartialError::Parse(_))));
        assert!(matches!(PartialSweep::parse("{}"), Err(PartialError::Parse(_))));
        let truncated = &good[..good.len() / 2];
        assert!(matches!(PartialSweep::parse(truncated), Err(PartialError::Parse(_))));
        let trailing = format!("{good}garbage");
        assert!(matches!(PartialSweep::parse(&trailing), Err(PartialError::Parse(_))));
    }

    #[test]
    fn parse_rejects_internally_inconsistent_documents() {
        let partial = smoke_partials(2).remove(0);
        // A cell range that does not match the shard arithmetic.
        let skewed = partial.render().replacen("\"cell_start\": 0", "\"cell_start\": 1", 1);
        assert!(matches!(PartialSweep::parse(&skewed), Err(PartialError::Invalid(_))));
        // A shard index outside the shard count.
        let out_of_range = partial.render().replacen("\"shard_index\": 0", "\"shard_index\": 7", 1);
        assert!(matches!(PartialSweep::parse(&out_of_range), Err(PartialError::Invalid(_))));
    }

    #[test]
    fn errors_render_actionable_messages() {
        let err = MergeError::FingerprintMismatch { expected: 0xabc, found: 0xdef };
        assert!(err.to_string().contains("different matrix definitions"));
        assert!(MergeError::MissingShard(3).to_string().contains("shard 3 is missing"));
        assert!(PartialError::Schema("x/v9".into()).to_string().contains(PARTIAL_SCHEMA));
    }

    #[test]
    fn write_and_read_round_trip_through_the_filesystem() {
        let partial = smoke_partials(1).remove(0);
        let dir = std::env::temp_dir().join("lbica-partial-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("part_0.json");
        partial.write_to(&path).expect("write");
        assert_eq!(PartialSweep::read_from(&path).expect("read"), partial);
        assert!(matches!(
            PartialSweep::read_from(&dir.join("nope.json")),
            Err(PartialError::Parse(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
