//! The controller axis of a scenario matrix.
//!
//! This lived in `lbica-bench` while the evaluation was hard-wired to the
//! paper's 3 × 3 grid; it moved here so that every layer that enumerates
//! scenarios (the sweep subsystem, the figure harness, the benches) shares
//! one definition. `lbica-bench` re-exports it under its old path.

use lbica_core::{LbicaController, SibController, WbController};
use lbica_sim::CacheController;

/// Which controller to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControllerKind {
    /// The write-back baseline.
    Wb,
    /// Selective I/O Bypass.
    Sib,
    /// The paper's contribution.
    Lbica,
    /// LBICA with the tier-aware actions enabled (per-tier policy
    /// overrides + Group-2 read-tail spilling); identical to
    /// [`ControllerKind::Lbica`] on flat configurations.
    LbicaTier,
}

impl ControllerKind {
    /// The paper's three schemes, in the order the paper plots them — the
    /// default controller axis. [`ControllerKind::LbicaTier`] is opt-in
    /// (the tiered-policy matrices add it explicitly) so every historical
    /// matrix keeps its exact cell set.
    pub const ALL: [ControllerKind; 3] =
        [ControllerKind::Wb, ControllerKind::Sib, ControllerKind::Lbica];

    /// The scheme's display label.
    pub const fn label(self) -> &'static str {
        match self {
            ControllerKind::Wb => "WB",
            ControllerKind::Sib => "SIB",
            ControllerKind::Lbica => "LBICA",
            ControllerKind::LbicaTier => "LBICA-T",
        }
    }

    /// Builds a fresh controller of this kind.
    pub fn build(self) -> Box<dyn CacheController + Send> {
        match self {
            ControllerKind::Wb => Box::new(WbController::new()),
            ControllerKind::Sib => Box::new(SibController::new()),
            ControllerKind::Lbica => Box::new(LbicaController::new()),
            ControllerKind::LbicaTier => Box::new(LbicaController::tier_aware()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_built_controller_names() {
        for kind in
            ControllerKind::ALL.into_iter().chain(std::iter::once(ControllerKind::LbicaTier))
        {
            assert_eq!(kind.build().name(), kind.label());
        }
    }

    #[test]
    fn all_lists_the_paper_schemes_only() {
        assert_eq!(ControllerKind::ALL.len(), 3);
        assert!(ControllerKind::ALL.contains(&ControllerKind::Wb));
        assert!(ControllerKind::ALL.contains(&ControllerKind::Sib));
        assert!(ControllerKind::ALL.contains(&ControllerKind::Lbica));
        assert!(!ControllerKind::ALL.contains(&ControllerKind::LbicaTier));
    }
}
