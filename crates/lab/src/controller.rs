//! The controller axis of a scenario matrix.
//!
//! This lived in `lbica-bench` while the evaluation was hard-wired to the
//! paper's 3 × 3 grid; it moved here so that every layer that enumerates
//! scenarios (the sweep subsystem, the figure harness, the benches) shares
//! one definition. `lbica-bench` re-exports it under its old path.

use lbica_core::{LbicaController, SibController, WbController};
use lbica_sim::CacheController;

/// Which controller to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControllerKind {
    /// The write-back baseline.
    Wb,
    /// Selective I/O Bypass.
    Sib,
    /// The paper's contribution.
    Lbica,
}

impl ControllerKind {
    /// All three schemes, in the order the paper plots them.
    pub const ALL: [ControllerKind; 3] =
        [ControllerKind::Wb, ControllerKind::Sib, ControllerKind::Lbica];

    /// The scheme's display label.
    pub const fn label(self) -> &'static str {
        match self {
            ControllerKind::Wb => "WB",
            ControllerKind::Sib => "SIB",
            ControllerKind::Lbica => "LBICA",
        }
    }

    /// Builds a fresh controller of this kind.
    pub fn build(self) -> Box<dyn CacheController + Send> {
        match self {
            ControllerKind::Wb => Box::new(WbController::new()),
            ControllerKind::Sib => Box::new(SibController::new()),
            ControllerKind::Lbica => Box::new(LbicaController::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_built_controller_names() {
        for kind in ControllerKind::ALL {
            assert_eq!(kind.build().name(), kind.label());
        }
    }

    #[test]
    fn all_lists_each_kind_once() {
        assert_eq!(ControllerKind::ALL.len(), 3);
        assert!(ControllerKind::ALL.contains(&ControllerKind::Wb));
        assert!(ControllerKind::ALL.contains(&ControllerKind::Sib));
        assert!(ControllerKind::ALL.contains(&ControllerKind::Lbica));
    }
}
