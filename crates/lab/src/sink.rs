//! CSV and JSON reporters for aggregated sweep summaries.
//!
//! Both sinks render from the deterministic [`SweepSummary`], so a sweep
//! produces byte-identical files regardless of `--jobs`. The JSON emitter
//! is hand-rolled: the build environment has no `serde_json`, and the
//! summary's shape is small and fixed.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::aggregate::{GroupStats, SweepSummary, TenantRow};

/// Renders a [`SweepSummary`] as a single CSV table.
///
/// Each row is one aggregation group tagged by `section`
/// (`total` / `workload` / `controller` / `config`); workload rows
/// additionally carry the LBICA-vs-WB delta columns. Rows for which the
/// delta is undefined carry an explicit `n/a` sentinel in both columns.
///
/// **Pairwise-delta limitation:** the delta columns compare exactly one
/// controller pair — LBICA against the WB baseline, the paper's headline
/// comparison — and are defined per *workload* group only. Any other row
/// (total/controller/config sections, and workload groups whose cells do
/// not contain both a LBICA and a WB run — e.g. a matrix whose controller
/// axis is `LBICA-T` vs `WB`) renders `n/a`. Generalizing to arbitrary
/// controller pairs is a tracked ROADMAP item ("Pairwise controller
/// deltas + a controller bake-off framework"); until it lands, `n/a`
/// distinguishes "no delta defined here" from a delta of zero.
#[derive(Debug, Clone, Copy)]
pub struct CsvSink;

impl CsvSink {
    /// The header line of the CSV output.
    pub const HEADER: &'static str = "section,key,cells,app_completed,avg_latency_us,\
         avg_p50_latency_us,avg_p95_latency_us,avg_p99_latency_us,\
         max_latency_us,avg_cache_load_us,avg_disk_load_us,policy_changes,bypassed_requests,\
         burst_intervals,cache_load_reduction_vs_wb_pct,latency_improvement_vs_wb_pct";

    /// Renders the summary to a CSV string.
    pub fn render(summary: &SweepSummary) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", Self::HEADER);
        Self::push_row(&mut out, "total", &summary.total, None);
        for group in &summary.by_workload {
            let delta = summary.delta(&group.key);
            Self::push_row(
                &mut out,
                "workload",
                group,
                delta.map(|d| (d.cache_load_reduction_vs_wb_pct, d.latency_improvement_vs_wb_pct)),
            );
        }
        for group in &summary.by_controller {
            Self::push_row(&mut out, "controller", group, None);
        }
        for group in &summary.by_config {
            Self::push_row(&mut out, "config", group, None);
        }
        for row in &summary.by_tenant {
            Self::push_tenant_row(&mut out, row);
        }
        out
    }

    /// Renders and writes the summary to `path`.
    pub fn write_to(path: &Path, summary: &SweepSummary) -> io::Result<()> {
        fs::write(path, Self::render(summary))
    }

    fn push_row(out: &mut String, section: &str, g: &GroupStats, delta: Option<(f64, f64)>) {
        let _ = write!(
            out,
            "{section},{},{},{},{:.3},{:.3},{:.3},{:.3},{},{:.3},{:.3},{},{},{}",
            g.key,
            g.cells,
            g.app_completed,
            g.avg_latency_us,
            g.avg_p50_latency_us,
            g.avg_p95_latency_us,
            g.avg_p99_latency_us,
            g.max_latency_us,
            g.avg_cache_load_us,
            g.avg_disk_load_us,
            g.policy_changes,
            g.bypassed_requests,
            g.burst_intervals,
        );
        match delta {
            Some((load, latency)) => {
                let _ = writeln!(out, ",{load:.3},{latency:.3}");
            }
            None => {
                // Explicit sentinel, not empty cells: consumers can tell
                // "no LBICA-vs-WB delta defined for this row" apart from
                // a blank field (see the pairwise-delta limitation above).
                let _ = writeln!(out, ",n/a,n/a");
            }
        }
    }

    /// Renders one per-tenant offered-load row in the shared 16-column
    /// shape: `cells` carries the stream count and `app_completed` the
    /// offered record count; the remaining measured columns are `n/a`
    /// because tenant rows describe the workload definition, not an
    /// executed cell. Full per-tenant fidelity (read/write split, sector
    /// volume) lives in the JSON sink's `by_tenant` array.
    fn push_tenant_row(out: &mut String, row: &TenantRow) {
        let _ = writeln!(
            out,
            "tenant,{}/t{}/{},{},{},n/a,n/a,n/a,n/a,n/a,n/a,n/a,n/a,n/a,n/a,n/a,n/a",
            row.workload, row.tenant, row.template, row.streams, row.records,
        );
    }
}

/// Renders a [`SweepSummary`] as a JSON document.
#[derive(Debug, Clone, Copy)]
pub struct JsonSink;

impl JsonSink {
    /// Renders the summary to a JSON string.
    pub fn render(summary: &SweepSummary) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"total\": {},", Self::group(&summary.total));
        Self::group_array(&mut out, "by_workload", &summary.by_workload);
        Self::group_array(&mut out, "by_controller", &summary.by_controller);
        Self::group_array(&mut out, "by_config", &summary.by_config);
        out.push_str("  \"by_tenant\": [");
        for (i, t) in summary.by_tenant.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"workload\": {}, \"tenant\": {}, \"template\": {}, \
                 \"streams\": {}, \"records\": {}, \"read_records\": {}, \
                 \"write_records\": {}, \"sectors\": {}}}",
                json_string(&t.workload),
                t.tenant,
                json_string(&t.template),
                t.streams,
                t.records,
                t.read_records,
                t.write_records,
                t.sectors,
            );
        }
        out.push_str("],\n");
        out.push_str("  \"lbica_vs_wb\": [");
        for (i, d) in summary.lbica_vs_wb.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"workload\": {}, \"cache_load_reduction_vs_wb_pct\": {:.3}, \
                 \"latency_improvement_vs_wb_pct\": {:.3}}}",
                json_string(&d.workload),
                d.cache_load_reduction_vs_wb_pct,
                d.latency_improvement_vs_wb_pct,
            );
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders and writes the summary to `path`.
    pub fn write_to(path: &Path, summary: &SweepSummary) -> io::Result<()> {
        fs::write(path, Self::render(summary))
    }

    fn group_array(out: &mut String, name: &str, groups: &[GroupStats]) {
        let _ = write!(out, "  \"{name}\": [");
        for (i, g) in groups.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&Self::group(g));
        }
        out.push_str("],\n");
    }

    fn group(g: &GroupStats) -> String {
        format!(
            "{{\"key\": {}, \"cells\": {}, \"app_completed\": {}, \
             \"avg_latency_us\": {:.3}, \"avg_p50_latency_us\": {:.3}, \
             \"avg_p95_latency_us\": {:.3}, \"avg_p99_latency_us\": {:.3}, \
             \"max_latency_us\": {}, \
             \"avg_cache_load_us\": {:.3}, \"avg_disk_load_us\": {:.3}, \
             \"policy_changes\": {}, \"bypassed_requests\": {}, \"burst_intervals\": {}}}",
            json_string(&g.key),
            g.cells,
            g.app_completed,
            g.avg_latency_us,
            g.avg_p50_latency_us,
            g.avg_p95_latency_us,
            g.avg_p99_latency_us,
            g.max_latency_us,
            g.avg_cache_load_us,
            g.avg_disk_load_us,
            g.policy_changes,
            g.bypassed_requests,
            g.burst_intervals,
        )
    }
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregator;
    use crate::executor::SweepExecutor;
    use crate::matrix::ScenarioMatrix;

    fn smoke_summary() -> SweepSummary {
        SweepExecutor::serial().aggregate(&ScenarioMatrix::smoke())
    }

    #[test]
    fn csv_has_one_row_per_group_plus_header() {
        let summary = smoke_summary();
        let csv = CsvSink::render(&summary);
        let expected = 1 // header
            + 1 // total
            + summary.by_workload.len()
            + summary.by_controller.len()
            + summary.by_config.len();
        assert_eq!(csv.lines().count(), expected);
        assert!(csv.starts_with("section,key,cells"));
        let header = csv.lines().next().unwrap();
        for column in ["avg_p50_latency_us", "avg_p95_latency_us", "avg_p99_latency_us"] {
            assert!(header.contains(column), "missing column {column}");
        }
        // Workload rows carry delta columns; the total row marks them n/a.
        let total_row = csv.lines().nth(1).unwrap();
        assert!(total_row.ends_with(",n/a,n/a"));
        let workload_row = csv.lines().find(|l| l.starts_with("workload,")).unwrap();
        assert!(!workload_row.ends_with(",n/a,n/a"));
        // Every row has the same column count as the header.
        let columns = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), columns, "row {line}");
        }
    }

    #[test]
    fn json_is_balanced_and_mentions_every_section() {
        let json = JsonSink::render(&smoke_summary());
        for key in [
            "\"total\"",
            "\"by_workload\"",
            "\"by_controller\"",
            "\"by_config\"",
            "\"lbica_vs_wb\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn renders_are_deterministic() {
        let a = smoke_summary();
        let b = smoke_summary();
        assert_eq!(CsvSink::render(&a), CsvSink::render(&b));
        assert_eq!(JsonSink::render(&a), JsonSink::render(&b));
    }

    #[test]
    fn empty_summary_renders_without_panicking() {
        let summary = Aggregator::new().summary();
        assert!(CsvSink::render(&summary).contains("total"));
        assert!(JsonSink::render(&summary).contains("\"cells\": 0"));
    }

    #[test]
    fn tenant_rows_render_in_both_sinks() {
        let matrix = ScenarioMatrix::multi_tenant();
        let summary = SweepExecutor::serial().aggregate(&matrix).with_tenant_rows(&matrix);
        assert_eq!(summary.by_tenant.len(), 7); // mt1 + mt2 + mt4

        let csv = CsvSink::render(&summary);
        let tenant_rows: Vec<&str> = csv.lines().filter(|l| l.starts_with("tenant,")).collect();
        assert_eq!(tenant_rows.len(), 7);
        assert!(tenant_rows.iter().any(|l| l.starts_with("tenant,mt4/t3/")));
        // Tenant rows keep the uniform column count of the table.
        let columns = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), columns, "row {line}");
        }

        let json = JsonSink::render(&summary);
        assert!(json.contains("\"by_tenant\""));
        assert!(json.contains("\"read_records\""));
        // `lbica_vs_wb` must stay the final key (no trailing comma after it).
        assert!(json.rfind("\"by_tenant\"").unwrap() < json.rfind("\"lbica_vs_wb\"").unwrap());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn tenant_free_summaries_render_an_empty_tenant_section() {
        let summary = smoke_summary();
        assert!(!CsvSink::render(&summary).contains("\ntenant,"));
        assert!(JsonSink::render(&summary).contains("\"by_tenant\": []"));
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }
}
