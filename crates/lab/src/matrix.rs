//! Declarative scenario matrices.

use lbica_cache::{ReplacementKind, WritePolicy};
use lbica_sim::{DiskDeviceConfig, SimulationConfig};
use lbica_tier::InclusionPolicy;
use lbica_trace::io::BinaryTraceCodec;
use lbica_trace::workload::{DiurnalCurve, WorkloadScale, WorkloadSpec};

use crate::controller::ControllerKind;
use crate::scenario::{derive_seed, fnv1a, splitmix64, Scenario, FNV_OFFSET};

/// A half-open `[start, end)` range of cell indices within a
/// [`ScenarioMatrix`] — the unit of work a shard of a distributed sweep
/// executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRange {
    /// First cell index in the range.
    pub start: usize,
    /// One past the last cell index in the range.
    pub end: usize,
}

impl CellRange {
    /// Number of cells in the range.
    pub const fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the range holds no cells.
    pub const fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// The `index`-th of `count` contiguous ranges partitioning
    /// `0..total`: every index is covered exactly once, range sizes differ
    /// by at most one, and the first `total % count` shards carry the
    /// extra cell. This arithmetic is part of the [`crate::PartialSweep`]
    /// compatibility contract — merge validation recomputes it to reject
    /// corrupt partials.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `index >= count`.
    pub fn shard_of(total: usize, index: usize, count: usize) -> CellRange {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range for {count} shard(s)");
        let base = total / count;
        let extra = total % count;
        let start = index * base + index.min(extra);
        let end = start + base + usize::from(index < extra);
        CellRange { start, end }
    }
}

/// How a cell's stream seed relates to the seed-axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMode {
    /// The stream seed is [`derive_seed`] of the cell coordinates (the
    /// default): unique per (workload, config, seed) triple and stable
    /// under axis reordering.
    Derived,
    /// The seed-axis value is passed to the simulation verbatim. Used by
    /// the figure harness, which pins one historical seed across every
    /// cell to reproduce the published tables bit-for-bit.
    Literal,
}

/// One value of the simulator-configuration axis: a configuration plus the
/// label it is keyed by in aggregates and cell ids.
#[derive(Debug, Clone)]
pub struct ConfigAxis {
    /// The label (keeps cell ids readable; also the aggregation key).
    pub label: String,
    /// The configuration itself.
    pub config: SimulationConfig,
}

impl ConfigAxis {
    /// Creates a labelled configuration.
    pub fn new(label: impl Into<String>, config: SimulationConfig) -> Self {
        ConfigAxis { label: label.into(), config }
    }
}

/// A cartesian product of scenario axes, expanded lazily into [`Scenario`]
/// cells.
///
/// Cell order is workload-major: workloads, then configurations, then
/// controllers, then seeds. The order only affects *enumeration* — every
/// cell's stream seed is a pure function of its coordinates (see
/// [`SeedMode`]), so results are independent of both enumeration and
/// execution order.
///
/// # Example
///
/// Assemble a custom matrix from builder calls and run one cell:
///
/// ```
/// use lbica_lab::{ControllerKind, ScenarioMatrix};
/// use lbica_sim::SimulationConfig;
/// use lbica_trace::workload::{WorkloadScale, WorkloadSpec};
///
/// let matrix = ScenarioMatrix::new()
///     .push_workload(WorkloadSpec::web_server_scaled(WorkloadScale::tiny()))
///     .push_config("flat", SimulationConfig::tiny())
///     .push_config("tier2", SimulationConfig::tiny_two_tier())
///     .with_controllers(&[ControllerKind::Wb, ControllerKind::LbicaTier])
///     .with_seed_range(2);
///
/// // 1 workload x 2 configs x 2 controllers x 2 seeds.
/// assert_eq!(matrix.len(), 8);
/// let cell = matrix.cell(0).unwrap();
/// assert_eq!(cell.id(), "web-server/flat/WB/s0");
/// let report = cell.run();
/// assert!(report.app_completed > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    workloads: Vec<WorkloadSpec>,
    configs: Vec<ConfigAxis>,
    controllers: Vec<ControllerKind>,
    seeds: Vec<u64>,
    seed_mode: SeedMode,
}

impl Default for ScenarioMatrix {
    fn default() -> Self {
        ScenarioMatrix::new()
    }
}

impl ScenarioMatrix {
    /// An empty matrix with the controller axis pre-populated with all
    /// three schemes and a single seed. Add workloads and configurations
    /// with the builder methods.
    pub fn new() -> Self {
        ScenarioMatrix {
            workloads: Vec::new(),
            configs: Vec::new(),
            controllers: ControllerKind::ALL.to_vec(),
            seeds: vec![0],
            seed_mode: SeedMode::Derived,
        }
    }

    /// Appends a workload to the workload axis (builder style).
    ///
    /// # Panics
    ///
    /// Panics if a workload with the same name is already on the axis:
    /// names key the derived stream seeds, cell ids and aggregation rows,
    /// so a duplicate would silently collide all three.
    pub fn push_workload(mut self, spec: WorkloadSpec) -> Self {
        assert!(
            self.workloads.iter().all(|w| w.name() != spec.name()),
            "duplicate workload name `{}` on the workload axis",
            spec.name()
        );
        self.workloads.push(spec);
        self
    }

    /// Replaces the workload axis (builder style).
    ///
    /// # Panics
    ///
    /// Panics if two workloads share a name (see
    /// [`ScenarioMatrix::push_workload`]).
    pub fn with_workloads(self, specs: Vec<WorkloadSpec>) -> Self {
        let mut matrix = Self { workloads: Vec::with_capacity(specs.len()), ..self };
        for spec in specs {
            matrix = matrix.push_workload(spec);
        }
        matrix
    }

    /// Appends a labelled configuration to the configuration axis
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the label is already on the axis: labels key the derived
    /// stream seeds, cell ids and aggregation rows.
    pub fn push_config(mut self, label: impl Into<String>, config: SimulationConfig) -> Self {
        let axis = ConfigAxis::new(label, config);
        assert!(
            self.configs.iter().all(|c| c.label != axis.label),
            "duplicate config label `{}` on the configuration axis",
            axis.label
        );
        self.configs.push(axis);
        self
    }

    /// Replaces the controller axis (builder style).
    pub fn with_controllers(mut self, controllers: &[ControllerKind]) -> Self {
        self.controllers = controllers.to_vec();
        self
    }

    /// Replaces the seed axis (builder style).
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the seed axis to `0..replicates` (builder style).
    pub fn with_seed_range(self, replicates: u64) -> Self {
        self.with_seeds((0..replicates).collect())
    }

    /// Pins a single literal seed shared by every cell (builder style):
    /// the harness mode — see [`SeedMode::Literal`].
    pub fn with_literal_seed(mut self, seed: u64) -> Self {
        self.seeds = vec![seed];
        self.seed_mode = SeedMode::Literal;
        self
    }

    /// The workload axis.
    pub fn workloads(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    /// The configuration axis.
    pub fn configs(&self) -> &[ConfigAxis] {
        &self.configs
    }

    /// The controller axis.
    pub fn controllers(&self) -> &[ControllerKind] {
        &self.controllers
    }

    /// The seed axis.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// How stream seeds are produced.
    pub const fn seed_mode(&self) -> SeedMode {
        self.seed_mode
    }

    /// Number of cells in the matrix (the product of the axis lengths).
    pub fn len(&self) -> usize {
        self.workloads.len() * self.configs.len() * self.controllers.len() * self.seeds.len()
    }

    /// Whether the matrix has no cells (any axis empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole cell index space as a [`CellRange`].
    pub fn full_range(&self) -> CellRange {
        CellRange { start: 0, end: self.len() }
    }

    /// The `index`-th of `count` contiguous cell ranges partitioning the
    /// matrix (see [`CellRange::shard_of`] for the arithmetic).
    ///
    /// Because every cell's stream seed is a pure function of its
    /// *coordinates* (never of iteration order — see
    /// [`crate::scenario::derive_seed`]), a cell produces bit-identical
    /// results whether it runs inside shard `i` of `N` or inside a
    /// single-process sweep: sharding changes only which process runs the
    /// cell.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `index >= count`; the `sweep` binary
    /// validates `--shard i/N` before reaching this call.
    pub fn shard(&self, index: usize, count: usize) -> CellRange {
        CellRange::shard_of(self.len(), index, count)
    }

    /// A stable fingerprint of the matrix *definition* — the axis
    /// coordinates (workload identities, configuration labels and debug
    /// representations, controller labels, seed values) plus the seed
    /// mode. Two matrices that would expand to different cells fingerprint
    /// differently; `sweep merge` refuses to combine partials whose
    /// fingerprints disagree, so shards of different matrices (or of the
    /// same matrix built with different axes) cannot be silently mixed.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(b"lbica-matrix-fingerprint/v1", FNV_OFFSET);
        h = fnv1a(
            &[match self.seed_mode {
                SeedMode::Derived => 0u8,
                SeedMode::Literal => 1u8,
            }],
            h,
        );
        let section = |mut h: u64, len: usize| {
            h = fnv1a(&[0xfe], h);
            fnv1a(&(len as u64).to_le_bytes(), h)
        };
        h = section(h, self.workloads.len());
        for w in &self.workloads {
            h = fnv1a(w.name().as_bytes(), h);
            h = fnv1a(&[0xff], h);
            h = fnv1a(&w.interval_us().to_le_bytes(), h);
            h = fnv1a(&u64::from(w.total_intervals()).to_le_bytes(), h);
            h = fnv1a(&[u8::from(w.is_replay())], h);
            h = fnv1a(&(w.replay_records().len() as u64).to_le_bytes(), h);
        }
        h = section(h, self.configs.len());
        for c in &self.configs {
            h = fnv1a(c.label.as_bytes(), h);
            h = fnv1a(&[0xff], h);
            // The Debug representation covers every configuration field
            // (geometry, devices, tier topology, ...) without this hash
            // needing to track the struct's evolution.
            h = fnv1a(format!("{:?}", c.config).as_bytes(), h);
            h = fnv1a(&[0xff], h);
        }
        h = section(h, self.controllers.len());
        for k in &self.controllers {
            h = fnv1a(k.label().as_bytes(), h);
            h = fnv1a(&[0xff], h);
        }
        h = section(h, self.seeds.len());
        for s in &self.seeds {
            h = fnv1a(&s.to_le_bytes(), h);
        }
        splitmix64(h)
    }

    /// Expands cell `index` (in workload-major order), or `None` past the
    /// end. O(1): the matrix never materializes its cells.
    pub fn cell(&self, index: usize) -> Option<Scenario> {
        if index >= self.len() {
            return None;
        }
        let ns = self.seeds.len();
        let nk = self.controllers.len();
        let nc = self.configs.len();
        let s = index % ns;
        let rest = index / ns;
        let k = rest % nk;
        let rest = rest / nk;
        let c = rest % nc;
        let w = rest / nc;

        let workload = &self.workloads[w];
        let axis = &self.configs[c];
        let seed = self.seeds[s];
        let stream_seed = match self.seed_mode {
            SeedMode::Derived => derive_seed(workload.name(), &axis.label, seed),
            SeedMode::Literal => seed,
        };
        Some(Scenario::new(
            workload.clone(),
            axis.label.clone(),
            axis.config,
            self.controllers[k],
            seed,
            stream_seed,
        ))
    }

    /// Lazily iterates over every cell in enumeration order.
    pub fn cells(&self) -> impl Iterator<Item = Scenario> + '_ {
        (0..self.len()).map(|i| self.cell(i).expect("index in bounds"))
    }

    /// The paper's canonical figure matrix: the three canned workloads at
    /// `scale` under all three controllers against a single configuration,
    /// sharing one literal seed (so the schemes see identical arrivals and
    /// the historical headline tables reproduce exactly).
    pub fn paper(scale: WorkloadScale, sim: SimulationConfig, seed: u64) -> Self {
        ScenarioMatrix::new()
            .with_workloads(WorkloadSpec::paper_suite(scale))
            .push_config("paper", sim)
            .with_literal_seed(seed)
    }

    /// The perf-trajectory matrix tracked by the committed
    /// `BENCH_sim.json`: the paper's canonical cells plus the same
    /// workloads against a two-level (hot + QLC warm) hierarchy derived
    /// from the same configuration — 18 cells sharing one literal seed.
    pub fn paper_tiered(scale: WorkloadScale, sim: SimulationConfig, seed: u64) -> Self {
        ScenarioMatrix::paper(scale, sim, seed).push_config("tier2", sim.two_tier_qlc())
    }

    /// The CI smoke matrix: 4 workloads (the paper's three plus a
    /// parameterized synthetic mix) × 3 controllers × 3 seeds at tiny
    /// scale — 36 cells.
    pub fn tiny() -> Self {
        let scale = WorkloadScale::tiny();
        let mut workloads = WorkloadSpec::paper_suite(scale);
        workloads.push(WorkloadSpec::synthetic_scaled("synthetic-mixed", scale, 0.35));
        ScenarioMatrix::new()
            .with_workloads(workloads)
            .push_config("tiny", SimulationConfig::tiny())
            .with_seed_range(3)
    }

    /// A minimal matrix for doctests and wiring tests: 2 workloads × 3
    /// controllers × 1 seed — 6 cells.
    pub fn smoke() -> Self {
        let scale = WorkloadScale::tiny();
        ScenarioMatrix::new()
            .push_workload(WorkloadSpec::web_server_scaled(scale))
            .push_workload(WorkloadSpec::synthetic_scaled("synthetic-mixed", scale, 0.35))
            .push_config("tiny", SimulationConfig::tiny())
    }

    /// A cache-geometry sweep: the paper's workloads at tiny scale against
    /// three cache sizes (half / paper / double the tiny set count).
    pub fn geometry() -> Self {
        let scale = WorkloadScale::tiny();
        let base = SimulationConfig::tiny();
        ScenarioMatrix::new()
            .with_workloads(WorkloadSpec::paper_suite(scale))
            .push_config("sets-64", base.with_cache_sets(64))
            .push_config("sets-128", base)
            .push_config("sets-256", base.with_cache_sets(256))
    }

    /// A disk-device sweep: the tiny workloads against the mid-range-SSD
    /// disk subsystem and the raw 7.2K SAS HDD.
    pub fn devices() -> Self {
        let scale = WorkloadScale::tiny();
        let base = SimulationConfig::tiny();
        ScenarioMatrix::new()
            .with_workloads(WorkloadSpec::paper_suite(scale))
            .push_config("midrange-ssd", base)
            .push_config("hdd", base.with_disk_device(DiskDeviceConfig::seagate_hdd()))
    }

    /// The tier-count/tier-geometry axis: the paper's workloads at tiny
    /// scale against the flat cache, a two-level and a three-level
    /// hierarchy — 27 cells exercising the tiered datapath end to end.
    pub fn tiered() -> Self {
        let scale = WorkloadScale::tiny();
        ScenarioMatrix::new()
            .with_workloads(WorkloadSpec::paper_suite(scale))
            .push_config("flat", SimulationConfig::tiny())
            .push_config("tier2", SimulationConfig::tiny_two_tier())
            .push_config("tier3", SimulationConfig::tiny_three_tier())
    }

    /// The replacement-policy axis: the paper's workloads at tiny scale
    /// under LRU and FIFO victim selection — 18 cells.
    pub fn replacement() -> Self {
        let scale = WorkloadScale::tiny();
        let base = SimulationConfig::tiny();
        ScenarioMatrix::new()
            .with_workloads(WorkloadSpec::paper_suite(scale))
            .push_config("lru", base.with_replacement(ReplacementKind::Lru))
            .push_config("fifo", base.with_replacement(ReplacementKind::Fifo))
    }

    /// The per-tier write-policy axis: the paper's workloads at tiny scale
    /// against a two-level hierarchy whose *warm* tier starts under a
    /// different write policy — uniform write-back, a write-through warm
    /// tier and a read-only warm tier — under the WB baseline, the paper's
    /// LBICA and the tier-aware `LBICA-T` (per-tier overrides + read
    /// spilling) — 27 cells. The axis varies the warm tier because the hot
    /// tier's run-start policy is owned by the controller
    /// (`CacheController::initial_policy`); lower levels keep their
    /// configured policies.
    pub fn tier_policy() -> Self {
        let scale = WorkloadScale::tiny();
        let base = SimulationConfig::tiny_two_tier();
        ScenarioMatrix::new()
            .with_workloads(WorkloadSpec::paper_suite(scale))
            .push_config("uniform-wb", base)
            .push_config("warm-wt", base.with_tier_level_policy(1, WritePolicy::WriteThrough))
            .push_config("warm-ro", base.with_tier_level_policy(1, WritePolicy::ReadOnly))
            .with_controllers(&[
                ControllerKind::Wb,
                ControllerKind::Lbica,
                ControllerKind::LbicaTier,
            ])
    }

    /// The inclusion axis: the paper's workloads at tiny scale against the
    /// same two-level hierarchy run exclusive (promotion moves blocks) and
    /// inclusive (promotion copies, with back-invalidation) — 18 cells.
    pub fn inclusion() -> Self {
        let scale = WorkloadScale::tiny();
        let base = SimulationConfig::tiny_two_tier();
        ScenarioMatrix::new()
            .with_workloads(WorkloadSpec::paper_suite(scale))
            .push_config("exclusive", base)
            .push_config("inclusive", base.with_tier_inclusion(InclusionPolicy::Inclusive))
    }

    /// The Zipfian-skew axis: one heavy-tail workload per skew value, from
    /// uniform-random (0) to strongly concentrated (1200 permille), under
    /// all three controllers — 12 cells. Cache hit rates rise monotonically
    /// with skew (pinned by the generator property suite).
    pub fn zipf() -> Self {
        let scale = WorkloadScale::tiny();
        let workloads = [0u32, 600, 900, 1200]
            .iter()
            .map(|&skew| WorkloadSpec::zipfian_scaled(format!("zipf-{skew}"), scale, skew))
            .collect();
        ScenarioMatrix::new()
            .with_workloads(workloads)
            .push_config("tiny", SimulationConfig::tiny())
    }

    /// The diurnal-modulation axis: the paper's workloads as-is and
    /// reshaped by the canned day/night load curve — 18 cells. The curve
    /// scales arrival rates only; record shapes and per-interval seeds are
    /// untouched, so the flat and curved variants stay comparable.
    pub fn diurnal() -> Self {
        let scale = WorkloadScale::tiny();
        let mut workloads = WorkloadSpec::paper_suite(scale);
        for spec in WorkloadSpec::paper_suite(scale) {
            let name = format!("{}-diurnal", spec.name());
            workloads.push(spec.with_diurnal(DiurnalCurve::day_night()).with_name(name));
        }
        ScenarioMatrix::new()
            .with_workloads(workloads)
            .push_config("tiny", SimulationConfig::tiny())
    }

    /// The tenant-count axis: the same fixed per-tenant templates
    /// interleaved as 1 / 2 / 4 tenants — 9 cells. The templates are
    /// identical across the axis (not rescaled per tenant count), so under
    /// a shared stream seed each tenant's private stream is byte-identical
    /// in every cell and only the interleaving widens; with the default
    /// derived seeds each mix draws its own streams (pin the comparison
    /// with [`ScenarioMatrix::with_literal_seed`] when pairing mixes).
    pub fn multi_tenant() -> Self {
        let scale = WorkloadScale::tiny();
        let workloads = [1u32, 2, 4]
            .iter()
            .map(|&count| {
                WorkloadSpec::multi_tenant(
                    format!("mt{count}"),
                    count,
                    scale.cache_blocks * 4,
                    WorkloadSpec::paper_suite(scale),
                )
            })
            .collect();
        ScenarioMatrix::new()
            .with_workloads(workloads)
            .push_config("tiny", SimulationConfig::tiny())
    }

    /// The multi-tenant headline grid: the paper's three workloads
    /// interleaved as six client streams, against the flat cache and a
    /// two-level hierarchy, under all three controllers — 6 cells. The CI
    /// workload-smoke matrix.
    pub fn paper_mt() -> Self {
        let scale = WorkloadScale::tiny();
        ScenarioMatrix::new()
            .push_workload(WorkloadSpec::paper_mt_scaled(scale, 6))
            .push_config("flat", SimulationConfig::tiny())
            .push_config("tier2", SimulationConfig::tiny_two_tier())
    }

    /// Trace-replay cells: captured [`lbica_trace::record::TraceRecord`]
    /// streams fed through the matrix instead of synthetic generators.
    /// Each workload replays the same recorded arrivals for every
    /// controller, seed and worker count, so the whole matrix is
    /// deterministic by construction.
    pub fn replay(traces: Vec<WorkloadSpec>, config: SimulationConfig) -> Self {
        for spec in &traces {
            assert!(spec.is_replay(), "`{}` is not a replay workload", spec.name());
        }
        ScenarioMatrix::new().with_workloads(traces).push_config("replay", config)
    }

    /// A self-contained replay demo matrix: two synthetic captures are
    /// generated, round-tripped through the [`BinaryTraceCodec`] (so the
    /// cells exercise the real capture→encode→decode→replay pipeline) and
    /// swept under all three controllers — 6 cells.
    pub fn replay_demo() -> Self {
        let scale = WorkloadScale::tiny();
        let codec = BinaryTraceCodec;
        let traces = [("replay-mixed", 0.5f64), ("replay-writes", 0.1)]
            .iter()
            .map(|(name, read_fraction)| {
                let synthetic = WorkloadSpec::synthetic_scaled(*name, scale, *read_fraction);
                let captured = codec.encode(&synthetic.generate_all(0x000b_1b1c));
                WorkloadSpec::replay_from_binary(*name, synthetic.interval_us(), captured)
                    .expect("the codec round-trips its own encoding")
            })
            .collect();
        ScenarioMatrix::replay(traces, SimulationConfig::tiny())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn len_is_the_axis_product_and_empty_axes_empty_the_matrix() {
        let m = ScenarioMatrix::tiny();
        // 4 workloads × 1 config × 3 controllers × 3 seeds.
        assert_eq!(m.len(), 36);
        assert!(!m.is_empty());
        let empty = ScenarioMatrix::new();
        assert!(empty.is_empty());
        assert!(empty.cell(0).is_none());
        assert_eq!(empty.cells().count(), 0);
    }

    #[test]
    fn enumeration_is_workload_major_then_config_controller_seed() {
        let m = ScenarioMatrix::smoke();
        let ids: Vec<String> = m.cells().map(|c| c.id()).collect();
        assert_eq!(ids.len(), 6);
        assert_eq!(ids[0], "web-server/tiny/WB/s0");
        assert_eq!(ids[1], "web-server/tiny/SIB/s0");
        assert_eq!(ids[2], "web-server/tiny/LBICA/s0");
        assert_eq!(ids[3], "synthetic-mixed/tiny/WB/s0");
        assert!(m.cell(6).is_none());
    }

    #[test]
    fn derived_seeds_are_shared_across_controllers_but_not_coordinates() {
        let m = ScenarioMatrix::tiny();
        // Group stream seeds by (workload, config, seed): each group holds
        // all three controllers and exactly one stream seed.
        let mut groups: BTreeMap<(String, String, u64), Vec<u64>> = BTreeMap::new();
        for cell in m.cells() {
            groups
                .entry((
                    cell.workload().name().to_string(),
                    cell.config_label().to_string(),
                    cell.seed(),
                ))
                .or_default()
                .push(cell.stream_seed());
        }
        assert_eq!(groups.len(), 4 * 3);
        let mut distinct: Vec<u64> = Vec::new();
        for seeds in groups.values() {
            assert_eq!(seeds.len(), 3, "one cell per controller");
            assert!(seeds.windows(2).all(|w| w[0] == w[1]), "controllers share the stream");
            distinct.push(seeds[0]);
        }
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 4 * 3, "stream seeds unique per coordinate triple");
    }

    #[test]
    #[should_panic(expected = "duplicate workload name")]
    fn duplicate_workload_names_are_rejected() {
        let scale = WorkloadScale::tiny();
        let _ = ScenarioMatrix::new()
            .push_workload(WorkloadSpec::synthetic_scaled("syn", scale, 0.2))
            .push_workload(WorkloadSpec::synthetic_scaled("syn", scale, 0.8));
    }

    #[test]
    #[should_panic(expected = "duplicate config label")]
    fn duplicate_config_labels_are_rejected() {
        let _ = ScenarioMatrix::new()
            .push_config("tiny", SimulationConfig::tiny())
            .push_config("tiny", SimulationConfig::tiny().with_cache_sets(64));
    }

    #[test]
    fn literal_mode_passes_the_seed_through() {
        let m = ScenarioMatrix::paper(WorkloadScale::tiny(), SimulationConfig::tiny(), 99);
        assert_eq!(m.seed_mode(), SeedMode::Literal);
        assert_eq!(m.len(), 9);
        assert!(m.cells().all(|c| c.stream_seed() == 99));
    }

    #[test]
    fn geometry_and_device_matrices_vary_the_config_axis() {
        let g = ScenarioMatrix::geometry();
        assert_eq!(g.len(), 3 * 3 * 3);
        assert_eq!(g.configs()[0].config.cache_capacity_blocks(), 256);
        assert_eq!(g.configs()[2].config.cache_capacity_blocks(), 1024);
        let d = ScenarioMatrix::devices();
        assert_eq!(d.len(), 3 * 2 * 3);
        assert_ne!(d.configs()[0].config.disk_device, d.configs()[1].config.disk_device);
    }

    #[test]
    fn tiered_matrix_spans_tier_counts() {
        let t = ScenarioMatrix::tiered();
        assert_eq!(t.len(), 3 * 3 * 3);
        let counts: Vec<usize> = t.configs().iter().map(|c| c.config.tier_count()).collect();
        assert_eq!(counts, vec![1, 2, 3]);
    }

    #[test]
    fn replacement_matrix_spans_both_policies() {
        use lbica_cache::ReplacementKind;
        let m = ScenarioMatrix::replacement();
        assert_eq!(m.len(), 3 * 2 * 3);
        assert_eq!(m.configs()[0].config.cache.replacement, ReplacementKind::Lru);
        assert_eq!(m.configs()[1].config.cache.replacement, ReplacementKind::Fifo);
    }

    #[test]
    fn paper_tiered_matrix_extends_the_canonical_grid() {
        let m = ScenarioMatrix::paper_tiered(WorkloadScale::tiny(), SimulationConfig::tiny(), 9);
        assert_eq!(m.len(), 3 * 2 * 3);
        assert_eq!(m.seed_mode(), SeedMode::Literal);
        assert_eq!(m.configs()[0].config.tier_count(), 1);
        assert_eq!(m.configs()[1].config.tier_count(), 2);
        assert!(m.cells().all(|c| c.stream_seed() == 9));
    }

    #[test]
    fn tier_policy_matrix_varies_initial_policies_and_adds_the_tier_controller() {
        let m = ScenarioMatrix::tier_policy();
        assert_eq!(m.len(), 3 * 3 * 3);
        let topo = |i: usize| m.configs()[i].config.tiers.unwrap();
        assert_eq!(topo(0).level(0).write_policy(), WritePolicy::WriteBack);
        assert_eq!(topo(1).level(1).write_policy(), WritePolicy::WriteThrough);
        assert_eq!(topo(2).level(1).write_policy(), WritePolicy::ReadOnly);
        assert_eq!(topo(2).level(0).write_policy(), WritePolicy::WriteBack);
        assert!(m.controllers().contains(&ControllerKind::LbicaTier));
    }

    #[test]
    fn inclusion_matrix_spans_both_modes() {
        let m = ScenarioMatrix::inclusion();
        assert_eq!(m.len(), 3 * 2 * 3);
        assert_eq!(m.configs()[0].config.tiers.unwrap().inclusion, InclusionPolicy::Exclusive);
        assert_eq!(m.configs()[1].config.tiers.unwrap().inclusion, InclusionPolicy::Inclusive);
    }

    #[test]
    fn zipf_matrix_spans_the_skew_axis() {
        let m = ScenarioMatrix::zipf();
        // 4 workloads x 1 config x 3 controllers x 1 seed.
        assert_eq!(m.len(), 12);
        let names: Vec<&str> = m.workloads().iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["zipf-0", "zipf-600", "zipf-900", "zipf-1200"]);
    }

    #[test]
    fn diurnal_matrix_pairs_flat_and_curved_variants() {
        let m = ScenarioMatrix::diurnal();
        // 6 workloads x 1 config x 3 controllers x 1 seed.
        assert_eq!(m.len(), 18);
        let curved: Vec<&WorkloadSpec> =
            m.workloads().iter().filter(|w| w.diurnal().is_some()).collect();
        assert_eq!(curved.len(), 3);
        assert!(curved.iter().all(|w| w.name().ends_with("-diurnal")));
        // Curved variants keep the flat variants' interval structure.
        for w in &curved {
            let base = w.name().trim_end_matches("-diurnal");
            let flat = m.workloads().iter().find(|f| f.name() == base).unwrap();
            assert_eq!(w.total_intervals(), flat.total_intervals());
        }
    }

    #[test]
    fn multi_tenant_matrix_reuses_identical_templates_across_counts() {
        let m = ScenarioMatrix::multi_tenant();
        // 3 workloads x 1 config x 3 controllers x 1 seed.
        assert_eq!(m.len(), 9);
        let counts: Vec<u32> = m.workloads().iter().map(|w| w.tenant_count()).collect();
        assert_eq!(counts, vec![1, 2, 4]);
        // Fixed templates: the mt2 and mt4 mixes carry byte-identical
        // template lists, which is what makes per-tenant streams stable
        // under the tenant-count axis.
        let t2 = m.workloads()[1].tenants().unwrap();
        let t4 = m.workloads()[2].tenants().unwrap();
        assert_eq!(t2.templates().len(), t4.templates().len());
        for (a, b) in t2.templates().iter().zip(t4.templates()) {
            assert_eq!(a.name(), b.name());
        }
    }

    #[test]
    fn paper_mt_matrix_is_the_six_tenant_smoke_grid() {
        let m = ScenarioMatrix::paper_mt();
        // 1 workload x 2 configs x 3 controllers x 1 seed.
        assert_eq!(m.len(), 6);
        assert_eq!(m.workloads()[0].tenant_count(), 6);
        assert_eq!(m.configs()[0].config.tier_count(), 1);
        assert_eq!(m.configs()[1].config.tier_count(), 2);
    }

    #[test]
    fn replay_demo_matrix_builds_codec_backed_cells() {
        let m = ScenarioMatrix::replay_demo();
        assert_eq!(m.len(), 6, "2 replay workloads x 1 config x 3 controllers");
        assert!(m.workloads().iter().all(|w| w.is_replay()));
        assert!(m.workloads().iter().all(|w| !w.replay_records().is_empty()));
    }

    #[test]
    #[should_panic(expected = "not a replay workload")]
    fn replay_matrix_rejects_synthetic_workloads() {
        let synthetic = WorkloadSpec::web_server_scaled(WorkloadScale::tiny());
        let _ = ScenarioMatrix::replay(vec![synthetic], SimulationConfig::tiny());
    }

    #[test]
    fn shards_partition_the_cell_space_contiguously() {
        let m = ScenarioMatrix::tiny();
        for count in 1..=7 {
            let mut covered = Vec::new();
            let mut sizes = Vec::new();
            for index in 0..count {
                let range = m.shard(index, count);
                if index == 0 {
                    assert_eq!(range.start, 0);
                }
                if index + 1 == count {
                    assert_eq!(range.end, m.len());
                }
                if index > 0 {
                    assert_eq!(range.start, m.shard(index - 1, count).end, "contiguous");
                }
                sizes.push(range.len());
                covered.extend(range.start..range.end);
            }
            assert_eq!(covered, (0..m.len()).collect::<Vec<_>>(), "count {count}");
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced within one cell for count {count}");
        }
    }

    #[test]
    fn sharding_preserves_cell_identity_and_seeds() {
        let m = ScenarioMatrix::tiny();
        let whole: Vec<(String, u64)> = m.cells().map(|c| (c.id(), c.stream_seed())).collect();
        let mut sharded = Vec::new();
        for index in 0..3 {
            let range = m.shard(index, 3);
            for i in range.start..range.end {
                let cell = m.cell(i).expect("in bounds");
                sharded.push((cell.id(), cell.stream_seed()));
            }
        }
        assert_eq!(whole, sharded);
    }

    #[test]
    fn empty_and_oversharded_matrices_yield_empty_tail_ranges() {
        let empty = ScenarioMatrix::new();
        let range = empty.shard(0, 4);
        assert!(range.is_empty());
        assert_eq!(range.len(), 0);
        // More shards than cells: the tail shards are empty, the first
        // `len` shards carry one cell each.
        let m = ScenarioMatrix::smoke();
        assert_eq!(m.len(), 6);
        assert_eq!(m.shard(0, 10).len(), 1);
        assert!(m.shard(9, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "shard index 2 out of range")]
    fn shard_index_must_be_below_count() {
        let _ = ScenarioMatrix::smoke().shard(2, 2);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn shard_count_must_be_positive() {
        let _ = ScenarioMatrix::smoke().shard(0, 0);
    }

    #[test]
    fn fingerprints_track_the_matrix_definition() {
        let a = ScenarioMatrix::tiny();
        assert_eq!(a.fingerprint(), ScenarioMatrix::tiny().fingerprint(), "stable");
        assert_ne!(a.fingerprint(), ScenarioMatrix::smoke().fingerprint());
        assert_ne!(a.fingerprint(), ScenarioMatrix::geometry().fingerprint());
        // Same shape, different seed axis values → different fingerprint.
        let reseeded = ScenarioMatrix::tiny().with_seeds(vec![5, 6, 7]);
        assert_eq!(reseeded.len(), a.len());
        assert_ne!(a.fingerprint(), reseeded.fingerprint());
        // Same labels, different configuration contents.
        let base = ScenarioMatrix::smoke();
        let regeared = ScenarioMatrix::new()
            .push_workload(WorkloadSpec::web_server_scaled(WorkloadScale::tiny()))
            .push_workload(WorkloadSpec::synthetic_scaled(
                "synthetic-mixed",
                WorkloadScale::tiny(),
                0.35,
            ))
            .push_config("tiny", SimulationConfig::tiny().with_cache_sets(64));
        assert_ne!(base.fingerprint(), regeared.fingerprint());
    }
}
