//! Streaming aggregation of sweep results.
//!
//! The [`Aggregator`] folds each [`SimulationReport`] into per-axis
//! accumulators the moment it arrives and then drops it, so a sweep of
//! thousands of cells holds O(axis values) state, not O(cells). All
//! accumulators are integers — sums of `u64` measurements in `u128` —
//! which makes the fold associative and commutative: the summary is
//! bit-identical no matter how many worker threads completed the cells or
//! in which order.

use std::collections::BTreeMap;

use lbica_sim::SimulationReport;

use crate::controller::ControllerKind;
use crate::matrix::{ScenarioMatrix, SeedMode};
use crate::scenario::{derive_seed, Scenario};

/// Integer accumulator for one aggregation key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Accum {
    cells: u64,
    app_completed: u64,
    latency_sum_us: u128,
    p50_sum_us: u128,
    p95_sum_us: u128,
    p99_sum_us: u128,
    max_latency_us: u64,
    intervals: u64,
    cache_load_sum_us: u128,
    disk_load_sum_us: u128,
    policy_changes: u64,
    bypassed: u64,
    burst_intervals: u64,
}

impl Accum {
    fn fold(&mut self, cell: &CellSummary) {
        self.cells += 1;
        self.app_completed += cell.app_completed;
        self.latency_sum_us += cell.avg_latency_us as u128;
        self.p50_sum_us += cell.p50_latency_us as u128;
        self.p95_sum_us += cell.p95_latency_us as u128;
        self.p99_sum_us += cell.p99_latency_us as u128;
        self.max_latency_us = self.max_latency_us.max(cell.max_latency_us);
        self.intervals += cell.intervals;
        self.cache_load_sum_us += cell.cache_load_sum_us;
        self.disk_load_sum_us += cell.disk_load_sum_us;
        self.policy_changes += cell.policy_changes;
        self.bypassed += cell.bypassed_requests;
        self.burst_intervals += cell.burst_intervals;
    }

    fn avg_latency_us(&self) -> f64 {
        ratio(self.latency_sum_us, self.cells as u128)
    }

    fn avg_cache_load_us(&self) -> f64 {
        ratio(self.cache_load_sum_us, self.intervals as u128)
    }

    fn avg_disk_load_us(&self) -> f64 {
        ratio(self.disk_load_sum_us, self.intervals as u128)
    }

    fn stats(&self, key: String) -> GroupStats {
        GroupStats {
            key,
            cells: self.cells,
            app_completed: self.app_completed,
            avg_latency_us: self.avg_latency_us(),
            avg_p50_latency_us: ratio(self.p50_sum_us, self.cells as u128),
            avg_p95_latency_us: ratio(self.p95_sum_us, self.cells as u128),
            avg_p99_latency_us: ratio(self.p99_sum_us, self.cells as u128),
            max_latency_us: self.max_latency_us,
            avg_cache_load_us: self.avg_cache_load_us(),
            avg_disk_load_us: self.avg_disk_load_us(),
            policy_changes: self.policy_changes,
            bypassed_requests: self.bypassed,
            burst_intervals: self.burst_intervals,
        }
    }
}

fn ratio(num: u128, den: u128) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Everything the [`Aggregator`] extracts from one finished cell: the
/// aggregation keys (coordinates) plus pre-summed integer measurements.
///
/// This is the payload of a [`crate::PartialSweep`] — a shard records one
/// `CellSummary` per cell it ran, and `sweep merge` folds them through the
/// same [`Aggregator`] arithmetic as a single-process run, which is why a
/// merged summary is bit-identical to an unsharded one. Every field is an
/// integer (sums in `u64`/`u128`), so folding is associative and
/// commutative across shard and completion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSummary {
    /// The cell's index in matrix enumeration order.
    pub index: usize,
    /// The cell's human-readable id (`workload/config/controller/s<seed>`).
    pub id: String,
    /// Workload-axis coordinate (aggregation key).
    pub workload: String,
    /// Configuration-axis coordinate (aggregation key).
    pub config: String,
    /// Controller-axis coordinate (aggregation key).
    pub controller: String,
    /// Seed-axis coordinate (the replicate index, not the stream seed).
    pub seed: u64,
    /// Application requests completed.
    pub app_completed: u64,
    /// The cell's mean application latency, µs.
    pub avg_latency_us: u64,
    /// The cell's median application latency, µs (log-bucketed).
    pub p50_latency_us: u64,
    /// The cell's 95th-percentile application latency, µs (log-bucketed).
    pub p95_latency_us: u64,
    /// The cell's 99th-percentile application latency, µs (log-bucketed).
    pub p99_latency_us: u64,
    /// The cell's maximum application latency, µs.
    pub max_latency_us: u64,
    /// Number of monitoring intervals the cell reported.
    pub intervals: u64,
    /// Sum of per-interval maximum cache latencies, µs.
    pub cache_load_sum_us: u128,
    /// Sum of per-interval maximum disk latencies, µs.
    pub disk_load_sum_us: u128,
    /// Write-policy changes applied after the initial policy.
    pub policy_changes: u64,
    /// Requests bypassed from the cache queue to the disk.
    pub bypassed_requests: u64,
    /// Intervals the controller flagged as bursts.
    pub burst_intervals: u64,
}

impl CellSummary {
    /// Extracts the summary of one finished cell. `index` is the cell's
    /// position in matrix enumeration order.
    pub fn capture(index: usize, scenario: &Scenario, report: &SimulationReport) -> Self {
        CellSummary {
            index,
            id: scenario.id(),
            workload: scenario.workload().name().to_string(),
            config: scenario.config_label().to_string(),
            controller: scenario.controller().label().to_string(),
            seed: scenario.seed(),
            app_completed: report.app_completed,
            avg_latency_us: report.app_avg_latency_us,
            p50_latency_us: report.app_p50_latency_us,
            p95_latency_us: report.app_p95_latency_us,
            p99_latency_us: report.app_p99_latency_us,
            max_latency_us: report.app_max_latency_us,
            intervals: report.intervals.len() as u64,
            cache_load_sum_us: report
                .intervals
                .iter()
                .map(|i| i.cache.max_latency_us as u128)
                .sum::<u128>(),
            disk_load_sum_us: report
                .intervals
                .iter()
                .map(|i| i.disk.max_latency_us as u128)
                .sum::<u128>(),
            policy_changes: (report.policy_changes.len() as u64).saturating_sub(1),
            bypassed_requests: report.bypassed_requests,
            burst_intervals: report.burst_intervals() as u64,
        }
    }
}

/// Aggregated measurements for one axis value (or the whole sweep).
///
/// `avg_latency_us` is the mean of the cells' average application
/// latencies; the load averages are means over every monitoring interval
/// of every cell in the group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// The axis value this row aggregates (`"total"` for the sweep row).
    pub key: String,
    /// Number of cells folded into the row.
    pub cells: u64,
    /// Total application requests completed.
    pub app_completed: u64,
    /// Mean of the cells' average application latencies, µs.
    pub avg_latency_us: f64,
    /// Mean of the cells' median application latencies, µs.
    pub avg_p50_latency_us: f64,
    /// Mean of the cells' 95th-percentile application latencies, µs.
    pub avg_p95_latency_us: f64,
    /// Mean of the cells' 99th-percentile application latencies, µs.
    pub avg_p99_latency_us: f64,
    /// Maximum application latency observed in any cell, µs.
    pub max_latency_us: u64,
    /// Mean per-interval I/O-cache load (max latency), µs — Fig. 4's
    /// metric.
    pub avg_cache_load_us: f64,
    /// Mean per-interval disk-subsystem load, µs — Fig. 5's metric.
    pub avg_disk_load_us: f64,
    /// Total write-policy changes applied by the controllers.
    pub policy_changes: u64,
    /// Total requests bypassed from the cache queue to the disk.
    pub bypassed_requests: u64,
    /// Total intervals flagged as bursts.
    pub burst_intervals: u64,
}

/// LBICA-vs-WB improvement for one workload, derived from the
/// (workload × controller) accumulators.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadDelta {
    /// The workload the delta describes.
    pub workload: String,
    /// Reduction of the mean I/O-cache load, LBICA vs WB, percent.
    pub cache_load_reduction_vs_wb_pct: f64,
    /// Improvement of the mean application latency, LBICA vs WB, percent.
    pub latency_improvement_vs_wb_pct: f64,
}

/// The offered load of one tenant of a multi-tenant workload, regenerated
/// from the workload definition — not measured from simulation results (the
/// merged stream loses tenant identity once scheduled). Because the
/// regeneration is a pure function of the matrix definition, tenant rows
/// are byte-identical for any `--jobs` count and for a merged sharded
/// sweep, and identical whether attached before or after execution.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TenantRow {
    /// The multi-tenant workload the tenant belongs to.
    pub workload: String,
    /// The tenant's index within the mix.
    pub tenant: u32,
    /// Name of the template the tenant runs.
    pub template: String,
    /// Distinct (config, seed) streams folded into the row.
    pub streams: u64,
    /// Requests the tenant offers across those streams.
    pub records: u64,
    /// Read requests offered.
    pub read_records: u64,
    /// Write requests offered.
    pub write_records: u64,
    /// Sectors transferred by the offered requests.
    pub sectors: u64,
}

/// Regenerates the per-tenant offered-load rows of every multi-tenant
/// workload on `matrix`'s workload axis — one row per (workload, tenant),
/// summed over the matrix's distinct (config, seed) streams (controllers
/// share a stream, so they are not re-counted). Single-stream workloads
/// contribute no rows, which keeps summaries of tenant-free matrices
/// byte-identical to their pre-tenant renders.
pub fn tenant_rows(matrix: &ScenarioMatrix) -> Vec<TenantRow> {
    let mut rows = Vec::new();
    for spec in matrix.workloads() {
        let Some(mix) = spec.tenants() else { continue };
        for tenant in 0..mix.count() {
            let template =
                mix.templates()[tenant as usize % mix.templates().len()].name().to_string();
            let mut row = TenantRow {
                workload: spec.name().to_string(),
                tenant,
                template,
                streams: 0,
                records: 0,
                read_records: 0,
                write_records: 0,
                sectors: 0,
            };
            for config in matrix.configs() {
                for &seed in matrix.seeds() {
                    let stream_seed = match matrix.seed_mode() {
                        SeedMode::Derived => derive_seed(spec.name(), &config.label, seed),
                        SeedMode::Literal => seed,
                    };
                    row.streams += 1;
                    for index in 0..spec.total_intervals() {
                        for record in spec.tenant_interval(tenant, index, stream_seed) {
                            row.records += 1;
                            if record.kind.is_read() {
                                row.read_records += 1;
                            } else {
                                row.write_records += 1;
                            }
                            row.sectors += record.sectors;
                        }
                    }
                }
            }
            rows.push(row);
        }
    }
    rows
}

/// The rendered output of a sweep: one total row plus per-axis breakdowns
/// and the LBICA-vs-WB deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// The whole-sweep row.
    pub total: GroupStats,
    /// One row per workload, sorted by name.
    pub by_workload: Vec<GroupStats>,
    /// One row per controller, sorted by label.
    pub by_controller: Vec<GroupStats>,
    /// One row per configuration label, sorted.
    pub by_config: Vec<GroupStats>,
    /// Per-workload LBICA-vs-WB deltas (workloads whose sweep ran both
    /// controllers), sorted by workload.
    pub lbica_vs_wb: Vec<WorkloadDelta>,
    /// Per-tenant offered-load rows of the matrix's multi-tenant workloads
    /// (empty until attached via [`SweepSummary::with_tenant_rows`], and
    /// empty for matrices without tenant mixes).
    pub by_tenant: Vec<TenantRow>,
}

impl SweepSummary {
    /// The delta row for `workload`, if both WB and LBICA ran.
    pub fn delta(&self, workload: &str) -> Option<&WorkloadDelta> {
        self.lbica_vs_wb.iter().find(|d| d.workload == workload)
    }

    /// The per-workload row for `workload`.
    pub fn workload(&self, workload: &str) -> Option<&GroupStats> {
        self.by_workload.iter().find(|g| g.key == workload)
    }

    /// Attaches the per-tenant offered-load rows regenerated from `matrix`
    /// (builder style) — see [`tenant_rows`]. Both the single-process sweep
    /// and `sweep merge` attach from the same matrix definition, so sharded
    /// and unsharded summaries stay byte-identical.
    pub fn with_tenant_rows(mut self, matrix: &ScenarioMatrix) -> Self {
        self.by_tenant = tenant_rows(matrix);
        self
    }
}

/// Folds [`SimulationReport`]s into per-axis summaries without retaining
/// them.
#[derive(Debug, Clone, Default)]
pub struct Aggregator {
    total: Accum,
    by_workload: BTreeMap<String, Accum>,
    by_controller: BTreeMap<String, Accum>,
    by_config: BTreeMap<String, Accum>,
    pairs: BTreeMap<(String, String), Accum>,
}

impl Aggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Aggregator::default()
    }

    /// Number of cells observed so far.
    pub const fn cells(&self) -> u64 {
        self.total.cells
    }

    /// Folds one cell's report into the accumulators.
    pub fn observe(&mut self, scenario: &Scenario, report: &SimulationReport) {
        // Both the in-process path and `sweep merge` fold the identical
        // `CellSummary` extraction, so a merged sharded sweep cannot drift
        // from a single-process one.
        self.observe_cell(&CellSummary::capture(0, scenario, report));
    }

    /// Folds one pre-extracted [`CellSummary`] — the merge path of a
    /// sharded sweep — into the accumulators. Order-independent.
    pub fn observe_cell(&mut self, cell: &CellSummary) {
        self.total.fold(cell);
        self.by_workload.entry(cell.workload.clone()).or_default().fold(cell);
        self.by_controller.entry(cell.controller.clone()).or_default().fold(cell);
        self.by_config.entry(cell.config.clone()).or_default().fold(cell);
        self.pairs.entry((cell.workload.clone(), cell.controller.clone())).or_default().fold(cell);
    }

    /// Renders the summary from the current accumulators.
    pub fn summary(&self) -> SweepSummary {
        let rows = |map: &BTreeMap<String, Accum>| {
            map.iter().map(|(k, a)| a.stats(k.clone())).collect::<Vec<_>>()
        };
        let mut deltas = Vec::new();
        for workload in self.by_workload.keys() {
            let wb = self.pairs.get(&(workload.clone(), ControllerKind::Wb.label().to_string()));
            let lbica =
                self.pairs.get(&(workload.clone(), ControllerKind::Lbica.label().to_string()));
            if let (Some(wb), Some(lbica)) = (wb, lbica) {
                deltas.push(WorkloadDelta {
                    workload: workload.clone(),
                    cache_load_reduction_vs_wb_pct: percent_reduction(
                        wb.avg_cache_load_us(),
                        lbica.avg_cache_load_us(),
                    ),
                    latency_improvement_vs_wb_pct: percent_reduction(
                        wb.avg_latency_us(),
                        lbica.avg_latency_us(),
                    ),
                });
            }
        }
        SweepSummary {
            total: self.total.stats("total".to_string()),
            by_workload: rows(&self.by_workload),
            by_controller: rows(&self.by_controller),
            by_config: rows(&self.by_config),
            lbica_vs_wb: deltas,
            by_tenant: Vec::new(),
        }
    }
}

fn percent_reduction(before: f64, after: f64) -> f64 {
    if before <= 0.0 {
        0.0
    } else {
        (before - after) / before * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ScenarioMatrix;

    fn folded_smoke() -> (ScenarioMatrix, Aggregator) {
        let matrix = ScenarioMatrix::smoke();
        let mut agg = Aggregator::new();
        for cell in matrix.cells() {
            let report = cell.run();
            agg.observe(&cell, &report);
        }
        (matrix, agg)
    }

    #[test]
    fn summary_groups_cover_every_axis_value() {
        let (matrix, agg) = folded_smoke();
        assert_eq!(agg.cells(), matrix.len() as u64);
        let summary = agg.summary();
        assert_eq!(summary.total.cells, matrix.len() as u64);
        assert_eq!(summary.by_workload.len(), 2);
        assert_eq!(summary.by_controller.len(), 3);
        assert_eq!(summary.by_config.len(), 1);
        assert_eq!(summary.lbica_vs_wb.len(), 2);
        // Per-axis cell counts sum back to the total.
        let per_workload: u64 = summary.by_workload.iter().map(|g| g.cells).sum();
        assert_eq!(per_workload, summary.total.cells);
        assert!(summary.total.app_completed > 0);
        assert!(summary.workload("web-server").is_some());
        assert!(summary.delta("web-server").is_some());
        assert!(summary.delta("nope").is_none());
    }

    #[test]
    fn fold_order_does_not_change_the_summary() {
        let matrix = ScenarioMatrix::smoke();
        let cells: Vec<_> = matrix.cells().collect();
        let reports: Vec<_> = cells.iter().map(|c| c.run()).collect();
        let mut forward = Aggregator::new();
        for (c, r) in cells.iter().zip(&reports) {
            forward.observe(c, r);
        }
        let mut backward = Aggregator::new();
        for (c, r) in cells.iter().zip(&reports).rev() {
            backward.observe(c, r);
        }
        assert_eq!(forward.summary(), backward.summary());
    }

    #[test]
    fn observe_and_observe_cell_fold_identically() {
        let matrix = ScenarioMatrix::smoke();
        let mut direct = Aggregator::new();
        let mut via_summary = Aggregator::new();
        for (i, cell) in matrix.cells().enumerate() {
            let report = cell.run();
            direct.observe(&cell, &report);
            via_summary.observe_cell(&CellSummary::capture(i, &cell, &report));
        }
        assert_eq!(direct.summary(), via_summary.summary());
    }

    #[test]
    fn capture_extracts_coordinates_and_integer_measurements() {
        let matrix = ScenarioMatrix::smoke();
        let cell = matrix.cell(2).expect("in bounds");
        let report = cell.run();
        let summary = CellSummary::capture(2, &cell, &report);
        assert_eq!(summary.index, 2);
        assert_eq!(summary.id, cell.id());
        assert_eq!(summary.workload, cell.workload().name());
        assert_eq!(summary.config, cell.config_label());
        assert_eq!(summary.controller, cell.controller().label());
        assert_eq!(summary.app_completed, report.app_completed);
        assert_eq!(summary.intervals, report.intervals.len() as u64);
        assert_eq!(summary.p50_latency_us, report.app_p50_latency_us);
        assert_eq!(summary.p95_latency_us, report.app_p95_latency_us);
        assert_eq!(summary.p99_latency_us, report.app_p99_latency_us);
        assert!(summary.p50_latency_us <= summary.p95_latency_us);
        assert!(summary.p95_latency_us <= summary.p99_latency_us);
        assert!(summary.p99_latency_us <= summary.max_latency_us);
    }

    #[test]
    fn empty_aggregator_summarizes_to_zeroes() {
        let summary = Aggregator::new().summary();
        assert_eq!(summary.total.cells, 0);
        assert_eq!(summary.total.avg_latency_us, 0.0);
        assert!(summary.by_workload.is_empty());
        assert!(summary.lbica_vs_wb.is_empty());
        assert!(summary.by_tenant.is_empty());
    }

    #[test]
    fn tenant_rows_cover_every_tenant_of_every_mix() {
        let matrix = ScenarioMatrix::multi_tenant();
        let rows = tenant_rows(&matrix);
        // mt1 + mt2 + mt4 tenants.
        assert_eq!(rows.len(), 1 + 2 + 4);
        for row in &rows {
            assert_eq!(row.streams, 1, "1 config x 1 seed");
            assert!(row.records > 0, "tenant {}/{} offered no load", row.workload, row.tenant);
            assert_eq!(row.records, row.read_records + row.write_records);
            assert!(row.sectors > 0);
        }
        // Regeneration is deterministic.
        assert_eq!(rows, tenant_rows(&matrix));
        // Under a literal seed every mix shares one stream seed, so tenant
        // 0 (identical template across mixes) offers the identical stream
        // in every mix — the tenant-count stability property, at row
        // granularity.
        let pinned = tenant_rows(&ScenarioMatrix::multi_tenant().with_literal_seed(9));
        let t0: Vec<&TenantRow> = pinned.iter().filter(|r| r.tenant == 0).collect();
        assert_eq!(t0.len(), 3);
        assert!(t0.windows(2).all(|w| w[0].records == w[1].records
            && w[0].read_records == w[1].read_records
            && w[0].sectors == w[1].sectors));
    }

    #[test]
    fn tenant_rows_are_empty_for_single_stream_matrices() {
        assert!(tenant_rows(&ScenarioMatrix::smoke()).is_empty());
        assert!(tenant_rows(&ScenarioMatrix::tiny()).is_empty());
    }

    #[test]
    fn attaching_tenant_rows_is_independent_of_execution() {
        let matrix = ScenarioMatrix::paper_mt();
        let executed =
            crate::executor::SweepExecutor::serial().aggregate(&matrix).with_tenant_rows(&matrix);
        let unexecuted = Aggregator::new().summary().with_tenant_rows(&matrix);
        assert_eq!(executed.by_tenant, unexecuted.by_tenant);
        assert_eq!(executed.by_tenant.len(), 6);
    }
}
