//! Work-stealing execution of a scenario matrix.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use lbica_sim::SimulationReport;

use crate::aggregate::{Aggregator, SweepSummary};
use crate::matrix::ScenarioMatrix;
use crate::scenario::Scenario;

/// Runs the cells of a [`ScenarioMatrix`] across worker threads.
///
/// Scheduling is a shared atomic cursor over the cell index space: each
/// worker claims the next unclaimed cell with `fetch_add` and runs it to
/// completion, so long cells never stall the queue behind them. Because a
/// cell's stream seed depends only on its coordinates, the *results* are
/// identical for any `jobs` — only wall-clock time changes.
#[derive(Debug, Clone, Copy)]
pub struct SweepExecutor {
    jobs: usize,
}

impl SweepExecutor {
    /// Creates an executor with `jobs` worker threads; `0` means one per
    /// available core.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 { Self::default_jobs() } else { jobs };
        SweepExecutor { jobs }
    }

    /// A single-threaded executor (useful as the determinism reference).
    pub fn serial() -> Self {
        SweepExecutor { jobs: 1 }
    }

    /// The number of worker threads this executor spawns.
    pub const fn jobs(&self) -> usize {
        self.jobs
    }

    /// One worker per available core (at least one).
    pub fn default_jobs() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// Runs every cell, invoking `handle(index, scenario, report)` from
    /// worker threads as each cell completes (in nondeterministic order —
    /// the handler must be order-insensitive or index the results).
    pub fn for_each<F>(&self, matrix: &ScenarioMatrix, handle: F)
    where
        F: Fn(usize, &Scenario, SimulationReport) + Sync,
    {
        let total = matrix.len();
        if total == 0 {
            return;
        }
        let workers = self.jobs.min(total);
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let scenario = matrix.cell(index).expect("cursor index in bounds");
                    let report = scenario.run();
                    handle(index, &scenario, report);
                });
            }
        });
    }

    /// Runs every cell and returns the reports in cell-enumeration order.
    pub fn run(&self, matrix: &ScenarioMatrix) -> Vec<SimulationReport> {
        let slots: Mutex<Vec<Option<SimulationReport>>> = Mutex::new(vec![None; matrix.len()]);
        self.for_each(matrix, |index, _, report| {
            slots.lock().expect("slot lock")[index] = Some(report);
        });
        slots
            .into_inner()
            .expect("slot lock")
            .into_iter()
            .map(|r| r.expect("every cell produced a report"))
            .collect()
    }

    /// Runs every cell, streaming each report into an [`Aggregator`] and
    /// discarding it; returns the aggregated summary. `progress` is called
    /// with `(completed, total)` after every cell.
    pub fn aggregate_with_progress(
        &self,
        matrix: &ScenarioMatrix,
        progress: impl Fn(usize, usize) + Sync,
    ) -> SweepSummary {
        let total = matrix.len();
        let aggregator = Mutex::new(Aggregator::new());
        let done = AtomicUsize::new(0);
        self.for_each(matrix, |_, scenario, report| {
            aggregator.lock().expect("aggregator lock").observe(scenario, &report);
            let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
            progress(completed, total);
        });
        aggregator.into_inner().expect("aggregator lock").summary()
    }

    /// [`SweepExecutor::aggregate_with_progress`] without a progress
    /// callback.
    pub fn aggregate(&self, matrix: &ScenarioMatrix) -> SweepSummary {
        self.aggregate_with_progress(matrix, |_, _| {})
    }
}

impl Default for SweepExecutor {
    fn default() -> Self {
        SweepExecutor::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_come_back_in_cell_order_regardless_of_jobs() {
        let matrix = ScenarioMatrix::smoke();
        let serial = SweepExecutor::serial().run(&matrix);
        assert_eq!(serial.len(), matrix.len());
        for (cell, report) in matrix.cells().zip(&serial) {
            assert_eq!(cell.workload().name(), report.workload);
            assert_eq!(cell.controller().label(), report.controller);
        }
        let parallel = SweepExecutor::new(4).run(&matrix);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn aggregation_is_deterministic_across_job_counts() {
        let matrix = ScenarioMatrix::smoke();
        let a = SweepExecutor::serial().aggregate(&matrix);
        let b = SweepExecutor::new(4).aggregate(&matrix);
        assert_eq!(a, b);
        assert_eq!(a.total.cells, matrix.len() as u64);
    }

    #[test]
    fn progress_reaches_the_total_exactly_once_per_cell() {
        let matrix = ScenarioMatrix::smoke();
        let calls = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        SweepExecutor::new(2).aggregate_with_progress(&matrix, |done, total| {
            calls.fetch_add(1, Ordering::Relaxed);
            max_seen.fetch_max(done, Ordering::Relaxed);
            assert_eq!(total, matrix.len());
        });
        assert_eq!(calls.into_inner(), matrix.len());
        assert_eq!(max_seen.into_inner(), matrix.len());
    }

    #[test]
    fn empty_matrix_is_a_no_op() {
        let matrix = ScenarioMatrix::new();
        assert!(SweepExecutor::new(3).run(&matrix).is_empty());
        let summary = SweepExecutor::new(3).aggregate(&matrix);
        assert_eq!(summary.total.cells, 0);
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert!(SweepExecutor::new(0).jobs() >= 1);
        assert_eq!(SweepExecutor::serial().jobs(), 1);
    }
}
