//! Work-stealing execution of a scenario matrix.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use lbica_sim::SimulationReport;

use crate::aggregate::{Aggregator, SweepSummary};
use crate::matrix::{CellRange, ScenarioMatrix};
use crate::scenario::Scenario;
use crate::telemetry::{
    events_rate, utilization, CellTelemetry, ProfileFold, ProgressHook, SweepTelemetry,
    TelemetryEvent, TelemetryHook,
};

/// Runs the cells of a [`ScenarioMatrix`] across worker threads.
///
/// Scheduling is a shared atomic cursor over the cell index space: each
/// worker claims the next unclaimed cell with `fetch_add` and runs it to
/// completion, so long cells never stall the queue behind them. Because a
/// cell's stream seed depends only on its coordinates, the *results* are
/// identical for any `jobs` — only wall-clock time changes.
#[derive(Debug, Clone, Copy)]
pub struct SweepExecutor {
    jobs: usize,
}

impl SweepExecutor {
    /// Creates an executor with `jobs` worker threads; `0` means one per
    /// available core.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 { Self::default_jobs() } else { jobs };
        SweepExecutor { jobs }
    }

    /// A single-threaded executor (useful as the determinism reference).
    pub fn serial() -> Self {
        SweepExecutor { jobs: 1 }
    }

    /// The number of worker threads this executor spawns.
    pub const fn jobs(&self) -> usize {
        self.jobs
    }

    /// One worker per available core (at least one).
    pub fn default_jobs() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// Runs every cell, invoking `handle(index, scenario, report)` from
    /// worker threads as each cell completes (in nondeterministic order —
    /// the handler must be order-insensitive or index the results).
    pub fn for_each<F>(&self, matrix: &ScenarioMatrix, handle: F)
    where
        F: Fn(usize, &Scenario, SimulationReport) + Sync,
    {
        self.for_each_in(matrix, matrix.full_range(), handle);
    }

    /// Runs the cells of one contiguous [`CellRange`] — the shard-local
    /// slice of a distributed sweep. `handle` receives the cell's *global*
    /// matrix index, so a shard's results carry the same coordinates they
    /// would in a single-process run.
    ///
    /// # Panics
    ///
    /// Panics if the range reaches past the end of the matrix.
    pub fn for_each_in<F>(&self, matrix: &ScenarioMatrix, range: CellRange, handle: F)
    where
        F: Fn(usize, &Scenario, SimulationReport) + Sync,
    {
        self.run_cells(matrix, range, None, |_, index, scenario, report, _| {
            handle(index, scenario, report);
        });
    }

    /// The scheduling primitive behind every execution entry point: runs
    /// `range`, invoking `handle(worker, index, scenario, report,
    /// wall_us)` as each cell completes. The worker index and wall-clock
    /// time exist only for telemetry — nothing derived from them may flow
    /// into reports. With `profile` set, every worker threads a local
    /// [`lbica_obs::PhaseProfiler`] through its cells and folds it into
    /// the shared aggregate once, on exit — reports are byte-identical
    /// either way.
    pub(crate) fn run_cells<F>(
        &self,
        matrix: &ScenarioMatrix,
        range: CellRange,
        profile: Option<&ProfileFold>,
        handle: F,
    ) where
        F: Fn(usize, usize, &Scenario, SimulationReport, u64) + Sync,
    {
        assert!(range.end <= matrix.len(), "cell range reaches past the matrix");
        if range.is_empty() {
            return;
        }
        let workers = self.jobs.min(range.len());
        let cursor = AtomicUsize::new(range.start);
        let cursor = &cursor;
        let handle = &handle;
        std::thread::scope(|scope| {
            for worker in 0..workers {
                scope.spawn(move || {
                    // One arena per worker: cells claimed by this thread
                    // reuse the previous cell's backing stores whenever the
                    // config repeats (the common case — a matrix axis varies
                    // workload/controller/seed far more often than config).
                    // Reset is observationally equivalent to fresh
                    // construction, so reports stay byte-identical for any
                    // jobs count and any claim order.
                    let mut arena = lbica_sim::SimArena::new();
                    let mut local_prof = profile.map(|_| lbica_obs::PhaseProfiler::new());
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= range.end {
                            break;
                        }
                        let scenario = matrix.cell(index).expect("cursor index in bounds");
                        let started = Instant::now();
                        let report = match local_prof.take() {
                            Some(prof) => {
                                let (report, prof) = scenario.run_profiled_in(prof, &mut arena);
                                local_prof = Some(prof);
                                report
                            }
                            None => scenario.run_in(&mut arena),
                        };
                        let wall_us = started.elapsed().as_micros() as u64;
                        handle(worker, index, &scenario, report, wall_us);
                    }
                    if let (Some(fold), Some(prof)) = (profile, local_prof) {
                        fold.fold(&prof);
                    }
                });
            }
        });
    }

    /// Runs `range` with full telemetry: a
    /// [`TelemetryEvent::SweepStart`], one [`TelemetryEvent::Cell`] per
    /// completed cell (in completion order) and a
    /// [`TelemetryEvent::SweepEnd`] carrying the [`SweepTelemetry`].
    /// `on_cell` receives each cell's deterministic results exactly as
    /// [`SweepExecutor::for_each_in`] would deliver them.
    pub(crate) fn run_with_telemetry(
        &self,
        matrix: &ScenarioMatrix,
        range: CellRange,
        matrix_name: &str,
        hook: &dyn TelemetryHook,
        profile: Option<&ProfileFold>,
        on_cell: impl Fn(usize, &Scenario, &SimulationReport) + Sync,
    ) {
        let total = range.len();
        hook.record(TelemetryEvent::SweepStart {
            matrix: matrix_name,
            cells: total,
            jobs: self.jobs,
        });
        let workers = self.jobs.min(total).max(1);
        let done = AtomicUsize::new(0);
        let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let events = AtomicU64::new(0);
        let started = Instant::now();
        self.run_cells(matrix, range, profile, |worker, index, scenario, report, wall_us| {
            on_cell(index, scenario, &report);
            busy[worker].fetch_add(wall_us, Ordering::Relaxed);
            events.fetch_add(report.perf.events_processed, Ordering::Relaxed);
            let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
            let cell = CellTelemetry {
                index,
                id: scenario.id(),
                worker,
                wall_us,
                events: report.perf.events_processed,
                events_per_sec: events_rate(report.perf.events_processed, wall_us),
                completed,
                total,
            };
            hook.record(TelemetryEvent::Cell { cell: &cell, report: &report });
        });
        let wall_us = started.elapsed().as_micros() as u64;
        let busy: Vec<u64> = busy.into_iter().map(AtomicU64::into_inner).collect();
        let total_events = events.into_inner();
        let telemetry = SweepTelemetry {
            matrix: matrix_name.to_string(),
            jobs: self.jobs,
            cells: total,
            wall_us,
            events: total_events,
            events_per_sec: events_rate(total_events, wall_us),
            worker_utilization: utilization(&busy, wall_us),
            worker_busy_us: busy,
        };
        hook.record(TelemetryEvent::SweepEnd { telemetry: &telemetry });
    }

    /// Runs every cell and returns the reports in cell-enumeration order.
    pub fn run(&self, matrix: &ScenarioMatrix) -> Vec<SimulationReport> {
        let slots: Mutex<Vec<Option<SimulationReport>>> = Mutex::new(vec![None; matrix.len()]);
        self.for_each(matrix, |index, _, report| {
            slots.lock().expect("slot lock")[index] = Some(report);
        });
        slots
            .into_inner()
            .expect("slot lock")
            .into_iter()
            .map(|r| r.expect("every cell produced a report"))
            .collect()
    }

    /// Runs every cell, streaming each report into an [`Aggregator`] and
    /// discarding it; returns the aggregated summary. Every execution
    /// event — cell completions with wall-clock timings, final worker
    /// utilization — is delivered to `hook`. The summary itself reads
    /// only deterministic simulation quantities: it is byte-identical for
    /// any `jobs` and any hook (including none).
    pub fn aggregate_with_telemetry(
        &self,
        matrix: &ScenarioMatrix,
        matrix_name: &str,
        hook: &dyn TelemetryHook,
    ) -> SweepSummary {
        let aggregator = Mutex::new(Aggregator::new());
        self.run_with_telemetry(
            matrix,
            matrix.full_range(),
            matrix_name,
            hook,
            None,
            |_, s, report| {
                aggregator.lock().expect("aggregator lock").observe(s, report);
            },
        );
        aggregator.into_inner().expect("aggregator lock").summary()
    }

    /// [`SweepExecutor::aggregate_with_telemetry`] with phase profiling:
    /// every worker threads a local profiler through its cells and folds
    /// it into `profile` on exit. The summary is byte-identical to the
    /// unprofiled entry points' — profiling attributes wall time, it never
    /// steers — and the folded profile is order-independent (commutative
    /// adds), though its *values* are wall-clock measurements.
    pub fn aggregate_profiled(
        &self,
        matrix: &ScenarioMatrix,
        matrix_name: &str,
        hook: &dyn TelemetryHook,
        profile: &ProfileFold,
    ) -> SweepSummary {
        let aggregator = Mutex::new(Aggregator::new());
        self.run_with_telemetry(
            matrix,
            matrix.full_range(),
            matrix_name,
            hook,
            Some(profile),
            |_, s, report| {
                aggregator.lock().expect("aggregator lock").observe(s, report);
            },
        );
        aggregator.into_inner().expect("aggregator lock").summary()
    }

    /// [`SweepExecutor::aggregate_with_telemetry`] with a plain
    /// `(completed, total)` progress closure instead of a hook.
    pub fn aggregate_with_progress(
        &self,
        matrix: &ScenarioMatrix,
        progress: impl Fn(usize, usize) + Sync,
    ) -> SweepSummary {
        self.aggregate_with_telemetry(matrix, "", &ProgressHook(progress))
    }

    /// [`SweepExecutor::aggregate_with_progress`] without a progress
    /// callback.
    pub fn aggregate(&self, matrix: &ScenarioMatrix) -> SweepSummary {
        self.aggregate_with_progress(matrix, |_, _| {})
    }
}

impl Default for SweepExecutor {
    fn default() -> Self {
        SweepExecutor::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_come_back_in_cell_order_regardless_of_jobs() {
        let matrix = ScenarioMatrix::smoke();
        let serial = SweepExecutor::serial().run(&matrix);
        assert_eq!(serial.len(), matrix.len());
        for (cell, report) in matrix.cells().zip(&serial) {
            assert_eq!(cell.workload().name(), report.workload);
            assert_eq!(cell.controller().label(), report.controller);
        }
        let parallel = SweepExecutor::new(4).run(&matrix);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn aggregation_is_deterministic_across_job_counts() {
        let matrix = ScenarioMatrix::smoke();
        let a = SweepExecutor::serial().aggregate(&matrix);
        let b = SweepExecutor::new(4).aggregate(&matrix);
        assert_eq!(a, b);
        assert_eq!(a.total.cells, matrix.len() as u64);
    }

    #[test]
    fn progress_reaches_the_total_exactly_once_per_cell() {
        let matrix = ScenarioMatrix::smoke();
        let calls = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        SweepExecutor::new(2).aggregate_with_progress(&matrix, |done, total| {
            calls.fetch_add(1, Ordering::Relaxed);
            max_seen.fetch_max(done, Ordering::Relaxed);
            assert_eq!(total, matrix.len());
        });
        assert_eq!(calls.into_inner(), matrix.len());
        assert_eq!(max_seen.into_inner(), matrix.len());
    }

    #[test]
    fn empty_matrix_is_a_no_op() {
        let matrix = ScenarioMatrix::new();
        assert!(SweepExecutor::new(3).run(&matrix).is_empty());
        let summary = SweepExecutor::new(3).aggregate(&matrix);
        assert_eq!(summary.total.cells, 0);
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert!(SweepExecutor::new(0).jobs() >= 1);
        assert_eq!(SweepExecutor::serial().jobs(), 1);
    }

    #[test]
    fn range_execution_visits_exactly_the_shard_with_global_indices() {
        let matrix = ScenarioMatrix::smoke();
        let range = matrix.shard(1, 2);
        let seen = Mutex::new(Vec::new());
        SweepExecutor::new(2).for_each_in(&matrix, range, |index, scenario, _| {
            seen.lock().expect("seen lock").push((index, scenario.id()));
        });
        let mut seen = seen.into_inner().expect("seen lock");
        seen.sort();
        let expected: Vec<(usize, String)> = (range.start..range.end)
            .map(|i| (i, matrix.cell(i).expect("in bounds").id()))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn empty_range_is_a_no_op() {
        let matrix = ScenarioMatrix::smoke();
        let range = matrix.shard(9, 10);
        assert!(range.is_empty());
        SweepExecutor::new(2).for_each_in(&matrix, range, |_, _, _| {
            panic!("no cells should run");
        });
    }

    #[test]
    #[should_panic(expected = "past the matrix")]
    fn out_of_bounds_ranges_are_rejected() {
        let matrix = ScenarioMatrix::smoke();
        let range = CellRange { start: 0, end: matrix.len() + 1 };
        SweepExecutor::serial().for_each_in(&matrix, range, |_, _, _| {});
    }
}
