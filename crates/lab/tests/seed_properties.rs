//! Property tests for scenario seed derivation: stream seeds must be
//! unique across a matrix's (workload × config × seed) coordinates and
//! stable under reordering of the axis vectors.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use lbica_lab::{derive_seed, ScenarioMatrix};
use lbica_trace::workload::{WorkloadScale, WorkloadSpec};

/// Builds a matrix whose workload/config/seed axes are derived from the
/// given counts, with labels salted so different cases explore different
/// label universes. No cell is ever *run* — these tests only exercise
/// expansion and seeding, so large-ish matrices stay cheap.
fn build_matrix(
    workloads: usize,
    configs: usize,
    seeds: usize,
    salt: u64,
    reverse: bool,
) -> ScenarioMatrix {
    let scale = WorkloadScale::tiny();
    let mut workload_axis: Vec<WorkloadSpec> = (0..workloads)
        .map(|i| WorkloadSpec::synthetic_scaled(format!("w{salt:x}-{i}"), scale, 0.5))
        .collect();
    let mut config_labels: Vec<String> = (0..configs).map(|i| format!("c{salt:x}-{i}")).collect();
    let mut seed_axis: Vec<u64> = (0..seeds as u64).map(|i| salt.wrapping_add(i)).collect();
    if reverse {
        workload_axis.reverse();
        config_labels.reverse();
        seed_axis.reverse();
    }
    let mut matrix = ScenarioMatrix::new().with_workloads(workload_axis).with_seeds(seed_axis);
    for label in config_labels {
        matrix = matrix.push_config(label, lbica_sim::SimulationConfig::tiny());
    }
    matrix
}

/// Maps every cell id to its stream seed.
fn seeds_by_id(matrix: &ScenarioMatrix) -> BTreeMap<String, u64> {
    matrix.cells().map(|c| (c.id(), c.stream_seed())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stream_seeds_are_unique_per_coordinate_triple(
        workloads in 1usize..5,
        configs in 1usize..4,
        seeds in 1usize..5,
        salt in any::<u64>(),
    ) {
        let matrix = build_matrix(workloads, configs, seeds, salt, false);
        prop_assert_eq!(matrix.len(), workloads * configs * seeds * 3);
        // Distinct (workload, config, seed) triples must map to distinct
        // stream seeds; the three controllers of a triple share one.
        let distinct: BTreeSet<u64> = matrix.cells().map(|c| c.stream_seed()).collect();
        prop_assert_eq!(distinct.len(), workloads * configs * seeds);
    }

    #[test]
    fn stream_seeds_survive_axis_reordering(
        workloads in 1usize..4,
        configs in 1usize..4,
        seeds in 1usize..4,
        salt in any::<u64>(),
    ) {
        let forward = build_matrix(workloads, configs, seeds, salt, false);
        let reversed = build_matrix(workloads, configs, seeds, salt, true);
        // Same coordinates, different enumeration order: the id → seed map
        // must be identical.
        prop_assert_eq!(seeds_by_id(&forward), seeds_by_id(&reversed));
    }

    #[test]
    fn derive_seed_ignores_nothing(
        workload in 0u64..1_000,
        config in 0u64..1_000,
        seed in any::<u64>(),
    ) {
        let w = format!("w{workload}");
        let c = format!("c{config}");
        let base = derive_seed(&w, &c, seed);
        prop_assert_eq!(base, derive_seed(&w, &c, seed));
        prop_assert_ne!(base, derive_seed(&format!("{w}x"), &c, seed));
        prop_assert_ne!(base, derive_seed(&w, &format!("{c}x"), seed));
        prop_assert_ne!(base, derive_seed(&w, &c, seed.wrapping_add(1)));
    }
}
