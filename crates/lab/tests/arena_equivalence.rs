//! The arena-reuse determinism contract, pinned end to end: a run drawing
//! its simulated system from a [`SimArena`] that already holds a previous
//! run's state must be **byte-identical** to a fresh-state run — same
//! report, same figures CSV, same chrome-trace snapshot — for flat and
//! tiered configs, serially and under `--jobs 8`.

use proptest::prelude::*;

use lbica_lab::{
    derive_seed, ControllerKind, CsvSink, JsonSink, Scenario, ScenarioMatrix, SweepExecutor,
};
use lbica_obs::SimObserver;
use lbica_sim::{SimArena, SimulationConfig};
use lbica_trace::workload::{WorkloadScale, WorkloadSpec};

fn workload(which: usize) -> WorkloadSpec {
    let scale = WorkloadScale::tiny();
    match which {
        0 => WorkloadSpec::tpcc_scaled(scale),
        1 => WorkloadSpec::mail_server_scaled(scale),
        _ => WorkloadSpec::web_server_scaled(scale),
    }
}

fn controller(which: usize) -> ControllerKind {
    match which {
        0 => ControllerKind::Wb,
        1 => ControllerKind::Sib,
        _ => ControllerKind::Lbica,
    }
}

fn config(tiered: bool) -> (&'static str, SimulationConfig) {
    if tiered {
        ("tiny-2t", SimulationConfig::tiny_two_tier())
    } else {
        ("tiny", SimulationConfig::tiny())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A reused arena's second (and third) run of a cell reproduces the
    /// fresh-state report and trace snapshot bit for bit.
    #[test]
    fn arena_reused_runs_are_byte_identical_to_fresh_runs(
        wl in 0usize..3,
        ctrl in 0usize..3,
        seed in 0u64..4,
        tiered in prop_oneof![Just(false), Just(true)],
    ) {
        let spec = workload(wl);
        let (label, cfg) = config(tiered);
        let stream = derive_seed(spec.name(), label, seed);
        let cell = Scenario::new(spec, label, cfg, controller(ctrl), seed, stream);

        let fresh = cell.run();
        let (fresh_observed, fresh_obs) = cell.run_observed(SimObserver::new());
        prop_assert_eq!(&fresh, &fresh_observed);
        let fresh_trace = fresh_obs.render_chrome_trace("cell");

        let mut arena = SimArena::new();
        let first = cell.run_in(&mut arena);   // builds fresh, stores
        let second = cell.run_in(&mut arena);  // reset + reuse
        prop_assert_eq!(&fresh, &first);
        prop_assert_eq!(&fresh, &second, "arena-reused report diverged");

        let (observed, obs) = cell.run_observed_in(SimObserver::new(), &mut arena);
        prop_assert_eq!(&fresh, &observed, "arena-reused observed report diverged");
        prop_assert_eq!(
            fresh_trace,
            obs.render_chrome_trace("cell"),
            "arena-reused trace snapshot diverged"
        );
    }

    /// Whole-sweep check across a flat + tiered matrix: the per-worker
    /// arenas inside the executor change nothing — serial and `--jobs 8`
    /// sweeps render identical figures CSV and JSON.
    #[test]
    fn sweep_figures_are_identical_serial_and_jobs_8(
        wl in 0usize..3,
        seed in 0u64..4,
    ) {
        let matrix = ScenarioMatrix::new()
            .with_workloads(vec![workload(wl)])
            .with_seeds(vec![seed])
            .push_config("tiny", SimulationConfig::tiny())
            .push_config("tiny-2t", SimulationConfig::tiny_two_tier());

        let serial = SweepExecutor::serial().aggregate(&matrix);
        let jobs8 = SweepExecutor::new(8).aggregate(&matrix);
        prop_assert_eq!(&serial, &jobs8);
        prop_assert_eq!(CsvSink::render(&serial), CsvSink::render(&jobs8));
        prop_assert_eq!(JsonSink::render(&serial), JsonSink::render(&jobs8));
    }
}
