//! Replay-checkpoint exactness: splitting a cell at *any* interval
//! boundary, serializing the checkpoint to its binary form, and resuming
//! from the decoded copy reproduces the unsplit run byte-for-byte — on
//! flat and tiered datapaths, under every controller, for synthetic and
//! multi-tenant workloads alike.

use proptest::prelude::*;

use lbica_lab::{derive_seed, ControllerKind, Scenario};
use lbica_sim::SimulationConfig;
use lbica_trace::workload::{WorkloadScale, WorkloadSpec};

fn controllers() -> [ControllerKind; 4] {
    [ControllerKind::Wb, ControllerKind::Sib, ControllerKind::Lbica, ControllerKind::LbicaTier]
}

fn workloads() -> [WorkloadSpec; 3] {
    let scale = WorkloadScale::tiny();
    [
        WorkloadSpec::tpcc_scaled(scale),
        WorkloadSpec::web_server_scaled(scale),
        WorkloadSpec::paper_mt_scaled(scale, 3),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_split_point_resumes_byte_identical(
        split_permille in 0u32..=1000,
        tiered in any::<bool>(),
        controller_index in 0usize..4,
        workload_index in 0usize..3,
        seed in any::<u64>(),
    ) {
        let spec = workloads()[workload_index].clone();
        let (label, config) = if tiered {
            ("tier2", SimulationConfig::tiny_two_tier())
        } else {
            ("flat", SimulationConfig::tiny())
        };
        let kind = controllers()[controller_index];
        let stream_seed = derive_seed(spec.name(), label, seed);
        let cell = Scenario::new(spec, label, config, kind, seed, stream_seed);

        let direct = cell.run();
        // Map the permille onto a concrete boundary; 0 and 1000 pin the
        // degenerate splits (checkpoint before anything ran / after
        // everything ran).
        let split = (u64::from(direct.total_intervals) * u64::from(split_permille) / 1000) as u32;
        let resumed = cell.run_checkpointed(split).expect("well-formed split resumes");
        prop_assert_eq!(&direct, &resumed, "split at {}/{}", split, direct.total_intervals);
    }
}
