//! End-to-end sweeps of the two new scenario axes: trace-replay cells and
//! tiered cache hierarchies, including the replay determinism guarantee
//! (the same captured trace gives bit-identical sweeps at any worker
//! count) and the tiered LBICA spill chain working through a real run.

use lbica_core::LbicaController;
use lbica_lab::{ControllerKind, ScenarioMatrix, SweepExecutor};
use lbica_sim::{Simulation, SimulationConfig};
use lbica_trace::io::BinaryTraceCodec;
use lbica_trace::workload::{WorkloadScale, WorkloadSpec};

/// Same trace, jobs=1 vs jobs=8: the replay matrix must produce identical
/// reports and identical aggregates — the determinism contract for
/// trace-replay cells.
#[test]
fn replay_matrix_is_deterministic_across_worker_counts() {
    let matrix = ScenarioMatrix::replay_demo();
    let serial = SweepExecutor::new(1).run(&matrix);
    let parallel = SweepExecutor::new(8).run(&matrix);
    assert_eq!(serial, parallel, "replay cells must not depend on the worker count");
    assert!(serial.iter().all(|r| r.app_completed > 0), "replayed arrivals are served");

    let a = SweepExecutor::new(1).aggregate(&matrix);
    let b = SweepExecutor::new(8).aggregate(&matrix);
    assert_eq!(a, b);
    assert_eq!(a.total.cells, matrix.len() as u64);
}

/// A replay cell serves exactly the captured request stream: the number of
/// completed application requests equals the capture's length, for every
/// controller.
#[test]
fn replay_cells_serve_the_whole_capture() {
    let scale = WorkloadScale::tiny();
    let synthetic = WorkloadSpec::synthetic_scaled("cap", scale, 0.4);
    let encoded = BinaryTraceCodec.encode(&synthetic.generate_all(11));
    let captured = encoded.len() / BinaryTraceCodec::RECORD_BYTES;
    let replay = WorkloadSpec::replay_from_binary("cap", synthetic.interval_us(), encoded).unwrap();
    let matrix = ScenarioMatrix::replay(vec![replay], SimulationConfig::tiny());
    for (cell, report) in matrix.cells().zip(SweepExecutor::serial().run(&matrix)) {
        assert_eq!(
            report.app_completed as usize,
            captured,
            "{}: every captured request must complete",
            cell.id()
        );
    }
}

/// The 27-cell tiered matrix runs end to end and its multi-level cells
/// carry per-tier statistics.
#[test]
fn tiered_matrix_sweeps_end_to_end() {
    let matrix = ScenarioMatrix::tiered();
    let reports = SweepExecutor::new(0).run(&matrix);
    assert_eq!(reports.len(), 27);
    for (cell, report) in matrix.cells().zip(&reports) {
        assert!(report.app_completed > 0, "{} completed nothing", cell.id());
        match cell.config().tier_count() {
            1 => assert!(report.tier_stats.is_empty(), "{}", cell.id()),
            n => {
                assert_eq!(report.tier_stats.len(), n, "{}", cell.id());
                assert!(report.tier(0).unwrap().hits > 0, "{}", cell.id());
            }
        }
    }
    // The sweep is deterministic across worker counts, tiered cells
    // included.
    assert_eq!(SweepExecutor::serial().run(&matrix), reports);
}

/// Under a write-heavy burst, the tiered LBICA controller spills
/// reclassified requests into the warm tier (the spill chain) instead of
/// sending every bypass to the disk.
#[test]
fn tiered_lbica_uses_the_spill_chain_on_write_bursts() {
    let spec = WorkloadSpec::mail_server_scaled(WorkloadScale::tiny());
    let report = Simulation::new(SimulationConfig::tiny_two_tier(), spec, 20190325)
        .run(&mut LbicaController::new());
    assert!(report.burst_intervals() > 0, "the mail-server burst must be detected");
    assert!(
        report.bypassed_requests + report.spilled_requests() > 0,
        "the balancer must reclassify requests"
    );
    assert!(
        report.spilled_requests() > 0,
        "with an absorbing warm tier some reclassified requests must spill instead of \
         hitting the disk: {:?}",
        report.tier_stats
    );
}

/// Flat and tiered cells of one workload see the same arrival stream
/// (paired comparison), and all three controllers complete the same
/// workload on the tiered path — conservation across schemes.
#[test]
fn tiered_cells_conserve_the_workload_across_controllers() {
    let spec = WorkloadSpec::web_server_scaled(WorkloadScale::tiny());
    let completed: Vec<u64> = ControllerKind::ALL
        .iter()
        .map(|kind| {
            let mut controller = kind.build();
            Simulation::new(SimulationConfig::tiny_two_tier(), spec.clone(), 5)
                .run(controller.as_mut())
                .app_completed
        })
        .collect();
    assert!(completed[0] > 0);
    assert!(completed.windows(2).all(|w| w[0] == w[1]), "{completed:?}");
}
