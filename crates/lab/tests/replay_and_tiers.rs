//! End-to-end sweeps of the two new scenario axes: trace-replay cells and
//! tiered cache hierarchies, including the replay determinism guarantee
//! (the same captured trace gives bit-identical sweeps at any worker
//! count) and the tiered LBICA spill chain working through a real run.

use lbica_core::LbicaController;
use lbica_lab::{ControllerKind, ScenarioMatrix, SweepExecutor};
use lbica_sim::{Simulation, SimulationConfig};
use lbica_trace::io::BinaryTraceCodec;
use lbica_trace::workload::{WorkloadScale, WorkloadSpec};

/// Same trace, jobs=1 vs jobs=8: the replay matrix must produce identical
/// reports and identical aggregates — the determinism contract for
/// trace-replay cells.
#[test]
fn replay_matrix_is_deterministic_across_worker_counts() {
    let matrix = ScenarioMatrix::replay_demo();
    let serial = SweepExecutor::new(1).run(&matrix);
    let parallel = SweepExecutor::new(8).run(&matrix);
    assert_eq!(serial, parallel, "replay cells must not depend on the worker count");
    assert!(serial.iter().all(|r| r.app_completed > 0), "replayed arrivals are served");

    let a = SweepExecutor::new(1).aggregate(&matrix);
    let b = SweepExecutor::new(8).aggregate(&matrix);
    assert_eq!(a, b);
    assert_eq!(a.total.cells, matrix.len() as u64);
}

/// A replay cell serves exactly the captured request stream: the number of
/// completed application requests equals the capture's length, for every
/// controller.
#[test]
fn replay_cells_serve_the_whole_capture() {
    let scale = WorkloadScale::tiny();
    let synthetic = WorkloadSpec::synthetic_scaled("cap", scale, 0.4);
    let encoded = BinaryTraceCodec.encode(&synthetic.generate_all(11));
    let captured = encoded.len() / BinaryTraceCodec::RECORD_BYTES;
    let replay = WorkloadSpec::replay_from_binary("cap", synthetic.interval_us(), encoded).unwrap();
    let matrix = ScenarioMatrix::replay(vec![replay], SimulationConfig::tiny());
    for (cell, report) in matrix.cells().zip(SweepExecutor::serial().run(&matrix)) {
        assert_eq!(
            report.app_completed as usize,
            captured,
            "{}: every captured request must complete",
            cell.id()
        );
    }
}

/// The 27-cell tiered matrix runs end to end and its multi-level cells
/// carry per-tier statistics.
#[test]
fn tiered_matrix_sweeps_end_to_end() {
    let matrix = ScenarioMatrix::tiered();
    let reports = SweepExecutor::new(0).run(&matrix);
    assert_eq!(reports.len(), 27);
    for (cell, report) in matrix.cells().zip(&reports) {
        assert!(report.app_completed > 0, "{} completed nothing", cell.id());
        match cell.config().tier_count() {
            1 => assert!(report.tier_stats.is_empty(), "{}", cell.id()),
            n => {
                assert_eq!(report.tier_stats.len(), n, "{}", cell.id());
                assert!(report.tier(0).unwrap().hits > 0, "{}", cell.id());
            }
        }
    }
    // The sweep is deterministic across worker counts, tiered cells
    // included.
    assert_eq!(SweepExecutor::serial().run(&matrix), reports);
}

/// Under a write-heavy burst, the tiered LBICA controller spills
/// reclassified requests into the warm tier (the spill chain) instead of
/// sending every bypass to the disk.
#[test]
fn tiered_lbica_uses_the_spill_chain_on_write_bursts() {
    let spec = WorkloadSpec::mail_server_scaled(WorkloadScale::tiny());
    let report = Simulation::new(SimulationConfig::tiny_two_tier(), spec, 20190325)
        .run(&mut LbicaController::new());
    assert!(report.burst_intervals() > 0, "the mail-server burst must be detected");
    assert!(
        report.bypassed_requests + report.spilled_requests() > 0,
        "the balancer must reclassify requests"
    );
    assert!(
        report.spilled_requests() > 0,
        "with an absorbing warm tier some reclassified requests must spill instead of \
         hitting the disk: {:?}",
        report.tier_stats
    );
}

/// Flat and tiered cells of one workload see the same arrival stream
/// (paired comparison), and all three controllers complete the same
/// workload on the tiered path — conservation across schemes.
#[test]
fn tiered_cells_conserve_the_workload_across_controllers() {
    let spec = WorkloadSpec::web_server_scaled(WorkloadScale::tiny());
    let completed: Vec<u64> = ControllerKind::ALL
        .iter()
        .map(|kind| {
            let mut controller = kind.build();
            Simulation::new(SimulationConfig::tiny_two_tier(), spec.clone(), 5)
                .run(controller.as_mut())
                .app_completed
        })
        .collect();
    assert!(completed[0] > 0);
    assert!(completed.windows(2).all(|w| w[0] == w[1]), "{completed:?}");
}

/// Under a mixed read/write (Group-2) burst, the tier-aware LBICA-T
/// controller reclassifies the *read* tail down the spill chain — the
/// tiered analogue of the paper's RO-only Group-2 action — while the
/// paper-configured LBICA leaves reads alone on the same run.
#[test]
fn tier_aware_lbica_spills_the_read_tail_on_mixed_bursts() {
    let spec = WorkloadSpec::mail_server_scaled(WorkloadScale::tiny());
    let tiered = Simulation::new(SimulationConfig::tiny_two_tier(), spec.clone(), 20190325)
        .run(&mut LbicaController::tier_aware());
    assert!(tiered.burst_intervals() > 0, "the mail-server burst must be detected");
    assert!(
        tiered.spilled_reads() > 0,
        "a Group-2 burst over an absorbing warm tier must spill reads: {:?}",
        tiered.tier_stats
    );
    // The per-tier policy override shows up as a composite Fig. 6 label.
    assert!(
        tiered.policy_changes.iter().any(|c| c.policy.contains('/')),
        "tier-scoped assignments must be recorded hot-to-cold: {:?}",
        tiered.policy_changes
    );

    let paper = Simulation::new(SimulationConfig::tiny_two_tier(), spec, 20190325)
        .run(&mut LbicaController::new());
    assert_eq!(paper.spilled_reads(), 0, "the paper config never reclassifies reads");
}

/// The two new scenario axes sweep deterministically: jobs=1 and jobs=8
/// produce identical reports and aggregates for the per-tier-policy and
/// inclusion matrices.
#[test]
fn tier_policy_and_inclusion_matrices_are_deterministic_across_worker_counts() {
    for matrix in [ScenarioMatrix::tier_policy(), ScenarioMatrix::inclusion()] {
        let serial = SweepExecutor::new(1).run(&matrix);
        let parallel = SweepExecutor::new(8).run(&matrix);
        assert_eq!(serial, parallel, "tiered-policy cells must not depend on the worker count");
        assert!(serial.iter().all(|r| r.app_completed > 0));
        assert_eq!(
            SweepExecutor::new(1).aggregate(&matrix),
            SweepExecutor::new(8).aggregate(&matrix)
        );
    }
}

/// Inclusive cells actually exercise back-invalidation, and exclusive
/// cells never do — the axis is live, not cosmetic.
#[test]
fn inclusion_matrix_cells_report_back_invalidations() {
    let matrix = ScenarioMatrix::inclusion();
    let reports = SweepExecutor::serial().run(&matrix);
    let mut inclusive_back = 0u64;
    for (cell, report) in matrix.cells().zip(&reports) {
        match cell.config_label() {
            "exclusive" => assert_eq!(report.back_invalidations(), 0, "{}", cell.id()),
            _ => inclusive_back += report.back_invalidations(),
        }
    }
    assert!(inclusive_back > 0, "inclusive cells must back-invalidate at least once");
}

/// An explicitly configured per-tier write policy survives the whole
/// controller lifecycle: run start, burst overrides and calm reverts only
/// ever drive the hot tier of a non-uniform stack, so every recorded
/// assignment keeps the warm tier's configured policy.
#[test]
fn configured_warm_policy_survives_bursts_and_reverts() {
    use lbica_cache::WritePolicy;
    let spec = WorkloadSpec::mail_server_scaled(WorkloadScale::tiny());
    let warm_wt =
        SimulationConfig::tiny_two_tier().with_tier_level_policy(1, WritePolicy::WriteThrough);
    for controller in [LbicaController::new(), LbicaController::tier_aware()].iter_mut() {
        let report = Simulation::new(warm_wt, spec.clone(), 20190325).run(controller);
        assert!(report.burst_intervals() > 0, "the mail-server burst must be detected");
        assert!(
            report.policy_changes.iter().all(|c| c.policy.ends_with("/WT")),
            "the configured warm-tier policy must survive the controller: {:?}",
            report.policy_changes
        );
        assert!(report.policy_changes.len() > 1, "bursts must still switch the hot tier");
    }
}
