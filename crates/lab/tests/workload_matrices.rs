//! Determinism and paper-property tests of the realistic-workload
//! matrices: multi-tenant interleaves are `--jobs`- and shard-invariant,
//! the new workload axes keep per-coordinate stream seeds unique, the
//! tenant axis survives reordering, and Zipfian skew buys hit rate.

use std::collections::{BTreeMap, BTreeSet};

use lbica_lab::{
    derive_seed, tenant_rows, CsvSink, JsonSink, PartialSweep, ScenarioMatrix, SweepExecutor,
    TenantRow,
};
use lbica_sim::{Simulation, SimulationConfig, StaticPolicyController};
use lbica_trace::workload::{WorkloadScale, WorkloadSpec};

#[test]
fn multi_tenant_sweep_is_jobs_invariant() {
    let matrix = ScenarioMatrix::multi_tenant();
    let serial = SweepExecutor::serial().aggregate(&matrix).with_tenant_rows(&matrix);
    let parallel = SweepExecutor::new(8).aggregate(&matrix).with_tenant_rows(&matrix);
    assert_eq!(serial, parallel);
    assert_eq!(CsvSink::render(&serial), CsvSink::render(&parallel), "CSV bytes differ");
    assert_eq!(JsonSink::render(&serial), JsonSink::render(&parallel), "JSON bytes differ");
}

#[test]
fn multi_tenant_shard_merge_matches_the_single_process_run() {
    let matrix = ScenarioMatrix::multi_tenant();
    let single = SweepExecutor::new(2).aggregate(&matrix).with_tenant_rows(&matrix);
    // Three shards, round-tripped through the serialized partial form and
    // merged out of order — exactly what `sweep --shard` / `sweep merge`
    // do across processes.
    let partials: Vec<PartialSweep> = [1usize, 2, 0]
        .iter()
        .map(|&i| PartialSweep::collect(&SweepExecutor::serial(), &matrix, "multi-tenant", i, 3))
        .map(|p| PartialSweep::parse(&p.render()).expect("partials round-trip"))
        .collect();
    let merged = PartialSweep::merge(&partials).expect("complete partials merge");
    let summary = merged.summary.with_tenant_rows(&matrix);
    assert_eq!(summary, single);
    assert_eq!(CsvSink::render(&summary), CsvSink::render(&single), "CSV bytes differ");
    assert_eq!(JsonSink::render(&summary), JsonSink::render(&single), "JSON bytes differ");
}

fn tenant_mixes(reverse: bool) -> Vec<WorkloadSpec> {
    let scale = WorkloadScale::tiny();
    let mut specs: Vec<WorkloadSpec> = [1u32, 2, 4]
        .iter()
        .map(|&count| {
            WorkloadSpec::multi_tenant(
                format!("mt{count}"),
                count,
                scale.cache_blocks * 4,
                WorkloadSpec::paper_suite(scale),
            )
        })
        .collect();
    if reverse {
        specs.reverse();
    }
    specs
}

#[test]
fn tenant_axis_reordering_keeps_stream_seeds_and_tenant_rows() {
    let build = |reverse| {
        ScenarioMatrix::new()
            .with_workloads(tenant_mixes(reverse))
            .push_config("tiny", SimulationConfig::tiny())
            .with_seeds(vec![0, 1])
    };
    let forward = build(false);
    let reversed = build(true);
    let seeds = |m: &ScenarioMatrix| -> BTreeMap<String, u64> {
        m.cells().map(|c| (c.id(), c.stream_seed())).collect()
    };
    assert_eq!(seeds(&forward), seeds(&reversed));
    // Tenant rows are keyed by coordinates too: reordering the axis only
    // permutes the row order, never the row contents.
    let keyed =
        |m: &ScenarioMatrix| -> BTreeSet<TenantRow> { tenant_rows(m).into_iter().collect() };
    assert_eq!(keyed(&forward), keyed(&reversed));
}

#[test]
fn new_matrix_axes_keep_stream_seeds_unique_per_triple() {
    for (name, matrix) in [
        ("zipf", ScenarioMatrix::zipf()),
        ("diurnal", ScenarioMatrix::diurnal()),
        ("multi-tenant", ScenarioMatrix::multi_tenant()),
        ("paper-mt", ScenarioMatrix::paper_mt()),
    ] {
        let triples: BTreeSet<(String, String, u64)> = matrix
            .cells()
            .map(|c| (c.workload().name().to_string(), c.config_label().to_string(), c.seed()))
            .collect();
        let seeds: BTreeSet<u64> = matrix.cells().map(|c| c.stream_seed()).collect();
        assert_eq!(
            seeds.len(),
            triples.len(),
            "matrix `{name}`: distinct (workload, config, seed) triples must \
             draw distinct stream seeds"
        );
    }
}

#[test]
fn zipfian_skew_monotonically_improves_read_hit_rate() {
    // The zipf matrix's paper property: concentrating block popularity on
    // a fixed-size cache raises the read hit rate. One seed, one config,
    // WB policy — only the skew moves.
    let scale = WorkloadScale::tiny();
    let mut rates = Vec::new();
    for skew in [0u32, 600, 1200] {
        let spec = WorkloadSpec::zipfian_scaled(format!("zipf-{skew}"), scale, skew);
        let seed = derive_seed("zipf-hit-rate", "tiny", 0);
        let report = Simulation::new(SimulationConfig::tiny(), spec, seed)
            .run(&mut StaticPolicyController::write_back());
        let s = report.cache_stats;
        let reads = s.read_hits + s.read_misses;
        assert!(reads > 0, "skew {skew} issued no reads");
        rates.push(s.read_hits as f64 / reads as f64);
    }
    assert!(rates[0] < rates[1] && rates[1] < rates[2], "hit rate not monotone in skew: {rates:?}");
}
