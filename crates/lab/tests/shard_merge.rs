//! Distributed-sweep determinism: sharding the tiny matrix, merging the
//! partials (in shuffled order, through the serialized JSON form), and
//! asserting the result is byte-identical to a single-process run.

use lbica_lab::{CsvSink, JsonSink, MergeError, PartialSweep, ScenarioMatrix, SweepExecutor};

#[test]
fn three_way_shard_merges_byte_identical_to_single_process_run() {
    let matrix = ScenarioMatrix::tiny();
    let single = SweepExecutor::new(2).aggregate(&matrix);

    // Each shard runs in its own executor — the in-process stand-in for
    // three separate OS processes (the CI `shard-merge-smoke` job covers
    // the real multi-process path) — and round-trips through the JSON
    // document exactly as `sweep --shard` / `sweep merge` would.
    let partials: Vec<PartialSweep> = (0..3)
        .map(|i| PartialSweep::collect(&SweepExecutor::new(2), &matrix, "tiny", i, 3))
        .map(|p| PartialSweep::parse(&p.render()).expect("partials round-trip"))
        .collect();
    let cell_counts: Vec<usize> = partials.iter().map(|p| p.cells.len()).collect();
    assert_eq!(cell_counts, vec![12, 12, 12], "36 tiny cells split 3 ways");

    // Merge in shuffled shard order: aggregation is order-independent.
    let shuffled = [partials[1].clone(), partials[2].clone(), partials[0].clone()];
    let merged = PartialSweep::merge(&shuffled).expect("complete, compatible partials");

    assert_eq!(merged.matrix, "tiny");
    assert_eq!(merged.cells, matrix.len() as u64);
    assert_eq!(merged.summary, single, "merged summary equals the single-process summary");
    assert_eq!(
        CsvSink::render(&merged.summary),
        CsvSink::render(&single),
        "CSV sink bytes are identical"
    );
    assert_eq!(
        JsonSink::render(&merged.summary),
        JsonSink::render(&single),
        "JSON sink bytes are identical"
    );
}

#[test]
fn merge_rejects_partials_of_a_different_matrix_definition() {
    // Same matrix name and shape, different seed-axis values: only the
    // fingerprint can tell them apart — and must.
    let a = ScenarioMatrix::smoke();
    let b = ScenarioMatrix::smoke().with_seeds(vec![7]);
    assert_eq!(a.len(), b.len());
    let p0 = PartialSweep::collect(&SweepExecutor::serial(), &a, "smoke", 0, 2);
    let p1 = PartialSweep::collect(&SweepExecutor::serial(), &b, "smoke", 1, 2);
    match PartialSweep::merge(&[p0, p1]) {
        Err(MergeError::FingerprintMismatch { expected, found }) => assert_ne!(expected, found),
        other => panic!("expected a fingerprint mismatch, got {other:?}"),
    }
}

#[test]
fn merge_rejects_duplicate_and_missing_shards() {
    let matrix = ScenarioMatrix::smoke();
    let p0 = PartialSweep::collect(&SweepExecutor::serial(), &matrix, "smoke", 0, 2);
    let p1 = PartialSweep::collect(&SweepExecutor::serial(), &matrix, "smoke", 1, 2);

    assert_eq!(PartialSweep::merge(&[p0.clone(), p0.clone()]), Err(MergeError::DuplicateShard(0)));
    assert_eq!(PartialSweep::merge(std::slice::from_ref(&p0)), Err(MergeError::MissingShard(1)));
    assert_eq!(PartialSweep::merge(&[p1]), Err(MergeError::MissingShard(0)));
    assert_eq!(PartialSweep::merge(&[]), Err(MergeError::Empty));
}
