//! Model-based equivalence of the slot-addressed hot path against the
//! eager block-addressed reference: [`TieredCacheModule::access_into`] and
//! [`TieredCacheModule::access_into_eager`] must produce identical outcomes
//! and leave identical module state — same maps, same statistics, same
//! movement counters — for any multi-level topology and access sequence.
//! This is the contract that lets the optimized path claim bit-identical
//! semantics while skipping the per-hit re-find scans.

use proptest::prelude::*;

use lbica_cache::{CacheConfig, ReplacementKind, WritePolicy};
use lbica_storage::device::SsdConfig;
use lbica_storage::request::{IoRequest, RequestKind, RequestOrigin};
use lbica_tier::{
    DemotionPolicy, InclusionPolicy, PromotionPolicy, TierLevelSpec, TierTopology,
    TieredCacheModule, TieredOutcome,
};

#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64),
    Write(u64),
    BigRead(u64, u64),
    BigWrite(u64, u64),
    SetPolicy(WritePolicy),
    Invalidate(u64),
}

fn arb_policy() -> impl Strategy<Value = WritePolicy> {
    prop_oneof![
        Just(WritePolicy::WriteBack),
        Just(WritePolicy::WriteThrough),
        Just(WritePolicy::ReadOnly),
        Just(WritePolicy::WriteOnly),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..6, 0u64..96, 1u64..4, arb_policy()).prop_map(|(which, block, len, policy)| match which {
        0 => Op::Read(block),
        1 => Op::Write(block),
        2 => Op::BigRead(block, len),
        3 => Op::BigWrite(block, len),
        4 => Op::SetPolicy(policy),
        _ => Op::Invalidate(block),
    })
}

fn spec(num_sets: usize, associativity: usize, replacement: ReplacementKind) -> TierLevelSpec {
    TierLevelSpec::new(
        CacheConfig {
            num_sets,
            associativity,
            replacement,
            initial_policy: WritePolicy::WriteBack,
        },
        SsdConfig::samsung_863a(),
        1,
    )
}

fn arb_topology() -> impl Strategy<Value = TierTopology> {
    let geometry = prop_oneof![Just((2usize, 2usize)), Just((3, 2)), Just((1, 4))];
    let levels = prop_oneof![Just(2usize), Just(3)];
    let replacement = prop_oneof![Just(ReplacementKind::Lru), Just(ReplacementKind::Fifo)];
    let inclusion = prop_oneof![Just(InclusionPolicy::Exclusive), Just(InclusionPolicy::Inclusive)];
    let promotion = prop_oneof![Just(PromotionPolicy::OnHit), Just(PromotionPolicy::Never)];
    let demotion = prop_oneof![
        Just(DemotionPolicy::Cascade),
        Just(DemotionPolicy::DirtyCascade),
        Just(DemotionPolicy::None),
    ];
    (geometry, levels, replacement, inclusion, promotion, demotion).prop_map(
        |((sets, ways), levels, replacement, inclusion, promotion, demotion)| {
            let hot = spec(sets, ways, replacement);
            let warm = spec(sets * 2, ways, replacement);
            let topo = if levels == 2 {
                TierTopology::two_level(hot, warm)
            } else {
                TierTopology::three_level(hot, warm, spec(sets * 4, ways, replacement))
            };
            topo.with_inclusion(inclusion).with_promotion(promotion).with_demotion(demotion)
        },
    )
}

fn request(id: u64, kind: RequestKind, block: u64, blocks: u64) -> IoRequest {
    IoRequest::new(id, kind, RequestOrigin::Application, block * 8, blocks * 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn slot_addressed_path_matches_the_eager_reference(
        topology in arb_topology(),
        prewarm in prop_oneof![Just(false), Just(true)],
        ops in proptest::collection::vec(arb_op(), 1..250),
    ) {
        let mut fast = TieredCacheModule::new(topology);
        let mut eager = fast.clone();
        if prewarm {
            fast.prewarm_to_capacity();
            eager.prewarm_to_capacity();
        }

        let mut fast_out = TieredOutcome::new();
        let mut eager_out = TieredOutcome::new();
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Read(block) => {
                    let req = request(step as u64, RequestKind::Read, block, 1);
                    fast.access_into(&req, &mut fast_out);
                    eager.access_into_eager(&req, &mut eager_out);
                }
                Op::Write(block) => {
                    let req = request(step as u64, RequestKind::Write, block, 1);
                    fast.access_into(&req, &mut fast_out);
                    eager.access_into_eager(&req, &mut eager_out);
                }
                Op::BigRead(block, len) => {
                    let req = request(step as u64, RequestKind::Read, block, len);
                    fast.access_into(&req, &mut fast_out);
                    eager.access_into_eager(&req, &mut eager_out);
                }
                Op::BigWrite(block, len) => {
                    let req = request(step as u64, RequestKind::Write, block, len);
                    fast.access_into(&req, &mut fast_out);
                    eager.access_into_eager(&req, &mut eager_out);
                }
                Op::SetPolicy(policy) => {
                    fast.set_policy(policy);
                    eager.set_policy(policy);
                    continue;
                }
                Op::Invalidate(block) => {
                    prop_assert_eq!(
                        fast.invalidate_block(block),
                        eager.invalidate_block(block),
                        "invalidate({}) diverged at step {}", block, step
                    );
                    continue;
                }
            }
            prop_assert_eq!(&fast_out, &eager_out, "outcome diverged at step {}", step);
            for level in 0..fast.levels() {
                prop_assert_eq!(
                    fast.movement(level), eager.movement(level),
                    "movement[{}] diverged at step {}", level, step
                );
            }
            prop_assert_eq!(&fast, &eager, "module state diverged at step {}", step);
        }

        // Committing the deferred buffer changes no observable number.
        let before: Vec<_> = (0..fast.levels()).map(|l| fast.movement(l)).collect();
        fast.commit_moves();
        let after: Vec<_> = (0..fast.levels()).map(|l| fast.movement(l)).collect();
        prop_assert_eq!(before, after);
    }
}
