//! Model-based equivalence: a single-level [`TieredCacheModule`] must be
//! observably identical to the flat [`CacheModule`] — same derived
//! operations in the same order, same statistics, same occupancy — for any
//! sequence of accesses, policy switches and invalidations. This mirrors
//! the PR-3 `model_equivalence` suite that pinned the slot-arena rewrite,
//! and is what makes the tiered simulator path a pure superset of the flat
//! one.

use proptest::prelude::*;

use lbica_cache::{CacheConfig, CacheModule, ReplacementKind, WritePolicy};
use lbica_storage::request::{IoRequest, RequestKind, RequestOrigin};
use lbica_tier::{InclusionPolicy, TierLevelSpec, TierTopology, TieredCacheModule, TieredOutcome};

#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64),
    Write(u64),
    /// A multi-block request starting at `block` spanning `len` blocks.
    BigRead(u64, u64),
    BigWrite(u64, u64),
    SetPolicy(WritePolicy),
    /// The per-tier policy assignment applied to the only level — must be
    /// indistinguishable from the whole-stack switch on a one-level stack.
    SetLevelPolicy(WritePolicy),
    Invalidate(u64),
}

fn arb_policy() -> impl Strategy<Value = WritePolicy> {
    prop_oneof![
        Just(WritePolicy::WriteBack),
        Just(WritePolicy::WriteThrough),
        Just(WritePolicy::ReadOnly),
        Just(WritePolicy::WriteOnly),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..7, 0u64..64, 1u64..4, arb_policy()).prop_map(|(which, block, len, policy)| match which {
        0 => Op::Read(block),
        1 => Op::Write(block),
        2 => Op::BigRead(block, len),
        3 => Op::BigWrite(block, len),
        4 => Op::SetPolicy(policy),
        5 => Op::SetLevelPolicy(policy),
        _ => Op::Invalidate(block),
    })
}

fn arb_inclusion() -> impl Strategy<Value = InclusionPolicy> {
    // Inclusion is vacuous with one level: both modes must stay pinned to
    // the flat cache.
    prop_oneof![Just(InclusionPolicy::Exclusive), Just(InclusionPolicy::Inclusive)]
}

fn arb_geometry() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![Just((8usize, 2usize)), Just((7, 2)), Just((4, 4)), Just((1, 8)), Just((2, 1))]
}

fn arb_replacement() -> impl Strategy<Value = ReplacementKind> {
    prop_oneof![Just(ReplacementKind::Lru), Just(ReplacementKind::Fifo)]
}

fn request(id: u64, kind: RequestKind, block: u64, blocks: u64) -> IoRequest {
    IoRequest::new(id, kind, RequestOrigin::Application, block * 8, blocks * 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn one_level_hierarchy_matches_the_flat_cache(
        (num_sets, associativity) in arb_geometry(),
        replacement in arb_replacement(),
        initial_policy in arb_policy(),
        inclusion in arb_inclusion(),
        prewarm in 0u64..16,
        ops in proptest::collection::vec(arb_op(), 1..250),
    ) {
        let config = CacheConfig {
            num_sets,
            associativity,
            replacement,
            initial_policy,
        };
        let mut flat = CacheModule::new(config);
        let mut tiered = TieredCacheModule::new(
            TierTopology::single(TierLevelSpec::new(
                config,
                lbica_storage::device::SsdConfig::samsung_863a(),
                1,
            ))
            .with_inclusion(inclusion),
        );
        flat.prewarm(0..prewarm);
        tiered.prewarm(0..prewarm);

        let mut scratch = TieredOutcome::new();
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Read(block) => {
                    let req = request(step as u64, RequestKind::Read, block, 1);
                    let a = flat.access(&req);
                    tiered.access_into(&req, &mut scratch);
                    prop_assert_eq!(&a, &scratch.as_flat(), "read({}) diverged at step {}", block, step);
                }
                Op::Write(block) => {
                    let req = request(step as u64, RequestKind::Write, block, 1);
                    let a = flat.access(&req);
                    tiered.access_into(&req, &mut scratch);
                    prop_assert_eq!(&a, &scratch.as_flat(), "write({}) diverged at step {}", block, step);
                }
                Op::BigRead(block, len) => {
                    let req = request(step as u64, RequestKind::Read, block, len);
                    let a = flat.access(&req);
                    tiered.access_into(&req, &mut scratch);
                    prop_assert_eq!(&a, &scratch.as_flat(), "big read({}, {}) diverged at step {}", block, len, step);
                }
                Op::BigWrite(block, len) => {
                    let req = request(step as u64, RequestKind::Write, block, len);
                    let a = flat.access(&req);
                    tiered.access_into(&req, &mut scratch);
                    prop_assert_eq!(&a, &scratch.as_flat(), "big write({}, {}) diverged at step {}", block, len, step);
                }
                Op::SetPolicy(policy) => {
                    flat.set_policy(policy);
                    tiered.set_policy(policy);
                }
                Op::SetLevelPolicy(policy) => {
                    flat.set_policy(policy);
                    tiered.set_level_policy(0, policy);
                }
                Op::Invalidate(block) => {
                    prop_assert_eq!(
                        flat.invalidate_block(block),
                        tiered.invalidate_block(block),
                        "invalidate({}) diverged at step {}", block, step
                    );
                }
            }

            // Observable state agrees after every operation.
            prop_assert_eq!(flat.policy(), tiered.policy());
            prop_assert_eq!(flat.stats(), tiered.stats(0), "stats diverged at step {}", step);
            prop_assert_eq!(flat.cached_blocks(), tiered.cached_blocks(0), "occupancy diverged at step {}", step);
            prop_assert_eq!(flat.dirty_blocks(), tiered.dirty_blocks(0), "dirty count diverged at step {}", step);
        }
        prop_assert_eq!(flat.capacity_blocks(), tiered.capacity_blocks());
    }
}
