//! The datapath tiered cache module.

use serde::{Deserialize, Serialize};

use lbica_cache::{CacheStats, InsertOutcome, SetAssociativeMap, SlotState, WritePolicy};
use lbica_storage::block::{BlockRange, Lba, BLOCK_SECTORS};
use lbica_storage::request::{IoRequest, RequestKind, RequestOrigin};

use crate::config::{DemotionPolicy, InclusionPolicy, PromotionPolicy, TierTopology};
use crate::outcome::{TierTarget, TieredOp, TieredOutcome};

/// Inter-tier data-movement counters for one level.
///
/// `promotions_in` counts *block moves* and is distinct from
/// [`CacheStats::promotes`], which counts Promote-class *operations
/// emitted* (read-miss fills and read-hit promotions; a write-hit
/// promotion moves the block but its data travels on the application
/// write itself, so no Promote op — and no `promotes` increment — exists
/// for it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TierMovement {
    /// Blocks moved up into this level by promotion-on-hit.
    pub promotions_in: u64,
    /// Blocks demoted into this level from the level above.
    pub demotions_in: u64,
    /// Blocks demoted out of this level into the level below.
    pub demotions_out: u64,
    /// Reclassified application writes the load balancer spilled into this
    /// level.
    pub spills_in: u64,
    /// Reclassified application reads the load balancer spilled into this
    /// level.
    pub read_spills_in: u64,
    /// Copies this level dropped because the backing copy below it was
    /// evicted (inclusive hierarchies only).
    pub back_invalidations: u64,
}

/// An N-level generalization of [`lbica_cache::CacheModule`]: a stack of
/// set-associative maps (hot tier first), each governed by its own
/// [`WritePolicy`], with configurable fill placement, promotion-on-hit,
/// demotion-on-eviction and inclusion.
///
/// Under [`InclusionPolicy::Exclusive`] (the default) a block resides in
/// exactly one level at a time; [`InclusionPolicy::Inclusive`] lets
/// promotions copy instead of move, with back-invalidation keeping upper
/// copies coherent with their backing level. A single-level instance is
/// bit-identical to the flat cache module — same derived operations in the
/// same order, same statistics — which the `flat_equivalence` property
/// suite pins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TieredCacheModule {
    topology: TierTopology,
    maps: Vec<SetAssociativeMap>,
    stats: Vec<CacheStats>,
    movement: Vec<TierMovement>,
    /// Deferred movement deltas accumulated since the last
    /// [`TieredCacheModule::commit_moves`]: the hot paths batch their
    /// metadata-move bookkeeping here and the simulator folds the buffer
    /// into `movement` in one pass per interval.
    /// [`TieredCacheModule::movement`] always reports committed + pending,
    /// so the deferral is observationally invisible.
    pending: Vec<TierMovement>,
    policies: Vec<WritePolicy>,
    /// Whether the *configured* per-level policies were uniform: decides
    /// whether the single policy knob drives the whole stack (the paper's
    /// semantics) or the hot tier only (config-pinned lower levels).
    configured_uniform: bool,
}

impl TieredCacheModule {
    /// Builds a hierarchy from a topology. Every level's write policy
    /// starts as its spec's `initial_policy`.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no levels.
    pub fn new(topology: TierTopology) -> Self {
        assert!(!topology.is_empty(), "a tiered cache needs at least one level");
        let maps = topology
            .levels()
            .map(|l| {
                SetAssociativeMap::new(l.cache.num_sets, l.cache.associativity, l.cache.replacement)
            })
            .collect::<Vec<_>>();
        let n = maps.len();
        let policies: Vec<WritePolicy> =
            topology.levels().map(|l| l.cache.initial_policy).collect();
        TieredCacheModule {
            configured_uniform: policies.iter().all(|&p| p == policies[0]),
            policies,
            maps,
            stats: vec![CacheStats::default(); n],
            movement: vec![TierMovement::default(); n],
            pending: vec![TierMovement::default(); n],
            topology,
        }
    }

    /// The topology this hierarchy was built from.
    pub const fn topology(&self) -> &TierTopology {
        &self.topology
    }

    /// Number of cache levels.
    pub fn levels(&self) -> usize {
        self.maps.len()
    }

    /// The hot tier's current write policy — the policy every headline
    /// report label and flat-path comparison is judged against.
    pub fn policy(&self) -> WritePolicy {
        self.policies[0]
    }

    /// Applies the paper's single policy knob, effective for subsequent
    /// accesses. A hierarchy whose *configured* per-level policies are
    /// uniform defers wholly to the controller — every level switches,
    /// exactly the pre-per-tier semantics all existing controllers rely
    /// on. A hierarchy configured with explicit per-level differences (the
    /// per-tier write-policy axis) treats its lower levels as
    /// config-pinned: the single knob drives the hot tier only, and only
    /// [`TieredCacheModule::set_level_policies`] /
    /// [`TieredCacheModule::set_level_policy`] can change the rest.
    ///
    /// The uniformity of the *configured* topology is the discriminator,
    /// so a stack explicitly configured uniform (even to a non-default
    /// policy) still defers to the controller — the price of keeping every
    /// pre-per-tier configuration bit-identical. To pin lower levels,
    /// configure them differently from the hot tier.
    pub fn set_policy(&mut self, policy: WritePolicy) {
        if self.configured_uniform {
            self.policies.fill(policy);
        } else {
            self.policies[0] = policy;
        }
    }

    /// The write policy currently governing level `level`.
    ///
    /// A write is judged by the policy of the level that owns the block
    /// (its residency level, or the hot tier for a miss); a read-miss fill
    /// is promoted or skipped per the placement level's policy.
    pub fn level_policy(&self, level: usize) -> WritePolicy {
        self.policies[level]
    }

    /// Assigns a new write policy to a single level.
    pub fn set_level_policy(&mut self, level: usize, policy: WritePolicy) {
        self.policies[level] = policy;
    }

    /// Assigns per-level write policies, hot tier first.
    ///
    /// # Panics
    ///
    /// Panics if `policies` does not hold exactly one entry per level.
    pub fn set_level_policies(&mut self, policies: &[WritePolicy]) {
        assert_eq!(policies.len(), self.policies.len(), "one write policy per cache level");
        self.policies.copy_from_slice(policies);
    }

    /// The per-level write policies, hot tier first.
    pub fn level_policies(&self) -> &[WritePolicy] {
        &self.policies
    }

    /// Cumulative statistics of level `level`.
    pub fn stats(&self, level: usize) -> &CacheStats {
        &self.stats[level]
    }

    /// Inter-tier movement counters of level `level`: the committed
    /// counters plus any deltas still sitting in the deferred-move buffer,
    /// so the view is exact at any point between
    /// [`TieredCacheModule::commit_moves`] calls.
    pub fn movement(&self, level: usize) -> TierMovement {
        let base = &self.movement[level];
        let delta = &self.pending[level];
        TierMovement {
            promotions_in: base.promotions_in + delta.promotions_in,
            demotions_in: base.demotions_in + delta.demotions_in,
            demotions_out: base.demotions_out + delta.demotions_out,
            spills_in: base.spills_in + delta.spills_in,
            read_spills_in: base.read_spills_in + delta.read_spills_in,
            back_invalidations: base.back_invalidations + delta.back_invalidations,
        }
    }

    /// Folds the deferred-move buffer into the committed movement counters
    /// in one pass and clears it. The simulator calls this once per
    /// monitoring interval; because [`TieredCacheModule::movement`] always
    /// reports committed + pending, calling it earlier or later never
    /// changes an observable number.
    pub fn commit_moves(&mut self) {
        for (base, delta) in self.movement.iter_mut().zip(self.pending.iter_mut()) {
            base.promotions_in += delta.promotions_in;
            base.demotions_in += delta.demotions_in;
            base.demotions_out += delta.demotions_out;
            base.spills_in += delta.spills_in;
            base.read_spills_in += delta.read_spills_in;
            base.back_invalidations += delta.back_invalidations;
            *delta = TierMovement::default();
        }
    }

    /// Number of blocks currently cached at `level`.
    pub fn cached_blocks(&self, level: usize) -> usize {
        self.maps[level].len()
    }

    /// Number of dirty blocks currently held at `level`.
    pub fn dirty_blocks(&self, level: usize) -> usize {
        self.maps[level].dirty_blocks()
    }

    /// Total block capacity across every level.
    pub fn capacity_blocks(&self) -> usize {
        self.maps.iter().map(|m| m.capacity_blocks()).sum()
    }

    /// The level currently holding `block`, if any.
    pub fn resident_level(&self, block: u64) -> Option<usize> {
        (0..self.maps.len()).find(|&i| self.maps[i].contains(block))
    }

    fn block_range(block: u64) -> BlockRange {
        BlockRange::new(Lba::new(block * BLOCK_SECTORS), BLOCK_SECTORS)
    }

    /// Pushes one application request through the hierarchy and returns the
    /// derived station operations under the current policy.
    pub fn access(&mut self, request: &IoRequest) -> TieredOutcome {
        let mut outcome = TieredOutcome::new();
        self.access_into(request, &mut outcome);
        outcome
    }

    /// [`TieredCacheModule::access`] into a caller-owned outcome, clearing
    /// it first — the allocation-free hot path for simulator event loops.
    pub fn access_into(&mut self, request: &IoRequest, outcome: &mut TieredOutcome) {
        debug_assert_eq!(
            request.origin(),
            RequestOrigin::Application,
            "only application requests enter the tiered cache module"
        );
        outcome.clear();
        let mut any_miss = false;
        let mut any_hit = false;

        for block in request.range().block_indices() {
            let hit = match request.kind() {
                RequestKind::Read => self.handle_read_block(block, outcome),
                RequestKind::Write => self.handle_write_block(block, outcome),
            };
            if hit {
                any_hit = true;
            } else {
                any_miss = true;
            }
        }

        match request.kind() {
            RequestKind::Read => outcome.set_read_hit(any_hit && !any_miss),
            RequestKind::Write => outcome.set_write_hit(any_hit && !any_miss),
        }
        let disk_in_datapath = outcome
            .ops()
            .iter()
            .any(|op| op.target == TierTarget::Disk && op.origin == RequestOrigin::Application);
        outcome.set_served_by_cache(!disk_in_datapath);
    }

    /// [`TieredCacheModule::access_into`] resolved through the pre-handle
    /// block-addressed lookups: every hit re-finds its block for each
    /// touch, invalidate and dirty upgrade instead of reusing one located
    /// slot. Semantically identical to `access_into` (pinned by the
    /// `eager_equivalence` proptest); kept only as the reference side of
    /// the `tier/batched_vs_eager_movement` micro-bench.
    #[doc(hidden)]
    pub fn access_into_eager(&mut self, request: &IoRequest, outcome: &mut TieredOutcome) {
        debug_assert_eq!(
            request.origin(),
            RequestOrigin::Application,
            "only application requests enter the tiered cache module"
        );
        outcome.clear();
        let mut any_miss = false;
        let mut any_hit = false;

        for block in request.range().block_indices() {
            let hit = match request.kind() {
                RequestKind::Read => self.handle_read_block_eager(block, outcome),
                RequestKind::Write => self.handle_write_block_eager(block, outcome),
            };
            if hit {
                any_hit = true;
            } else {
                any_miss = true;
            }
        }

        match request.kind() {
            RequestKind::Read => outcome.set_read_hit(any_hit && !any_miss),
            RequestKind::Write => outcome.set_write_hit(any_hit && !any_miss),
        }
        let disk_in_datapath = outcome
            .ops()
            .iter()
            .any(|op| op.target == TierTarget::Disk && op.origin == RequestOrigin::Application);
        outcome.set_served_by_cache(!disk_in_datapath);
    }

    /// The eager (block-addressed) read path: the original touch-per-level
    /// probe followed by re-finding invalidates.
    fn handle_read_block_eager(&mut self, block: u64, outcome: &mut TieredOutcome) -> bool {
        let range = Self::block_range(block);
        if let Some(level) = (0..self.maps.len()).find(|&i| self.maps[i].touch(block)) {
            self.stats[level].read_hits += 1;
            outcome.note_hit_level(level);
            outcome.push(TieredOp::new(
                TierTarget::Level(level),
                RequestKind::Read,
                RequestOrigin::Application,
                range,
            ));
            if level > 0 && self.topology.promotion == PromotionPolicy::OnHit {
                let state = match self.topology.inclusion {
                    InclusionPolicy::Exclusive => {
                        self.maps[level].invalidate(block).expect("hit block is resident")
                    }
                    InclusionPolicy::Inclusive => SlotState::Clean,
                };
                self.insert_cascading(0, block, state, outcome);
                self.pending[0].promotions_in += 1;
                self.stats[0].promotes += 1;
                outcome.push(TieredOp::new(
                    TierTarget::Level(0),
                    RequestKind::Write,
                    RequestOrigin::Promote,
                    range,
                ));
            }
            return true;
        }

        self.stats[0].read_misses += 1;
        outcome.push(TieredOp::new(
            TierTarget::Disk,
            RequestKind::Read,
            RequestOrigin::Application,
            range,
        ));
        let place = self.topology.placement_level();
        if self.policies[place].promotes_read_misses() {
            self.insert_cascading(place, block, SlotState::Clean, outcome);
            self.stats[place].promotes += 1;
            outcome.push(TieredOp::new(
                TierTarget::Level(place),
                RequestKind::Write,
                RequestOrigin::Promote,
                range,
            ));
        } else {
            self.stats[0].unpromoted_read_misses += 1;
        }
        false
    }

    /// The eager (block-addressed) write path: `resident_level` scan plus
    /// re-finding insert/mark-dirty/invalidate calls.
    fn handle_write_block_eager(&mut self, block: u64, outcome: &mut TieredOutcome) -> bool {
        let range = Self::block_range(block);
        let resident = self.resident_level(block);
        let policy = self.policies[resident.unwrap_or(0)];

        if !policy.buffers_writes() {
            self.stats[0].write_bypasses += 1;
            self.stats[0].write_misses += 1;
            if let Some(level) = resident {
                self.drop_copies_from(level, block);
            }
            outcome.push(TieredOp::new(
                TierTarget::Disk,
                RequestKind::Write,
                RequestOrigin::Application,
                range,
            ));
            return false;
        }

        match resident {
            Some(level) => self.stats[level].write_hits += 1,
            None => self.stats[0].write_misses += 1,
        }
        let state = if policy.leaves_dirty_blocks() { SlotState::Dirty } else { SlotState::Clean };
        let target = match resident {
            Some(level) if level > 0 && self.topology.promotion == PromotionPolicy::OnHit => {
                let merged = match self.topology.inclusion {
                    InclusionPolicy::Exclusive => {
                        let old =
                            self.maps[level].invalidate(block).expect("hit block is resident");
                        if old == SlotState::Dirty {
                            SlotState::Dirty
                        } else {
                            state
                        }
                    }
                    InclusionPolicy::Inclusive => state,
                };
                self.insert_cascading(0, block, merged, outcome);
                self.pending[0].promotions_in += 1;
                outcome.note_hit_level(level);
                0
            }
            Some(level) => {
                self.insert_cascading(level, block, state, outcome);
                if policy.leaves_dirty_blocks() {
                    self.maps[level].mark_dirty(block);
                }
                outcome.note_hit_level(level);
                level
            }
            None => {
                self.insert_cascading(0, block, state, outcome);
                0
            }
        };

        outcome.push(TieredOp::new(
            TierTarget::Level(target),
            RequestKind::Write,
            RequestOrigin::Application,
            range,
        ));

        if policy.writes_through() {
            outcome.push(TieredOp::new(
                TierTarget::Disk,
                RequestKind::Write,
                RequestOrigin::Application,
                range,
            ));
        }
        true
    }

    /// Locates the topmost level holding `block` together with its slot
    /// handle, without a recency update — one tag scan per level, reused by
    /// every subsequent operation on the hit instead of re-finding the
    /// block.
    fn locate_resident(&self, block: u64) -> Option<(usize, u32)> {
        for level in 0..self.maps.len() {
            if let Some(slot) = self.maps[level].locate(block) {
                return Some((level, slot));
            }
        }
        None
    }

    /// Handles one block of an application read. Returns `true` on hit.
    ///
    /// Hits are resolved through one slot-handle lookup per level: the
    /// recency touch, the exclusive-promotion invalidate and the dirty-state
    /// read all reuse the located slot instead of re-scanning the set, which
    /// is what the pre-handle implementation
    /// ([`TieredCacheModule::access_into_eager`]) paid on every promoting
    /// hit.
    fn handle_read_block(&mut self, block: u64, outcome: &mut TieredOutcome) -> bool {
        let range = Self::block_range(block);
        if let Some((level, slot)) = self.locate_resident(block) {
            self.stats[level].read_hits += 1;
            outcome.note_hit_level(level);
            outcome.push(TieredOp::new(
                TierTarget::Level(level),
                RequestKind::Read,
                RequestOrigin::Application,
                range,
            ));
            if level > 0 && self.topology.promotion == PromotionPolicy::OnHit {
                let state = match self.topology.inclusion {
                    // Exclusive: the block *moves* up, carrying its state.
                    // The touch the eager path performed before the
                    // invalidate is elided: splicing a slot to the hot end
                    // and then unlinking it leaves the same recency list as
                    // unlinking it directly.
                    InclusionPolicy::Exclusive => self.maps[level].invalidate_at(slot),
                    // Inclusive: the lower line stays resident (and keeps
                    // ownership of any dirty data); the hot tier gets a
                    // clean copy.
                    InclusionPolicy::Inclusive => {
                        self.maps[level].touch_at(slot);
                        SlotState::Clean
                    }
                };
                self.insert_cascading(0, block, state, outcome);
                self.pending[0].promotions_in += 1;
                self.stats[0].promotes += 1;
                outcome.push(TieredOp::new(
                    TierTarget::Level(0),
                    RequestKind::Write,
                    RequestOrigin::Promote,
                    range,
                ));
            } else {
                self.maps[level].touch_at(slot);
            }
            return true;
        }

        // Miss at every level: the disk subsystem supplies the data...
        self.stats[0].read_misses += 1;
        outcome.push(TieredOp::new(
            TierTarget::Disk,
            RequestKind::Read,
            RequestOrigin::Application,
            range,
        ));

        // ...and, the placement level's policy permitting, the block is
        // installed there.
        let place = self.topology.placement_level();
        if self.policies[place].promotes_read_misses() {
            self.insert_cascading(place, block, SlotState::Clean, outcome);
            self.stats[place].promotes += 1;
            outcome.push(TieredOp::new(
                TierTarget::Level(place),
                RequestKind::Write,
                RequestOrigin::Promote,
                range,
            ));
        } else {
            self.stats[0].unpromoted_read_misses += 1;
        }
        false
    }

    /// Handles one block of an application write. Returns `true` when the
    /// write is absorbed by the hierarchy.
    ///
    /// The write is judged by the policy of the level that owns the block:
    /// its residency level for a hit, the hot tier for a miss. With uniform
    /// per-level policies (every pre-PR configuration) this is exactly the
    /// old shared-policy behaviour.
    fn handle_write_block(&mut self, block: u64, outcome: &mut TieredOutcome) -> bool {
        let range = Self::block_range(block);
        let resident = self.locate_resident(block);
        let policy = self.policies[resident.map_or(0, |(level, _)| level)];

        if !policy.buffers_writes() {
            // Read-only cache: the write bypasses to the disk subsystem and
            // any cached copy becomes stale.
            self.stats[0].write_bypasses += 1;
            self.stats[0].write_misses += 1;
            if let Some((level, slot)) = resident {
                self.drop_copies_from_at(level, slot, block);
            }
            outcome.push(TieredOp::new(
                TierTarget::Disk,
                RequestKind::Write,
                RequestOrigin::Application,
                range,
            ));
            return false;
        }

        // Write is absorbed by the hierarchy (WB, WT or WO): write-allocate.
        match resident {
            Some((level, _)) => self.stats[level].write_hits += 1,
            None => self.stats[0].write_misses += 1,
        }
        let state = if policy.leaves_dirty_blocks() { SlotState::Dirty } else { SlotState::Clean };
        let target = match resident {
            Some((level, slot))
                if level > 0 && self.topology.promotion == PromotionPolicy::OnHit =>
            {
                let merged = match self.topology.inclusion {
                    // Exclusive: the write overwrites the block, so it
                    // moves to the hot tier carrying the dirtier of its
                    // old and new states.
                    InclusionPolicy::Exclusive => {
                        let old = self.maps[level].invalidate_at(slot);
                        if old == SlotState::Dirty {
                            SlotState::Dirty
                        } else {
                            state
                        }
                    }
                    // Inclusive: the lower line stays resident with its
                    // old state; the hot tier absorbs the new data.
                    InclusionPolicy::Inclusive => state,
                };
                self.insert_cascading(0, block, merged, outcome);
                self.pending[0].promotions_in += 1;
                outcome.note_hit_level(level);
                0
            }
            Some((level, slot)) => {
                // In-place write: refresh recency and upgrade the state via
                // the located slot. The eager path routed this through a
                // full `insert` (tag scan → `AlreadyPresent` → touch →
                // upgrade) plus a `mark_dirty` re-find; the net effect is
                // exactly a touch plus a dirty upgrade when the policy
                // leaves dirty blocks (`state` is `Dirty` iff it does).
                self.maps[level].touch_at(slot);
                if policy.leaves_dirty_blocks() {
                    self.maps[level].mark_dirty_at(slot);
                }
                outcome.note_hit_level(level);
                level
            }
            None => {
                self.insert_cascading(0, block, state, outcome);
                0
            }
        };

        outcome.push(TieredOp::new(
            TierTarget::Level(target),
            RequestKind::Write,
            RequestOrigin::Application,
            range,
        ));

        if policy.writes_through() {
            outcome.push(TieredOp::new(
                TierTarget::Disk,
                RequestKind::Write,
                RequestOrigin::Application,
                range,
            ));
        }
        true
    }

    /// Invalidates every copy of `block` at `level` and (inclusive
    /// hierarchies) below it, counting one invalidation per dropped copy.
    /// The topmost copy is removed through its already-located slot handle.
    fn drop_copies_from_at(&mut self, level: usize, slot: u32, block: u64) {
        self.maps[level].invalidate_at(slot);
        self.stats[level].invalidations += 1;
        if self.topology.inclusion == InclusionPolicy::Inclusive {
            for lower in level + 1..self.maps.len() {
                if self.maps[lower].invalidate(block).is_some() {
                    self.stats[lower].invalidations += 1;
                }
            }
        }
    }

    /// Block-addressed variant of [`TieredCacheModule::drop_copies_from_at`]
    /// for the eager reference path.
    fn drop_copies_from(&mut self, level: usize, block: u64) {
        self.maps[level].invalidate(block);
        self.stats[level].invalidations += 1;
        if self.topology.inclusion == InclusionPolicy::Inclusive {
            for lower in level + 1..self.maps.len() {
                if self.maps[lower].invalidate(block).is_some() {
                    self.stats[lower].invalidations += 1;
                }
            }
        }
    }

    /// Installs `block` at `level`, cascading any evicted victims down the
    /// hierarchy per the demotion policy and emitting the data-movement
    /// operations (always *before* the caller pushes the op that triggered
    /// the install, matching the flat module's eviction-before-write order).
    fn insert_cascading(
        &mut self,
        level: usize,
        block: u64,
        state: SlotState,
        outcome: &mut TieredOutcome,
    ) {
        let mut lvl = level;
        let mut pending = Some((block, state));
        while let Some((blk, st)) = pending.take() {
            match self.maps[lvl].insert(blk, st) {
                InsertOutcome::Inserted => {}
                InsertOutcome::AlreadyPresent => {
                    if st == SlotState::Dirty {
                        self.maps[lvl].mark_dirty(blk);
                    }
                }
                InsertOutcome::EvictedDirty { victim } => {
                    pending = self.handle_eviction(lvl, victim, SlotState::Dirty, outcome);
                }
                InsertOutcome::EvictedClean { victim } => {
                    pending = self.handle_eviction(lvl, victim, SlotState::Clean, outcome);
                }
            }
            lvl += 1;
        }
    }

    /// Emits the operations for a victim evicted from `from`. Returns the
    /// `(block, state)` to install one level down when the victim cascades.
    fn handle_eviction(
        &mut self,
        from: usize,
        victim: u64,
        state: SlotState,
        outcome: &mut TieredOutcome,
    ) -> Option<(u64, SlotState)> {
        let range = Self::block_range(victim);
        // Inclusive hierarchies back-invalidate: a level may not cache a
        // block its backing tier has dropped, so copies above the evicting
        // level go with the victim. A dirty upper copy holds the freshest
        // data — its dirtiness transfers to the victim so the data still
        // cascades or writes back rather than being silently lost.
        let mut state = state;
        if self.topology.inclusion == InclusionPolicy::Inclusive {
            for upper in 0..from {
                if let Some(upper_state) = self.maps[upper].invalidate(victim) {
                    self.pending[upper].back_invalidations += 1;
                    self.stats[upper].invalidations += 1;
                    outcome.note_back_invalidation();
                    if upper_state == SlotState::Dirty {
                        state = SlotState::Dirty;
                    }
                }
            }
        }
        let last = from + 1 == self.maps.len();
        let cascades = !last
            && match (self.topology.demotion, state) {
                (DemotionPolicy::None, _) => false,
                (DemotionPolicy::DirtyCascade, SlotState::Clean) => false,
                (DemotionPolicy::DirtyCascade, SlotState::Dirty) => true,
                (DemotionPolicy::Cascade, _) => true,
            };
        if cascades {
            match state {
                SlotState::Dirty => self.stats[from].dirty_evictions += 1,
                SlotState::Clean => self.stats[from].clean_evictions += 1,
            }
            self.pending[from].demotions_out += 1;
            self.pending[from + 1].demotions_in += 1;
            // Reading the victim off its level and writing it one level
            // down: both legs carry the Evict class.
            outcome.push(TieredOp::new(
                TierTarget::Level(from),
                RequestKind::Read,
                RequestOrigin::Evict,
                range,
            ));
            outcome.push(TieredOp::new(
                TierTarget::Level(from + 1),
                RequestKind::Write,
                RequestOrigin::Evict,
                range,
            ));
            return Some((victim, state));
        }
        match state {
            SlotState::Dirty => {
                // Flat-cache behaviour: dirty victims write back to the
                // disk subsystem (SSD read + disk write, Evict class).
                self.stats[from].dirty_evictions += 1;
                outcome.push(TieredOp::new(
                    TierTarget::Level(from),
                    RequestKind::Read,
                    RequestOrigin::Evict,
                    range,
                ));
                outcome.push(TieredOp::new(
                    TierTarget::Disk,
                    RequestKind::Write,
                    RequestOrigin::Evict,
                    range,
                ));
            }
            SlotState::Clean => {
                self.stats[from].clean_evictions += 1;
            }
        }
        None
    }

    /// Absorbs a load-balancer spill: a queued application write pulled off
    /// the hot tier's queue is re-homed at `level`. The block's metadata
    /// moves with it (dirty under dirty-leaving policies); any demotions
    /// the installation causes are emitted into `outcome`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 (spills always move *down* the hierarchy) or
    /// out of bounds.
    pub fn absorb_spill(&mut self, block: u64, level: usize, outcome: &mut TieredOutcome) {
        assert!(level > 0 && level < self.maps.len(), "spill target must be a lower level");
        let removed_dirty = self.remove_all_copies(block);
        // The queued write is absorbed at `level`, so the target level's
        // policy decides whether the re-homed block is dirty.
        let state = if removed_dirty == Some(SlotState::Dirty)
            || self.policies[level].leaves_dirty_blocks()
        {
            SlotState::Dirty
        } else {
            SlotState::Clean
        };
        self.insert_cascading(level, block, state, outcome);
        self.pending[level].spills_in += 1;
    }

    /// Absorbs a load-balancer *read* spill: a queued application read
    /// pulled off the hot tier's queue is served from — and its block
    /// re-homed at — `level`, the tiered analogue of the paper's Group-2
    /// action. Unlike a write spill the block carries no new data, so it
    /// keeps its current dirty state (or installs clean if the metadata
    /// already aged out of the hierarchy).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 (spills always move *down* the hierarchy) or
    /// out of bounds.
    pub fn absorb_read_spill(&mut self, block: u64, level: usize, outcome: &mut TieredOutcome) {
        assert!(level > 0 && level < self.maps.len(), "spill target must be a lower level");
        let state = self.remove_all_copies(block).unwrap_or(SlotState::Clean);
        self.insert_cascading(level, block, state, outcome);
        self.pending[level].read_spills_in += 1;
    }

    /// Pulls `block` out of *every* level holding it — not just the levels
    /// above a spill target: by the time a queued request is spilled, later
    /// accesses may already have demoted its metadata below the target, and
    /// a leftover copy would break the one-owner invariant (and, inclusive
    /// hierarchies aside, shadow the re-homed line). Returns the dirtiest
    /// removed state, `None` if no copy existed.
    fn remove_all_copies(&mut self, block: u64) -> Option<SlotState> {
        let mut dirtiest = None;
        while let Some(level) = self.resident_level(block) {
            let state = self.maps[level].invalidate(block).expect("resident level holds the block");
            if dirtiest != Some(SlotState::Dirty) {
                dirtiest = Some(state);
            }
        }
        dirtiest
    }

    /// Invalidates a cached block wherever it resides (e.g. because a
    /// controller bypassed the write that would have updated it to the disk
    /// subsystem), returning its topmost copy's previous state if it was
    /// cached. Inclusive hierarchies drop every copy.
    pub fn invalidate_block(&mut self, block: u64) -> Option<SlotState> {
        let level = self.resident_level(block)?;
        let state = self.maps[level].invalidate(block);
        if state.is_some() {
            self.stats[level].invalidations += 1;
        }
        if self.topology.inclusion == InclusionPolicy::Inclusive {
            while let Some(lower) = self.resident_level(block) {
                self.maps[lower].invalidate(block);
                self.stats[lower].invalidations += 1;
            }
        }
        state
    }

    /// Pre-populates every level to capacity with clean blocks (level 0
    /// holds blocks `0..cap0`, level 1 the next `cap1`, and so on) without
    /// touching the statistics — the tiered analogue of the flat module's
    /// warm-up skip. Each level is filled through the map's sequential fast
    /// fill (a complete overwrite equivalent to inserting its block range in
    /// ascending order), so warming a large hierarchy costs one linear pass
    /// instead of a tag scan per block.
    pub fn prewarm_to_capacity(&mut self) {
        let mut next = 0u64;
        for map in &mut self.maps {
            map.fill_sequential(next);
            next += map.capacity_blocks() as u64;
        }
    }

    /// Restores the hierarchy to its freshly constructed state in place: the
    /// slot arenas keep their allocations, every counter (committed and
    /// deferred) is zeroed and the per-level policies return to their
    /// configured initial values. Observationally equivalent to
    /// `TieredCacheModule::new(*self.topology())` — the arena-reuse fast
    /// path.
    pub fn reset(&mut self) {
        for map in &mut self.maps {
            map.reset();
        }
        for stats in &mut self.stats {
            *stats = CacheStats::default();
        }
        for movement in &mut self.movement {
            *movement = TierMovement::default();
        }
        for delta in &mut self.pending {
            *delta = TierMovement::default();
        }
        for (policy, spec) in self.policies.iter_mut().zip(self.topology.levels()) {
            *policy = spec.cache.initial_policy;
        }
    }

    /// Pre-populates the *hot tier* with clean copies of the given blocks
    /// without touching the statistics (the flat module's `prewarm`).
    pub fn prewarm<I: IntoIterator<Item = u64>>(&mut self, blocks: I) {
        for block in blocks {
            let _ = self.maps[0].insert(block, SlotState::Clean);
        }
    }

    /// Serializes the hierarchy — per-level maps, statistics, movement
    /// counters (committed and deferred) and active policies — for a replay
    /// checkpoint. The topology is rebuilt from the simulation config on
    /// resume, not stored.
    pub fn snap_to(&self, w: &mut lbica_storage::snap::SnapWriter) {
        w.put_usize(self.maps.len());
        for level in 0..self.maps.len() {
            self.maps[level].snap_to(w);
            self.stats[level].snap_to(w);
            for m in [&self.movement[level], &self.pending[level]] {
                w.put_u64(m.promotions_in);
                w.put_u64(m.demotions_in);
                w.put_u64(m.demotions_out);
                w.put_u64(m.spills_in);
                w.put_u64(m.read_spills_in);
                w.put_u64(m.back_invalidations);
            }
            w.put_u8(match self.policies[level] {
                WritePolicy::WriteBack => 0,
                WritePolicy::WriteThrough => 1,
                WritePolicy::ReadOnly => 2,
                WritePolicy::WriteOnly => 3,
            });
        }
    }

    /// Restores state serialized by [`TieredCacheModule::snap_to`] into a
    /// hierarchy already built from the original topology.
    pub fn snap_state_from(
        &mut self,
        r: &mut lbica_storage::snap::SnapReader<'_>,
    ) -> Result<(), lbica_storage::snap::SnapError> {
        use lbica_storage::snap::SnapError;
        let levels = r.get_usize()?;
        if levels != self.maps.len() {
            return Err(SnapError::Corrupt("tier level count mismatch"));
        }
        for level in 0..levels {
            let map = SetAssociativeMap::snap_from(r)?;
            if map.capacity_blocks() != self.maps[level].capacity_blocks() {
                return Err(SnapError::Corrupt("tier geometry mismatch"));
            }
            self.maps[level] = map;
            self.stats[level] = CacheStats::snap_from(r)?;
            for dest in [0usize, 1] {
                let m = TierMovement {
                    promotions_in: r.get_u64()?,
                    demotions_in: r.get_u64()?,
                    demotions_out: r.get_u64()?,
                    spills_in: r.get_u64()?,
                    read_spills_in: r.get_u64()?,
                    back_invalidations: r.get_u64()?,
                };
                if dest == 0 {
                    self.movement[level] = m;
                } else {
                    self.pending[level] = m;
                }
            }
            self.policies[level] = match r.get_u8()? {
                0 => WritePolicy::WriteBack,
                1 => WritePolicy::WriteThrough,
                2 => WritePolicy::ReadOnly,
                3 => WritePolicy::WriteOnly,
                _ => return Err(SnapError::Corrupt("write policy tag")),
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PlacementPolicy, TierLevelSpec};
    use lbica_cache::{CacheConfig, ReplacementKind};
    use lbica_storage::device::SsdConfig;
    use lbica_storage::request::RequestClass;

    fn spec(num_sets: usize, associativity: usize) -> TierLevelSpec {
        TierLevelSpec::new(
            CacheConfig {
                num_sets,
                associativity,
                replacement: ReplacementKind::Lru,
                initial_policy: WritePolicy::WriteBack,
            },
            SsdConfig::samsung_863a(),
            1,
        )
    }

    fn two_level() -> TieredCacheModule {
        TieredCacheModule::new(TierTopology::two_level(spec(2, 2), spec(4, 2)))
    }

    fn read(id: u64, sector: u64) -> IoRequest {
        IoRequest::new(id, RequestKind::Read, RequestOrigin::Application, sector, 8)
    }

    fn write(id: u64, sector: u64) -> IoRequest {
        IoRequest::new(id, RequestKind::Write, RequestOrigin::Application, sector, 8)
    }

    #[test]
    fn miss_fills_the_hot_tier_and_hits_there() {
        let mut cache = two_level();
        let miss = cache.access(&read(1, 0));
        assert!(!miss.read_hit());
        assert_eq!(miss.disk_ops().len(), 1);
        assert_eq!(miss.level_ops(0).len(), 1);
        assert_eq!(miss.level_ops(0)[0].class(), RequestClass::Promote);
        let hit = cache.access(&read(2, 0));
        assert!(hit.read_hit());
        assert_eq!(hit.hit_level(), Some(0));
        assert!(hit.served_by_cache());
        assert_eq!(cache.stats(0).read_hits, 1);
        assert_eq!(cache.stats(0).read_misses, 1);
    }

    #[test]
    fn hot_tier_eviction_demotes_into_the_warm_tier() {
        let mut cache = two_level();
        // Hot tier: 2 sets x 2 ways. Blocks 0 and 2 fill set 0; block 4
        // maps to the same set and forces a dirty eviction of block 0.
        cache.access(&write(1, 0));
        cache.access(&write(2, 2 * 8));
        let out = cache.access(&write(3, 4 * 8));
        let evict_ops: Vec<_> =
            out.ops().iter().filter(|op| op.class() == RequestClass::Evict).collect();
        assert_eq!(evict_ops.len(), 2, "demotion is a level-0 read + level-1 write");
        assert_eq!(evict_ops[0].target, TierTarget::Level(0));
        assert_eq!(evict_ops[1].target, TierTarget::Level(1));
        assert_eq!(cache.movement(0).demotions_out, 1);
        assert_eq!(cache.movement(1).demotions_in, 1);
        assert_eq!(cache.cached_blocks(1), 1);
        assert_eq!(cache.dirty_blocks(1), 1, "the demoted block stays dirty");
    }

    #[test]
    fn warm_tier_hit_promotes_back_to_the_hot_tier() {
        let mut cache = two_level();
        for i in 0..4u64 {
            cache.access(&write(i, i * 2 * 8)); // fill set 0, demoting block 0
        }
        assert_eq!(cache.resident_level(0), Some(1));
        let hit = cache.access(&read(10, 0));
        assert!(hit.read_hit());
        assert_eq!(hit.hit_level(), Some(1));
        // The hit is served at level 1, then the block moves up (with a
        // promote write at level 0 and a demotion of level 0's victim).
        assert_eq!(hit.level_ops(1)[0].kind, RequestKind::Read);
        assert!(hit.level_ops(0).iter().any(|op| op.class() == RequestClass::Promote));
        assert_eq!(cache.resident_level(0), Some(0));
        assert_eq!(cache.movement(0).promotions_in, 1);
        assert_eq!(cache.dirty_blocks(0) + cache.dirty_blocks(1), 4, "dirty state survives moves");
    }

    #[test]
    fn promotion_never_serves_hits_in_place() {
        let topo =
            TierTopology::two_level(spec(2, 2), spec(4, 2)).with_promotion(PromotionPolicy::Never);
        let mut cache = TieredCacheModule::new(topo);
        for i in 0..4u64 {
            cache.access(&write(i, i * 2 * 8));
        }
        assert_eq!(cache.resident_level(0), Some(1));
        let hit = cache.access(&read(10, 0));
        assert!(hit.read_hit());
        assert_eq!(cache.resident_level(0), Some(1), "block stays in the warm tier");
        assert_eq!(cache.movement(0).promotions_in, 0);
    }

    #[test]
    fn cold_placement_installs_fills_in_the_last_level() {
        let topo = TierTopology::two_level(spec(2, 2), spec(4, 2))
            .with_placement(PlacementPolicy::ColdTier);
        let mut cache = TieredCacheModule::new(topo);
        let miss = cache.access(&read(1, 0));
        assert_eq!(miss.level_ops(1).len(), 1, "the fill lands in the cold tier");
        assert_eq!(cache.resident_level(0), Some(1));
        assert_eq!(cache.stats(1).promotes, 1);
    }

    #[test]
    fn last_level_dirty_eviction_writes_back_to_disk() {
        let mut cache = TieredCacheModule::new(TierTopology::single(spec(1, 2)));
        cache.access(&write(1, 0));
        cache.access(&write(2, 8));
        let out = cache.access(&write(3, 16));
        let evict_targets: Vec<TierTarget> = out
            .ops()
            .iter()
            .filter(|op| op.class() == RequestClass::Evict)
            .map(|op| op.target)
            .collect();
        assert_eq!(evict_targets, vec![TierTarget::Level(0), TierTarget::Disk]);
        assert_eq!(cache.stats(0).dirty_evictions, 1);
    }

    #[test]
    fn dirty_cascade_drops_clean_victims() {
        let topo = TierTopology::two_level(spec(1, 1), spec(2, 2))
            .with_promotion(PromotionPolicy::Never)
            .with_demotion(DemotionPolicy::DirtyCascade);
        let mut cache = TieredCacheModule::new(topo);
        cache.access(&read(1, 0)); // clean fill of block 0
        let out = cache.access(&read(2, 8)); // evicts clean block 0
        assert!(out.ops().iter().all(|op| op.class() != RequestClass::Evict));
        assert_eq!(cache.stats(0).clean_evictions, 1);
        assert_eq!(cache.movement(1).demotions_in, 0);
        // A dirty victim does cascade.
        cache.access(&write(3, 16));
        let out = cache.access(&write(4, 24));
        assert!(out.ops().iter().any(|op| op.class() == RequestClass::Evict));
        assert_eq!(cache.movement(1).demotions_in, 1);
    }

    #[test]
    fn absorb_spill_rehomes_the_block_dirty() {
        let mut cache = two_level();
        cache.access(&write(1, 0));
        assert_eq!(cache.resident_level(0), Some(0));
        let mut outcome = TieredOutcome::new();
        cache.absorb_spill(0, 1, &mut outcome);
        assert_eq!(cache.resident_level(0), Some(1));
        assert_eq!(cache.dirty_blocks(1), 1);
        assert_eq!(cache.movement(1).spills_in, 1);
    }

    #[test]
    fn absorb_spill_never_duplicates_a_block_resident_below_the_target() {
        // Three levels; block 0 is demoted all the way to level 2, then a
        // stale queued write for it is spilled with target level 1. The
        // level-2 copy must move, not be shadowed: exactly one resident
        // level afterwards.
        let topo = TierTopology::three_level(spec(1, 1), spec(1, 1), spec(4, 2))
            .with_promotion(PromotionPolicy::Never);
        let mut cache = TieredCacheModule::new(topo);
        cache.access(&write(1, 0)); // block 0 dirty at level 0
        cache.access(&write(2, 8)); // demotes 0 -> level 1
        cache.access(&write(3, 16)); // demotes 0 -> level 2, 1 -> level 1
        assert_eq!(cache.resident_level(0), Some(2));

        let mut outcome = TieredOutcome::new();
        cache.absorb_spill(0, 1, &mut outcome);
        assert_eq!(cache.resident_level(0), Some(1), "the block re-homes at the target");
        let copies = (0..3).filter(|&l| cache.cached_blocks(l) > 0).count();
        assert_eq!(
            cache.cached_blocks(0) + cache.cached_blocks(1) + cache.cached_blocks(2),
            3,
            "three distinct blocks, one copy each (levels occupied: {copies})"
        );
        // Invalidating once fully removes it — no stale shadow copy left.
        assert!(cache.invalidate_block(0).is_some());
        assert_eq!(cache.resident_level(0), None);
    }

    #[test]
    fn ro_policy_bypasses_and_invalidates_across_levels() {
        let mut cache = two_level();
        for i in 0..4u64 {
            cache.access(&write(i, i * 2 * 8)); // block 0 ends up at level 1
        }
        assert_eq!(cache.resident_level(0), Some(1));
        cache.set_policy(WritePolicy::ReadOnly);
        let out = cache.access(&write(10, 0));
        assert_eq!(out.disk_ops().len(), 1);
        assert!(out.level_ops(0).is_empty() && out.level_ops(1).is_empty());
        assert_eq!(cache.resident_level(0), None);
        assert_eq!(cache.stats(1).invalidations, 1);
        assert_eq!(cache.stats(0).write_bypasses, 1);
    }

    #[test]
    fn prewarm_to_capacity_fills_every_level() {
        let mut cache = two_level();
        cache.prewarm_to_capacity();
        assert_eq!(cache.cached_blocks(0), 4);
        assert_eq!(cache.cached_blocks(1), 8);
        assert_eq!(cache.dirty_blocks(0) + cache.dirty_blocks(1), 0);
        assert_eq!(cache.stats(0).reads() + cache.stats(0).writes(), 0);
        // Prewarmed blocks hit: block 5 lives in the warm tier.
        assert!(cache.access(&read(1, 5 * 8)).read_hit());
    }

    #[test]
    fn invalidate_block_finds_any_level() {
        let mut cache = two_level();
        cache.prewarm_to_capacity();
        assert_eq!(cache.invalidate_block(6), Some(SlotState::Clean));
        assert_eq!(cache.invalidate_block(6), None);
        assert_eq!(cache.stats(1).invalidations, 1);
    }

    #[test]
    fn capacity_sums_levels() {
        assert_eq!(two_level().capacity_blocks(), 4 + 8);
        assert_eq!(two_level().levels(), 2);
    }

    #[test]
    fn set_policy_governs_every_level_and_level_policy_just_one() {
        let mut cache = two_level();
        assert_eq!(cache.level_policies(), &[WritePolicy::WriteBack; 2]);
        cache.set_policy(WritePolicy::ReadOnly);
        assert_eq!(cache.level_policies(), &[WritePolicy::ReadOnly; 2]);
        cache.set_level_policy(1, WritePolicy::WriteBack);
        assert_eq!(cache.policy(), WritePolicy::ReadOnly);
        assert_eq!(cache.level_policy(1), WritePolicy::WriteBack);
        cache.set_level_policies(&[WritePolicy::WriteOnly, WritePolicy::WriteThrough]);
        assert_eq!(cache.level_policy(0), WritePolicy::WriteOnly);
        assert_eq!(cache.level_policy(1), WritePolicy::WriteThrough);
    }

    #[test]
    fn per_level_initial_policies_come_from_the_topology() {
        let topo = TierTopology::two_level(spec(2, 2), spec(4, 2))
            .with_level_policy(1, WritePolicy::WriteThrough);
        let cache = TieredCacheModule::new(topo);
        assert_eq!(cache.level_policy(0), WritePolicy::WriteBack);
        assert_eq!(cache.level_policy(1), WritePolicy::WriteThrough);
    }

    #[test]
    fn set_policy_pins_configured_lower_levels() {
        // Uniform configuration: the single knob drives every level
        // (pre-per-tier behaviour).
        let mut uniform = two_level();
        uniform.set_policy(WritePolicy::WriteThrough);
        assert_eq!(uniform.level_policies(), &[WritePolicy::WriteThrough; 2]);
        // Explicitly non-uniform configuration: the knob drives the hot
        // tier only; the configured warm policy survives any number of
        // switches (bursts, reverts).
        let mut split = TieredCacheModule::new(
            TierTopology::two_level(spec(2, 2), spec(4, 2))
                .with_level_policy(1, WritePolicy::ReadOnly),
        );
        split.set_policy(WritePolicy::WriteThrough);
        split.set_policy(WritePolicy::WriteBack);
        assert_eq!(split.level_policy(0), WritePolicy::WriteBack);
        assert_eq!(split.level_policy(1), WritePolicy::ReadOnly);
        // The explicit per-level setters remain the escape hatch.
        split.set_level_policy(1, WritePolicy::WriteBack);
        assert_eq!(split.level_policy(1), WritePolicy::WriteBack);
    }

    #[test]
    fn write_is_judged_by_the_owning_levels_policy() {
        // Warm tier write-through, hot tier write-back, promotion off so
        // blocks stay where they land.
        let topo = TierTopology::two_level(spec(2, 2), spec(4, 2))
            .with_promotion(PromotionPolicy::Never)
            .with_level_policy(1, WritePolicy::WriteThrough);
        let mut cache = TieredCacheModule::new(topo);
        for i in 0..4u64 {
            cache.access(&write(i, i * 2 * 8)); // block 0 demotes to level 1
        }
        assert_eq!(cache.resident_level(0), Some(1));
        // A write owned by the WT warm tier goes to the level *and* disk...
        let warm = cache.access(&write(10, 0));
        assert_eq!(warm.level_ops(1).len(), 1);
        assert_eq!(warm.disk_ops().len(), 1, "warm tier writes through");
        // ...while a write owned by the WB hot tier stays in the hierarchy.
        let hot = cache.access(&write(11, 6 * 8));
        assert!(hot.disk_ops().is_empty(), "hot tier buffers writes");
    }

    #[test]
    fn read_miss_promotion_follows_the_placement_levels_policy() {
        let topo = TierTopology::two_level(spec(2, 2), spec(4, 2))
            .with_placement(PlacementPolicy::ColdTier)
            .with_level_policy(1, WritePolicy::WriteOnly);
        let mut cache = TieredCacheModule::new(topo);
        let miss = cache.access(&read(1, 0));
        assert!(!miss.read_hit());
        assert!(miss.level_ops(1).is_empty(), "a WO placement level skips the fill");
        assert_eq!(cache.stats(0).unpromoted_read_misses, 1);
        assert_eq!(cache.resident_level(0), None);
    }

    fn inclusive_two_level() -> TieredCacheModule {
        TieredCacheModule::new(
            TierTopology::two_level(spec(2, 2), spec(4, 2))
                .with_inclusion(InclusionPolicy::Inclusive),
        )
    }

    #[test]
    fn inclusive_promotion_keeps_the_lower_copy_resident() {
        let mut cache = inclusive_two_level();
        for i in 0..4u64 {
            cache.access(&write(i, i * 2 * 8)); // block 0 demotes to level 1
        }
        assert_eq!(cache.resident_level(0), Some(1));
        let hit = cache.access(&read(10, 0));
        assert!(hit.read_hit());
        assert_eq!(cache.resident_level(0), Some(0), "the copy moved up");
        assert!(cache.maps[1].contains(0), "the warm copy stays resident");
        assert_eq!(cache.movement(0).promotions_in, 1);
        // The warm copy keeps ownership of the dirty data; the promoted hot
        // copy is a clean read cache (only block 6's write stays dirty
        // above, while 0, 2 and 4 are dirty below).
        assert_eq!(cache.dirty_blocks(0), 1);
        assert_eq!(cache.dirty_blocks(1), 3);
    }

    #[test]
    fn inclusive_lower_eviction_back_invalidates_the_upper_copy() {
        // Hot: 2 sets x 2 ways (even blocks share set 0); warm: 1 set x 2
        // ways, inclusive.
        let mut cache = TieredCacheModule::new(
            TierTopology::two_level(spec(2, 2), spec(1, 2))
                .with_inclusion(InclusionPolicy::Inclusive),
        );
        cache.access(&read(1, 0)); // hot: [0]
        cache.access(&read(2, 2 * 8)); // hot: [0, 2]
        cache.access(&read(3, 4 * 8)); // evicts 0 -> warm: [0]
        assert_eq!(cache.resident_level(0), Some(1));
        cache.access(&read(4, 0)); // promote: 0 copied up, 2 demoted
        assert!(cache.maps[0].contains(0) && cache.maps[1].contains(0), "two copies of block 0");
        // The next demotion fills the warm tier past capacity and evicts
        // its LRU line — block 0 — whose hot copy must be back-invalidated.
        let out = cache.access(&read(5, 6 * 8));
        assert!(!cache.maps[1].contains(0), "warm copy evicted");
        assert!(!cache.maps[0].contains(0), "back-invalidation dropped the hot copy");
        assert_eq!(cache.movement(0).back_invalidations, 1);
        assert_eq!(out.back_invalidations(), 1);
        assert_eq!(cache.stats(0).invalidations, 1);
    }

    #[test]
    fn inclusive_back_invalidation_preserves_dirty_data() {
        // Same geometry; this time the hot copy is dirtied after promotion,
        // so the back-invalidated line must hand its dirtiness to the
        // cascading victim instead of silently dropping the write.
        let mut cache = TieredCacheModule::new(
            TierTopology::two_level(spec(2, 2), spec(1, 2))
                .with_inclusion(InclusionPolicy::Inclusive),
        );
        cache.access(&read(1, 0));
        cache.access(&read(2, 2 * 8));
        cache.access(&read(3, 4 * 8)); // 0 -> warm
        cache.access(&write(4, 0)); // write promotion: hot copy dirty, warm copy stays
        assert!(cache.maps[0].contains(0) && cache.maps[1].contains(0));
        assert_eq!(cache.dirty_blocks(0), 1);
        let out = cache.access(&read(5, 6 * 8)); // warm evicts 0, back-invalidates
        assert!(!cache.maps[0].contains(0) && !cache.maps[1].contains(0));
        // The dirty hot data rode the eviction to the disk subsystem.
        assert!(
            out.ops()
                .iter()
                .any(|op| op.target == TierTarget::Disk && op.class() == RequestClass::Evict),
            "dirty back-invalidated data must write back: {:?}",
            out.ops()
        );
    }

    #[test]
    fn reset_is_equivalent_to_fresh_construction() {
        let topo = TierTopology::two_level(spec(2, 2), spec(4, 2))
            .with_level_policy(1, WritePolicy::WriteThrough);
        let mut cache = TieredCacheModule::new(topo);
        for i in 0..6u64 {
            cache.access(&write(i, i * 2 * 8));
            cache.access(&read(10 + i, i * 8));
        }
        cache.set_policy(WritePolicy::ReadOnly);
        cache.reset();
        assert_eq!(cache, TieredCacheModule::new(topo));
        assert_eq!(cache.level_policy(1), WritePolicy::WriteThrough);
        assert_eq!(cache.movement(0), TierMovement::default());
        assert_eq!(cache.cached_blocks(0) + cache.cached_blocks(1), 0);
    }

    #[test]
    fn commit_moves_is_observationally_invisible() {
        let mut cache = two_level();
        for i in 0..6u64 {
            cache.access(&write(i, i * 2 * 8)); // forces demotions
        }
        cache.access(&read(20, 0)); // warm hit promotes back up
        let live: Vec<TierMovement> = (0..2).map(|l| cache.movement(l)).collect();
        assert!(live[0].promotions_in > 0 && live[1].demotions_in > 0);
        cache.commit_moves();
        let committed: Vec<TierMovement> = (0..2).map(|l| cache.movement(l)).collect();
        assert_eq!(live, committed);
        // A second commit with an empty buffer is a no-op too.
        cache.commit_moves();
        assert_eq!(committed, (0..2).map(|l| cache.movement(l)).collect::<Vec<_>>());
    }

    #[test]
    fn fast_prewarm_matches_naive_per_block_inserts() {
        let mut fast = two_level();
        fast.prewarm_to_capacity();
        let mut naive = two_level();
        let mut next = 0u64;
        for level in 0..2 {
            let cap = naive.maps[level].capacity_blocks() as u64;
            for block in next..next + cap {
                let _ = naive.maps[level].insert(block, SlotState::Clean);
            }
            next += cap;
        }
        assert_eq!(fast, naive);
    }

    #[test]
    fn absorb_read_spill_rehomes_without_dirtying() {
        let mut cache = two_level();
        cache.access(&read(1, 0)); // clean fill at level 0
        let mut outcome = TieredOutcome::new();
        cache.absorb_read_spill(0, 1, &mut outcome);
        assert_eq!(cache.resident_level(0), Some(1));
        assert_eq!(cache.dirty_blocks(1), 0, "read spills never dirty the block");
        assert_eq!(cache.movement(1).read_spills_in, 1);
        assert_eq!(cache.movement(1).spills_in, 0);
        // A dirty block keeps its dirtiness across a read spill.
        cache.access(&write(2, 2 * 8));
        cache.absorb_read_spill(2, 1, &mut outcome);
        assert_eq!(cache.dirty_blocks(1), 1);
    }

    #[test]
    fn snap_round_trip_restores_the_whole_hierarchy() {
        let mut cache = two_level();
        for i in 0..20u64 {
            if i % 3 == 0 {
                cache.access(&write(i, i * 8));
            } else {
                cache.access(&read(i, i * 8));
            }
        }
        cache.set_level_policy(1, WritePolicy::WriteThrough);
        // Leave deferred movement uncommitted to prove `pending` survives.

        let mut w = lbica_storage::snap::SnapWriter::new();
        cache.snap_to(&mut w);
        let bytes = w.into_bytes();

        let mut restored = two_level();
        let mut r = lbica_storage::snap::SnapReader::new(&bytes);
        restored.snap_state_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, cache);

        // Identical behaviour afterwards, including movement accounting.
        let probe = read(99, 5 * 8);
        assert_eq!(restored.access(&probe), cache.access(&probe));
        restored.commit_moves();
        cache.commit_moves();
        assert_eq!(restored, cache);
    }

    #[test]
    fn snap_state_from_rejects_level_count_mismatch() {
        let cache = two_level();
        let mut w = lbica_storage::snap::SnapWriter::new();
        cache.snap_to(&mut w);
        let bytes = w.into_bytes();

        let mut flat = TieredCacheModule::new(TierTopology::single(spec(2, 2)));
        let mut r = lbica_storage::snap::SnapReader::new(&bytes);
        assert_eq!(
            flat.snap_state_from(&mut r),
            Err(lbica_storage::snap::SnapError::Corrupt("tier level count mismatch"))
        );
    }
}
