//! The datapath tiered cache module.

use serde::{Deserialize, Serialize};

use lbica_cache::{CacheStats, InsertOutcome, SetAssociativeMap, SlotState, WritePolicy};
use lbica_storage::block::{BlockRange, Lba, BLOCK_SECTORS};
use lbica_storage::request::{IoRequest, RequestKind, RequestOrigin};

use crate::config::{DemotionPolicy, PromotionPolicy, TierTopology};
use crate::outcome::{TierTarget, TieredOp, TieredOutcome};

/// Inter-tier data-movement counters for one level.
///
/// `promotions_in` counts *block moves* and is distinct from
/// [`CacheStats::promotes`], which counts Promote-class *operations
/// emitted* (read-miss fills and read-hit promotions; a write-hit
/// promotion moves the block but its data travels on the application
/// write itself, so no Promote op — and no `promotes` increment — exists
/// for it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TierMovement {
    /// Blocks moved up into this level by promotion-on-hit.
    pub promotions_in: u64,
    /// Blocks demoted into this level from the level above.
    pub demotions_in: u64,
    /// Blocks demoted out of this level into the level below.
    pub demotions_out: u64,
    /// Reclassified requests the load balancer spilled into this level.
    pub spills_in: u64,
}

/// An N-level generalization of [`lbica_cache::CacheModule`]: a stack of
/// set-associative maps (hot tier first) sharing one [`WritePolicy`],
/// with configurable fill placement, promotion-on-hit and
/// demotion-on-eviction.
///
/// The hierarchy is **exclusive**: a block resides in exactly one level at
/// a time. A single-level instance is bit-identical to the flat cache
/// module — same derived operations in the same order, same statistics —
/// which the `flat_equivalence` property suite pins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TieredCacheModule {
    topology: TierTopology,
    maps: Vec<SetAssociativeMap>,
    stats: Vec<CacheStats>,
    movement: Vec<TierMovement>,
    policy: WritePolicy,
}

impl TieredCacheModule {
    /// Builds a hierarchy from a topology. The write policy starts as the
    /// hot tier's `initial_policy`.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no levels.
    pub fn new(topology: TierTopology) -> Self {
        assert!(!topology.is_empty(), "a tiered cache needs at least one level");
        let maps = topology
            .levels()
            .map(|l| {
                SetAssociativeMap::new(l.cache.num_sets, l.cache.associativity, l.cache.replacement)
            })
            .collect::<Vec<_>>();
        let n = maps.len();
        TieredCacheModule {
            policy: topology.level(0).cache.initial_policy,
            maps,
            stats: vec![CacheStats::default(); n],
            movement: vec![TierMovement::default(); n],
            topology,
        }
    }

    /// The topology this hierarchy was built from.
    pub const fn topology(&self) -> &TierTopology {
        &self.topology
    }

    /// Number of cache levels.
    pub fn levels(&self) -> usize {
        self.maps.len()
    }

    /// The currently assigned write policy (shared by every level).
    pub const fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// Assigns a new write policy, effective for subsequent accesses.
    pub fn set_policy(&mut self, policy: WritePolicy) {
        self.policy = policy;
    }

    /// Cumulative statistics of level `level`.
    pub fn stats(&self, level: usize) -> &CacheStats {
        &self.stats[level]
    }

    /// Inter-tier movement counters of level `level`.
    pub fn movement(&self, level: usize) -> &TierMovement {
        &self.movement[level]
    }

    /// Number of blocks currently cached at `level`.
    pub fn cached_blocks(&self, level: usize) -> usize {
        self.maps[level].len()
    }

    /// Number of dirty blocks currently held at `level`.
    pub fn dirty_blocks(&self, level: usize) -> usize {
        self.maps[level].dirty_blocks()
    }

    /// Total block capacity across every level.
    pub fn capacity_blocks(&self) -> usize {
        self.maps.iter().map(|m| m.capacity_blocks()).sum()
    }

    /// The level currently holding `block`, if any.
    pub fn resident_level(&self, block: u64) -> Option<usize> {
        (0..self.maps.len()).find(|&i| self.maps[i].contains(block))
    }

    fn block_range(block: u64) -> BlockRange {
        BlockRange::new(Lba::new(block * BLOCK_SECTORS), BLOCK_SECTORS)
    }

    /// Pushes one application request through the hierarchy and returns the
    /// derived station operations under the current policy.
    pub fn access(&mut self, request: &IoRequest) -> TieredOutcome {
        let mut outcome = TieredOutcome::new();
        self.access_into(request, &mut outcome);
        outcome
    }

    /// [`TieredCacheModule::access`] into a caller-owned outcome, clearing
    /// it first — the allocation-free hot path for simulator event loops.
    pub fn access_into(&mut self, request: &IoRequest, outcome: &mut TieredOutcome) {
        debug_assert_eq!(
            request.origin(),
            RequestOrigin::Application,
            "only application requests enter the tiered cache module"
        );
        outcome.clear();
        let mut any_miss = false;
        let mut any_hit = false;

        for block in request.range().block_indices() {
            let hit = match request.kind() {
                RequestKind::Read => self.handle_read_block(block, outcome),
                RequestKind::Write => self.handle_write_block(block, outcome),
            };
            if hit {
                any_hit = true;
            } else {
                any_miss = true;
            }
        }

        match request.kind() {
            RequestKind::Read => outcome.set_read_hit(any_hit && !any_miss),
            RequestKind::Write => outcome.set_write_hit(any_hit && !any_miss),
        }
        let disk_in_datapath = outcome
            .ops()
            .iter()
            .any(|op| op.target == TierTarget::Disk && op.origin == RequestOrigin::Application);
        outcome.set_served_by_cache(!disk_in_datapath);
    }

    /// Handles one block of an application read. Returns `true` on hit.
    fn handle_read_block(&mut self, block: u64, outcome: &mut TieredOutcome) -> bool {
        let range = Self::block_range(block);
        if let Some(level) = (0..self.maps.len()).find(|&i| self.maps[i].touch(block)) {
            self.stats[level].read_hits += 1;
            outcome.note_hit_level(level);
            outcome.push(TieredOp::new(
                TierTarget::Level(level),
                RequestKind::Read,
                RequestOrigin::Application,
                range,
            ));
            if level > 0 && self.topology.promotion == PromotionPolicy::OnHit {
                let state = self.maps[level].invalidate(block).expect("hit block is resident");
                self.insert_cascading(0, block, state, outcome);
                self.movement[0].promotions_in += 1;
                self.stats[0].promotes += 1;
                outcome.push(TieredOp::new(
                    TierTarget::Level(0),
                    RequestKind::Write,
                    RequestOrigin::Promote,
                    range,
                ));
            }
            return true;
        }

        // Miss at every level: the disk subsystem supplies the data...
        self.stats[0].read_misses += 1;
        outcome.push(TieredOp::new(
            TierTarget::Disk,
            RequestKind::Read,
            RequestOrigin::Application,
            range,
        ));

        // ...and, policy permitting, the block is installed per placement.
        if self.policy.promotes_read_misses() {
            let place = self.topology.placement_level();
            self.insert_cascading(place, block, SlotState::Clean, outcome);
            self.stats[place].promotes += 1;
            outcome.push(TieredOp::new(
                TierTarget::Level(place),
                RequestKind::Write,
                RequestOrigin::Promote,
                range,
            ));
        } else {
            self.stats[0].unpromoted_read_misses += 1;
        }
        false
    }

    /// Handles one block of an application write. Returns `true` when the
    /// write is absorbed by the hierarchy.
    fn handle_write_block(&mut self, block: u64, outcome: &mut TieredOutcome) -> bool {
        let range = Self::block_range(block);

        if !self.policy.buffers_writes() {
            // Read-only cache: the write bypasses to the disk subsystem and
            // any cached copy becomes stale.
            self.stats[0].write_bypasses += 1;
            self.stats[0].write_misses += 1;
            if let Some(level) = self.resident_level(block) {
                self.maps[level].invalidate(block);
                self.stats[level].invalidations += 1;
            }
            outcome.push(TieredOp::new(
                TierTarget::Disk,
                RequestKind::Write,
                RequestOrigin::Application,
                range,
            ));
            return false;
        }

        // Write is absorbed by the hierarchy (WB, WT or WO): write-allocate.
        let resident = self.resident_level(block);
        match resident {
            Some(level) => self.stats[level].write_hits += 1,
            None => self.stats[0].write_misses += 1,
        }
        let state =
            if self.policy.leaves_dirty_blocks() { SlotState::Dirty } else { SlotState::Clean };
        let target = match resident {
            Some(level) if level > 0 && self.topology.promotion == PromotionPolicy::OnHit => {
                // The write overwrites the block, so it moves to the hot
                // tier carrying the dirtier of its old and new states.
                let old = self.maps[level].invalidate(block).expect("hit block is resident");
                let merged = if old == SlotState::Dirty { SlotState::Dirty } else { state };
                self.insert_cascading(0, block, merged, outcome);
                self.movement[0].promotions_in += 1;
                outcome.note_hit_level(level);
                0
            }
            Some(level) => {
                // In-place write: refresh recency and upgrade the state,
                // exactly like the flat module's write-allocate insert.
                self.insert_cascading(level, block, state, outcome);
                if self.policy.leaves_dirty_blocks() {
                    self.maps[level].mark_dirty(block);
                }
                outcome.note_hit_level(level);
                level
            }
            None => {
                self.insert_cascading(0, block, state, outcome);
                0
            }
        };

        outcome.push(TieredOp::new(
            TierTarget::Level(target),
            RequestKind::Write,
            RequestOrigin::Application,
            range,
        ));

        if self.policy.writes_through() {
            outcome.push(TieredOp::new(
                TierTarget::Disk,
                RequestKind::Write,
                RequestOrigin::Application,
                range,
            ));
        }
        true
    }

    /// Installs `block` at `level`, cascading any evicted victims down the
    /// hierarchy per the demotion policy and emitting the data-movement
    /// operations (always *before* the caller pushes the op that triggered
    /// the install, matching the flat module's eviction-before-write order).
    fn insert_cascading(
        &mut self,
        level: usize,
        block: u64,
        state: SlotState,
        outcome: &mut TieredOutcome,
    ) {
        let mut lvl = level;
        let mut pending = Some((block, state));
        while let Some((blk, st)) = pending.take() {
            match self.maps[lvl].insert(blk, st) {
                InsertOutcome::Inserted => {}
                InsertOutcome::AlreadyPresent => {
                    if st == SlotState::Dirty {
                        self.maps[lvl].mark_dirty(blk);
                    }
                }
                InsertOutcome::EvictedDirty { victim } => {
                    pending = self.handle_eviction(lvl, victim, SlotState::Dirty, outcome);
                }
                InsertOutcome::EvictedClean { victim } => {
                    pending = self.handle_eviction(lvl, victim, SlotState::Clean, outcome);
                }
            }
            lvl += 1;
        }
    }

    /// Emits the operations for a victim evicted from `from`. Returns the
    /// `(block, state)` to install one level down when the victim cascades.
    fn handle_eviction(
        &mut self,
        from: usize,
        victim: u64,
        state: SlotState,
        outcome: &mut TieredOutcome,
    ) -> Option<(u64, SlotState)> {
        let range = Self::block_range(victim);
        let last = from + 1 == self.maps.len();
        let cascades = !last
            && match (self.topology.demotion, state) {
                (DemotionPolicy::None, _) => false,
                (DemotionPolicy::DirtyCascade, SlotState::Clean) => false,
                (DemotionPolicy::DirtyCascade, SlotState::Dirty) => true,
                (DemotionPolicy::Cascade, _) => true,
            };
        if cascades {
            match state {
                SlotState::Dirty => self.stats[from].dirty_evictions += 1,
                SlotState::Clean => self.stats[from].clean_evictions += 1,
            }
            self.movement[from].demotions_out += 1;
            self.movement[from + 1].demotions_in += 1;
            // Reading the victim off its level and writing it one level
            // down: both legs carry the Evict class.
            outcome.push(TieredOp::new(
                TierTarget::Level(from),
                RequestKind::Read,
                RequestOrigin::Evict,
                range,
            ));
            outcome.push(TieredOp::new(
                TierTarget::Level(from + 1),
                RequestKind::Write,
                RequestOrigin::Evict,
                range,
            ));
            return Some((victim, state));
        }
        match state {
            SlotState::Dirty => {
                // Flat-cache behaviour: dirty victims write back to the
                // disk subsystem (SSD read + disk write, Evict class).
                self.stats[from].dirty_evictions += 1;
                outcome.push(TieredOp::new(
                    TierTarget::Level(from),
                    RequestKind::Read,
                    RequestOrigin::Evict,
                    range,
                ));
                outcome.push(TieredOp::new(
                    TierTarget::Disk,
                    RequestKind::Write,
                    RequestOrigin::Evict,
                    range,
                ));
            }
            SlotState::Clean => {
                self.stats[from].clean_evictions += 1;
            }
        }
        None
    }

    /// Absorbs a load-balancer spill: a queued application write pulled off
    /// the hot tier's queue is re-homed at `level`. The block's metadata
    /// moves with it (dirty under dirty-leaving policies); any demotions
    /// the installation causes are emitted into `outcome`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 (spills always move *down* the hierarchy) or
    /// out of bounds.
    pub fn absorb_spill(&mut self, block: u64, level: usize, outcome: &mut TieredOutcome) {
        assert!(level > 0 && level < self.maps.len(), "spill target must be a lower level");
        // Pull the block out of *whichever* level holds it — not just the
        // levels above the target: by the time a queued write is spilled,
        // later accesses may already have demoted its metadata below the
        // target, and leaving that copy behind would break the exclusive-
        // hierarchy invariant (one resident level per block).
        let removed =
            self.resident_level(block).and_then(|i| self.maps[i].invalidate(block).map(|s| (i, s)));
        let state = match removed {
            Some((_, SlotState::Dirty)) => SlotState::Dirty,
            _ if self.policy.leaves_dirty_blocks() => SlotState::Dirty,
            _ => SlotState::Clean,
        };
        self.insert_cascading(level, block, state, outcome);
        self.movement[level].spills_in += 1;
    }

    /// Invalidates a cached block wherever it resides (e.g. because a
    /// controller bypassed the write that would have updated it to the disk
    /// subsystem), returning its previous state if it was cached.
    pub fn invalidate_block(&mut self, block: u64) -> Option<SlotState> {
        let level = self.resident_level(block)?;
        let state = self.maps[level].invalidate(block);
        if state.is_some() {
            self.stats[level].invalidations += 1;
        }
        state
    }

    /// Pre-populates every level to capacity with clean blocks (level 0
    /// holds blocks `0..cap0`, level 1 the next `cap1`, and so on) without
    /// touching the statistics — the tiered analogue of the flat module's
    /// warm-up skip.
    pub fn prewarm_to_capacity(&mut self) {
        let mut next = 0u64;
        for map in &mut self.maps {
            let cap = map.capacity_blocks() as u64;
            for block in next..next + cap {
                let _ = map.insert(block, SlotState::Clean);
            }
            next += cap;
        }
    }

    /// Pre-populates the *hot tier* with clean copies of the given blocks
    /// without touching the statistics (the flat module's `prewarm`).
    pub fn prewarm<I: IntoIterator<Item = u64>>(&mut self, blocks: I) {
        for block in blocks {
            let _ = self.maps[0].insert(block, SlotState::Clean);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PlacementPolicy, TierLevelSpec};
    use lbica_cache::{CacheConfig, ReplacementKind};
    use lbica_storage::device::SsdConfig;
    use lbica_storage::request::RequestClass;

    fn spec(num_sets: usize, associativity: usize) -> TierLevelSpec {
        TierLevelSpec::new(
            CacheConfig {
                num_sets,
                associativity,
                replacement: ReplacementKind::Lru,
                initial_policy: WritePolicy::WriteBack,
            },
            SsdConfig::samsung_863a(),
            1,
        )
    }

    fn two_level() -> TieredCacheModule {
        TieredCacheModule::new(TierTopology::two_level(spec(2, 2), spec(4, 2)))
    }

    fn read(id: u64, sector: u64) -> IoRequest {
        IoRequest::new(id, RequestKind::Read, RequestOrigin::Application, sector, 8)
    }

    fn write(id: u64, sector: u64) -> IoRequest {
        IoRequest::new(id, RequestKind::Write, RequestOrigin::Application, sector, 8)
    }

    #[test]
    fn miss_fills_the_hot_tier_and_hits_there() {
        let mut cache = two_level();
        let miss = cache.access(&read(1, 0));
        assert!(!miss.read_hit());
        assert_eq!(miss.disk_ops().len(), 1);
        assert_eq!(miss.level_ops(0).len(), 1);
        assert_eq!(miss.level_ops(0)[0].class(), RequestClass::Promote);
        let hit = cache.access(&read(2, 0));
        assert!(hit.read_hit());
        assert_eq!(hit.hit_level(), Some(0));
        assert!(hit.served_by_cache());
        assert_eq!(cache.stats(0).read_hits, 1);
        assert_eq!(cache.stats(0).read_misses, 1);
    }

    #[test]
    fn hot_tier_eviction_demotes_into_the_warm_tier() {
        let mut cache = two_level();
        // Hot tier: 2 sets x 2 ways. Blocks 0 and 2 fill set 0; block 4
        // maps to the same set and forces a dirty eviction of block 0.
        cache.access(&write(1, 0));
        cache.access(&write(2, 2 * 8));
        let out = cache.access(&write(3, 4 * 8));
        let evict_ops: Vec<_> =
            out.ops().iter().filter(|op| op.class() == RequestClass::Evict).collect();
        assert_eq!(evict_ops.len(), 2, "demotion is a level-0 read + level-1 write");
        assert_eq!(evict_ops[0].target, TierTarget::Level(0));
        assert_eq!(evict_ops[1].target, TierTarget::Level(1));
        assert_eq!(cache.movement(0).demotions_out, 1);
        assert_eq!(cache.movement(1).demotions_in, 1);
        assert_eq!(cache.cached_blocks(1), 1);
        assert_eq!(cache.dirty_blocks(1), 1, "the demoted block stays dirty");
    }

    #[test]
    fn warm_tier_hit_promotes_back_to_the_hot_tier() {
        let mut cache = two_level();
        for i in 0..4u64 {
            cache.access(&write(i, i * 2 * 8)); // fill set 0, demoting block 0
        }
        assert_eq!(cache.resident_level(0), Some(1));
        let hit = cache.access(&read(10, 0));
        assert!(hit.read_hit());
        assert_eq!(hit.hit_level(), Some(1));
        // The hit is served at level 1, then the block moves up (with a
        // promote write at level 0 and a demotion of level 0's victim).
        assert_eq!(hit.level_ops(1)[0].kind, RequestKind::Read);
        assert!(hit.level_ops(0).iter().any(|op| op.class() == RequestClass::Promote));
        assert_eq!(cache.resident_level(0), Some(0));
        assert_eq!(cache.movement(0).promotions_in, 1);
        assert_eq!(cache.dirty_blocks(0) + cache.dirty_blocks(1), 4, "dirty state survives moves");
    }

    #[test]
    fn promotion_never_serves_hits_in_place() {
        let topo =
            TierTopology::two_level(spec(2, 2), spec(4, 2)).with_promotion(PromotionPolicy::Never);
        let mut cache = TieredCacheModule::new(topo);
        for i in 0..4u64 {
            cache.access(&write(i, i * 2 * 8));
        }
        assert_eq!(cache.resident_level(0), Some(1));
        let hit = cache.access(&read(10, 0));
        assert!(hit.read_hit());
        assert_eq!(cache.resident_level(0), Some(1), "block stays in the warm tier");
        assert_eq!(cache.movement(0).promotions_in, 0);
    }

    #[test]
    fn cold_placement_installs_fills_in_the_last_level() {
        let topo = TierTopology::two_level(spec(2, 2), spec(4, 2))
            .with_placement(PlacementPolicy::ColdTier);
        let mut cache = TieredCacheModule::new(topo);
        let miss = cache.access(&read(1, 0));
        assert_eq!(miss.level_ops(1).len(), 1, "the fill lands in the cold tier");
        assert_eq!(cache.resident_level(0), Some(1));
        assert_eq!(cache.stats(1).promotes, 1);
    }

    #[test]
    fn last_level_dirty_eviction_writes_back_to_disk() {
        let mut cache = TieredCacheModule::new(TierTopology::single(spec(1, 2)));
        cache.access(&write(1, 0));
        cache.access(&write(2, 8));
        let out = cache.access(&write(3, 16));
        let evict_targets: Vec<TierTarget> = out
            .ops()
            .iter()
            .filter(|op| op.class() == RequestClass::Evict)
            .map(|op| op.target)
            .collect();
        assert_eq!(evict_targets, vec![TierTarget::Level(0), TierTarget::Disk]);
        assert_eq!(cache.stats(0).dirty_evictions, 1);
    }

    #[test]
    fn dirty_cascade_drops_clean_victims() {
        let topo = TierTopology::two_level(spec(1, 1), spec(2, 2))
            .with_promotion(PromotionPolicy::Never)
            .with_demotion(DemotionPolicy::DirtyCascade);
        let mut cache = TieredCacheModule::new(topo);
        cache.access(&read(1, 0)); // clean fill of block 0
        let out = cache.access(&read(2, 8)); // evicts clean block 0
        assert!(out.ops().iter().all(|op| op.class() != RequestClass::Evict));
        assert_eq!(cache.stats(0).clean_evictions, 1);
        assert_eq!(cache.movement(1).demotions_in, 0);
        // A dirty victim does cascade.
        cache.access(&write(3, 16));
        let out = cache.access(&write(4, 24));
        assert!(out.ops().iter().any(|op| op.class() == RequestClass::Evict));
        assert_eq!(cache.movement(1).demotions_in, 1);
    }

    #[test]
    fn absorb_spill_rehomes_the_block_dirty() {
        let mut cache = two_level();
        cache.access(&write(1, 0));
        assert_eq!(cache.resident_level(0), Some(0));
        let mut outcome = TieredOutcome::new();
        cache.absorb_spill(0, 1, &mut outcome);
        assert_eq!(cache.resident_level(0), Some(1));
        assert_eq!(cache.dirty_blocks(1), 1);
        assert_eq!(cache.movement(1).spills_in, 1);
    }

    #[test]
    fn absorb_spill_never_duplicates_a_block_resident_below_the_target() {
        // Three levels; block 0 is demoted all the way to level 2, then a
        // stale queued write for it is spilled with target level 1. The
        // level-2 copy must move, not be shadowed: exactly one resident
        // level afterwards.
        let topo = TierTopology::three_level(spec(1, 1), spec(1, 1), spec(4, 2))
            .with_promotion(PromotionPolicy::Never);
        let mut cache = TieredCacheModule::new(topo);
        cache.access(&write(1, 0)); // block 0 dirty at level 0
        cache.access(&write(2, 8)); // demotes 0 -> level 1
        cache.access(&write(3, 16)); // demotes 0 -> level 2, 1 -> level 1
        assert_eq!(cache.resident_level(0), Some(2));

        let mut outcome = TieredOutcome::new();
        cache.absorb_spill(0, 1, &mut outcome);
        assert_eq!(cache.resident_level(0), Some(1), "the block re-homes at the target");
        let copies = (0..3).filter(|&l| cache.cached_blocks(l) > 0).count();
        assert_eq!(
            cache.cached_blocks(0) + cache.cached_blocks(1) + cache.cached_blocks(2),
            3,
            "three distinct blocks, one copy each (levels occupied: {copies})"
        );
        // Invalidating once fully removes it — no stale shadow copy left.
        assert!(cache.invalidate_block(0).is_some());
        assert_eq!(cache.resident_level(0), None);
    }

    #[test]
    fn ro_policy_bypasses_and_invalidates_across_levels() {
        let mut cache = two_level();
        for i in 0..4u64 {
            cache.access(&write(i, i * 2 * 8)); // block 0 ends up at level 1
        }
        assert_eq!(cache.resident_level(0), Some(1));
        cache.set_policy(WritePolicy::ReadOnly);
        let out = cache.access(&write(10, 0));
        assert_eq!(out.disk_ops().len(), 1);
        assert!(out.level_ops(0).is_empty() && out.level_ops(1).is_empty());
        assert_eq!(cache.resident_level(0), None);
        assert_eq!(cache.stats(1).invalidations, 1);
        assert_eq!(cache.stats(0).write_bypasses, 1);
    }

    #[test]
    fn prewarm_to_capacity_fills_every_level() {
        let mut cache = two_level();
        cache.prewarm_to_capacity();
        assert_eq!(cache.cached_blocks(0), 4);
        assert_eq!(cache.cached_blocks(1), 8);
        assert_eq!(cache.dirty_blocks(0) + cache.dirty_blocks(1), 0);
        assert_eq!(cache.stats(0).reads() + cache.stats(0).writes(), 0);
        // Prewarmed blocks hit: block 5 lives in the warm tier.
        assert!(cache.access(&read(1, 5 * 8)).read_hit());
    }

    #[test]
    fn invalidate_block_finds_any_level() {
        let mut cache = two_level();
        cache.prewarm_to_capacity();
        assert_eq!(cache.invalidate_block(6), Some(SlotState::Clean));
        assert_eq!(cache.invalidate_block(6), None);
        assert_eq!(cache.stats(1).invalidations, 1);
    }

    #[test]
    fn capacity_sums_levels() {
        assert_eq!(two_level().capacity_blocks(), 4 + 8);
        assert_eq!(two_level().levels(), 2);
    }
}
