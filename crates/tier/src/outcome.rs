//! The result of pushing an application request through a tiered cache.

use serde::{Deserialize, Serialize};

use lbica_cache::{CacheOutcome, DerivedOp, TargetDevice};
use lbica_storage::block::BlockRange;
use lbica_storage::request::{RequestClass, RequestKind, RequestOrigin};

/// Which station of the tiered hierarchy an operation is destined for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TierTarget {
    /// Cache level `0..n` (0 = hot tier).
    Level(usize),
    /// The backing disk subsystem.
    Disk,
}

impl TierTarget {
    /// The cache-level index, or `None` for the disk subsystem.
    pub const fn level(self) -> Option<usize> {
        match self {
            TierTarget::Level(l) => Some(l),
            TierTarget::Disk => None,
        }
    }
}

/// One device-level operation derived from an application request by the
/// tiered cache — the N-level generalization of [`DerivedOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieredOp {
    /// Station the operation must be queued at.
    pub target: TierTarget,
    /// Transfer direction at that station.
    pub kind: RequestKind,
    /// Origin (application / promote / evict / flush) — determines the
    /// R/W/P/E class seen by the monitors.
    pub origin: RequestOrigin,
    /// Sector range of the operation.
    pub range: BlockRange,
}

impl TieredOp {
    /// Creates a tiered operation.
    pub fn new(
        target: TierTarget,
        kind: RequestKind,
        origin: RequestOrigin,
        range: BlockRange,
    ) -> Self {
        TieredOp { target, kind, origin, range }
    }

    /// The paper's R/W/P/E class of the operation.
    pub fn class(&self) -> RequestClass {
        RequestClass::classify(self.kind, self.origin)
    }
}

/// Everything the tiered cache decided for one application request.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TieredOutcome {
    ops: Vec<TieredOp>,
    read_hit: bool,
    write_hit: bool,
    served_by_cache: bool,
    hit_level: Option<usize>,
    back_invalidations: u64,
}

impl TieredOutcome {
    /// Creates an empty outcome.
    pub fn new() -> Self {
        TieredOutcome::default()
    }

    /// Resets the outcome to its empty state, keeping the op buffer's
    /// allocation so a simulator loop can reuse one outcome per access.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.read_hit = false;
        self.write_hit = false;
        self.served_by_cache = false;
        self.hit_level = None;
        self.back_invalidations = 0;
    }

    /// Appends a derived operation.
    pub fn push(&mut self, op: TieredOp) {
        self.ops.push(op);
    }

    pub(crate) fn set_read_hit(&mut self, hit: bool) {
        self.read_hit = hit;
    }

    pub(crate) fn set_write_hit(&mut self, hit: bool) {
        self.write_hit = hit;
    }

    pub(crate) fn set_served_by_cache(&mut self, by_cache: bool) {
        self.served_by_cache = by_cache;
    }

    pub(crate) fn note_hit_level(&mut self, level: usize) {
        self.hit_level = Some(match self.hit_level {
            Some(existing) => existing.max(level),
            None => level,
        });
    }

    pub(crate) fn note_back_invalidation(&mut self) {
        self.back_invalidations += 1;
    }

    /// Whether the read was served entirely from the hierarchy.
    pub fn read_hit(&self) -> bool {
        self.read_hit
    }

    /// Whether the write was absorbed entirely by the hierarchy.
    pub fn write_hit(&self) -> bool {
        self.write_hit
    }

    /// Whether the application-visible latency is determined by a cache
    /// level (as opposed to the disk subsystem).
    pub fn served_by_cache(&self) -> bool {
        self.served_by_cache
    }

    /// The deepest (coldest) level any block of the request hit at, if any
    /// block hit at all.
    pub fn hit_level(&self) -> Option<usize> {
        self.hit_level
    }

    /// Upper-level copies dropped by inclusive back-invalidation while the
    /// request's evictions were handled (always 0 in exclusive mode).
    pub fn back_invalidations(&self) -> u64 {
        self.back_invalidations
    }

    /// All derived operations, in issue order.
    pub fn ops(&self) -> &[TieredOp] {
        &self.ops
    }

    /// The operations destined for cache level `level`.
    pub fn level_ops(&self, level: usize) -> Vec<&TieredOp> {
        self.ops.iter().filter(|op| op.target == TierTarget::Level(level)).collect()
    }

    /// The operations destined for the disk subsystem.
    pub fn disk_ops(&self) -> Vec<&TieredOp> {
        self.ops.iter().filter(|op| op.target == TierTarget::Disk).collect()
    }

    /// Renders this outcome as a flat [`CacheOutcome`], mapping every cache
    /// level to [`TargetDevice::Ssd`] and the disk to [`TargetDevice::Hdd`].
    /// For a single-level hierarchy this is the exact flat-cache outcome —
    /// the equivalence the tier test-suite pins.
    pub fn as_flat(&self) -> CacheOutcome {
        let mut flat = CacheOutcome::new();
        for op in &self.ops {
            let target = match op.target {
                TierTarget::Level(_) => TargetDevice::Ssd,
                TierTarget::Disk => TargetDevice::Hdd,
            };
            flat.push(DerivedOp::new(target, op.kind, op.origin, op.range));
        }
        flat.set_read_hit(self.read_hit);
        flat.set_write_hit(self.write_hit);
        flat.set_served_by_cache(self.served_by_cache);
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbica_storage::block::Lba;

    fn range() -> BlockRange {
        BlockRange::new(Lba::new(0), 8)
    }

    #[test]
    fn tier_target_exposes_level() {
        assert_eq!(TierTarget::Level(2).level(), Some(2));
        assert_eq!(TierTarget::Disk.level(), None);
    }

    #[test]
    fn ops_partition_by_target() {
        let mut o = TieredOutcome::new();
        o.push(TieredOp::new(
            TierTarget::Level(0),
            RequestKind::Read,
            RequestOrigin::Application,
            range(),
        ));
        o.push(TieredOp::new(
            TierTarget::Level(1),
            RequestKind::Write,
            RequestOrigin::Evict,
            range(),
        ));
        o.push(TieredOp::new(TierTarget::Disk, RequestKind::Write, RequestOrigin::Evict, range()));
        assert_eq!(o.level_ops(0).len(), 1);
        assert_eq!(o.level_ops(1).len(), 1);
        assert_eq!(o.disk_ops().len(), 1);
        assert_eq!(o.ops()[1].class(), RequestClass::Evict);
    }

    #[test]
    fn as_flat_maps_levels_to_ssd() {
        let mut o = TieredOutcome::new();
        o.push(TieredOp::new(
            TierTarget::Level(1),
            RequestKind::Read,
            RequestOrigin::Application,
            range(),
        ));
        o.push(TieredOp::new(
            TierTarget::Disk,
            RequestKind::Write,
            RequestOrigin::Application,
            range(),
        ));
        o.set_read_hit(true);
        let flat = o.as_flat();
        assert_eq!(flat.ssd_ops().len(), 1);
        assert_eq!(flat.hdd_ops().len(), 1);
        assert!(flat.read_hit());
    }

    #[test]
    fn hit_level_records_the_deepest_hit() {
        let mut o = TieredOutcome::new();
        assert_eq!(o.hit_level(), None);
        o.note_hit_level(0);
        o.note_hit_level(2);
        o.note_hit_level(1);
        assert_eq!(o.hit_level(), Some(2));
        o.clear();
        assert_eq!(o.hit_level(), None);
    }
}
