//! Configuration of a tiered cache hierarchy.
//!
//! A [`TierTopology`] describes up to [`MAX_TIERS`] cache levels, ordered
//! hot (level 0) to cold, each with its own set-associative geometry,
//! replacement policy, device service-time model and station parallelism,
//! plus the three inter-tier data-movement policies (placement, promotion,
//! demotion). The type is `Copy` and `const`-constructible so simulator
//! configurations that embed it stay cheap to pass around the scenario
//! sweep machinery, exactly like the flat [`CacheConfig`].

use serde::{Deserialize, Serialize};

use lbica_cache::{CacheConfig, WritePolicy};
use lbica_storage::device::SsdConfig;

/// Upper bound on the number of cache levels a topology can describe. Four
/// covers every hierarchy the paper's generalization contemplates (NVMe →
/// SATA → QLC → disk is already a stretch); the fixed bound is what keeps
/// [`TierTopology`] `Copy`.
pub const MAX_TIERS: usize = 4;

/// Where a read-miss fill is installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Install fills in the hot tier (level 0) — the classic inclusive-of-
    /// nothing, exclusive hierarchy default.
    #[default]
    HotTier,
    /// Install fills in the coldest tier; blocks earn their way up via
    /// promotion-on-hit. Shields the hot tier from scan pollution.
    ColdTier,
}

/// What happens when a request hits below the hot tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PromotionPolicy {
    /// Move the block to the hot tier on every hit (demoting a victim down
    /// the chain if the hot tier is full).
    #[default]
    OnHit,
    /// Serve the hit in place; blocks never move up.
    Never,
}

/// Whether a block may be resident at several levels at once.
///
/// The hierarchy's fourth data-movement policy, orthogonal to placement /
/// promotion / demotion: it decides what a *promotion* leaves behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum InclusionPolicy {
    /// A block resides in exactly one level: promotion *moves* it up,
    /// invalidating the lower copy. The default, and the only mode PR 4
    /// shipped.
    #[default]
    Exclusive,
    /// Promotion *copies* the block up, leaving the lower-level line
    /// resident, so a hot-tier eviction of a recently promoted block is
    /// free (the warm copy still serves). The cost is the inclusive
    /// hierarchy's classic back-invalidation: when the lower-level copy is
    /// evicted, any copies above it are invalidated so no level ever caches
    /// a block its backing tier has dropped. Fills still land only at the
    /// placement level (non-strict inclusion), so lower levels fill via
    /// demotions and promoted leftovers rather than being mirrored
    /// eagerly.
    Inclusive,
}

/// What happens to a block evicted from a tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DemotionPolicy {
    /// Victims (clean and dirty) cascade into the next tier down; victims
    /// of the last tier behave like the flat cache (dirty → write back to
    /// the disk subsystem, clean → silently dropped).
    #[default]
    Cascade,
    /// Only dirty victims cascade; clean victims are dropped immediately.
    DirtyCascade,
    /// No inter-tier demotion: every tier evicts like the flat cache.
    None,
}

/// One level of the hierarchy: cache geometry + device + service slots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierLevelSpec {
    /// Set-associative geometry and replacement policy of the level.
    pub cache: CacheConfig,
    /// Service-time model of the level's SSD.
    pub device: SsdConfig,
    /// Number of requests the level's device services concurrently.
    pub parallelism: usize,
}

impl TierLevelSpec {
    /// Creates a level description.
    pub const fn new(cache: CacheConfig, device: SsdConfig, parallelism: usize) -> Self {
        TierLevelSpec { cache, device, parallelism }
    }

    /// The level's capacity in cache blocks.
    pub const fn capacity_blocks(&self) -> usize {
        self.cache.capacity_blocks()
    }

    /// Returns a copy with the level's initial write policy replaced
    /// (builder style) — the per-tier write-policy scenario axis. The
    /// policy governs the blocks this level owns; see
    /// [`crate::TieredCacheModule::level_policy`].
    pub const fn with_write_policy(mut self, policy: WritePolicy) -> Self {
        self.cache.initial_policy = policy;
        self
    }

    /// The write policy the level starts a run with.
    pub const fn write_policy(&self) -> WritePolicy {
        self.cache.initial_policy
    }
}

/// An ordered (hot → cold) stack of cache levels plus the inter-tier
/// data-movement policies.
///
/// # Example
///
/// Build a two-level hierarchy, make the warm tier write-through and the
/// stack inclusive, and inspect the result:
///
/// ```
/// use lbica_cache::{CacheConfig, ReplacementKind, WritePolicy};
/// use lbica_storage::device::SsdConfig;
/// use lbica_tier::{InclusionPolicy, TierLevelSpec, TierTopology};
///
/// let geometry = CacheConfig {
///     num_sets: 64,
///     associativity: 4,
///     replacement: ReplacementKind::Lru,
///     initial_policy: WritePolicy::WriteBack,
/// };
/// let hot = TierLevelSpec::new(geometry, SsdConfig::samsung_863a(), 1);
/// let warm = TierLevelSpec::new(geometry, SsdConfig::qlc_capacity(), 2)
///     .with_write_policy(WritePolicy::WriteThrough);
///
/// let topology = TierTopology::two_level(hot, warm)
///     .with_inclusion(InclusionPolicy::Inclusive);
///
/// assert_eq!(topology.len(), 2);
/// assert_eq!(topology.level(0).write_policy(), WritePolicy::WriteBack);
/// assert_eq!(topology.level(1).write_policy(), WritePolicy::WriteThrough);
/// assert_eq!(topology.inclusion, InclusionPolicy::Inclusive);
/// assert_eq!(topology.capacity_blocks(), 2 * 64 * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierTopology {
    levels: [Option<TierLevelSpec>; MAX_TIERS],
    /// Where read-miss fills land.
    pub placement: PlacementPolicy,
    /// Whether lower-tier hits move the block up.
    pub promotion: PromotionPolicy,
    /// What happens to evicted blocks.
    pub demotion: DemotionPolicy,
    /// Whether promotion moves or copies blocks (exclusive vs inclusive
    /// hierarchy).
    pub inclusion: InclusionPolicy,
}

impl TierTopology {
    /// A single-level topology — semantically identical to the flat cache.
    pub const fn single(level: TierLevelSpec) -> Self {
        TierTopology {
            levels: [Some(level), None, None, None],
            placement: PlacementPolicy::HotTier,
            promotion: PromotionPolicy::OnHit,
            demotion: DemotionPolicy::Cascade,
            inclusion: InclusionPolicy::Exclusive,
        }
    }

    /// A two-level topology (hot over warm) with the default policies.
    pub const fn two_level(hot: TierLevelSpec, warm: TierLevelSpec) -> Self {
        TierTopology {
            levels: [Some(hot), Some(warm), None, None],
            placement: PlacementPolicy::HotTier,
            promotion: PromotionPolicy::OnHit,
            demotion: DemotionPolicy::Cascade,
            inclusion: InclusionPolicy::Exclusive,
        }
    }

    /// A three-level topology with the default policies.
    pub const fn three_level(hot: TierLevelSpec, warm: TierLevelSpec, cold: TierLevelSpec) -> Self {
        TierTopology {
            levels: [Some(hot), Some(warm), Some(cold), None],
            placement: PlacementPolicy::HotTier,
            promotion: PromotionPolicy::OnHit,
            demotion: DemotionPolicy::Cascade,
            inclusion: InclusionPolicy::Exclusive,
        }
    }

    /// Returns a copy with `level` appended (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the topology already holds [`MAX_TIERS`] levels.
    pub const fn push_level(mut self, level: TierLevelSpec) -> Self {
        let mut i = 0;
        while i < MAX_TIERS {
            if self.levels[i].is_none() {
                self.levels[i] = Some(level);
                return self;
            }
            i += 1;
        }
        panic!("a tier topology holds at most MAX_TIERS levels");
    }

    /// Returns a copy with the placement policy replaced (builder style).
    pub const fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Returns a copy with the promotion policy replaced (builder style).
    pub const fn with_promotion(mut self, promotion: PromotionPolicy) -> Self {
        self.promotion = promotion;
        self
    }

    /// Returns a copy with the demotion policy replaced (builder style).
    pub const fn with_demotion(mut self, demotion: DemotionPolicy) -> Self {
        self.demotion = demotion;
        self
    }

    /// Returns a copy with the inclusion policy replaced (builder style).
    pub const fn with_inclusion(mut self, inclusion: InclusionPolicy) -> Self {
        self.inclusion = inclusion;
        self
    }

    /// Returns a copy with level `index`'s initial write policy replaced
    /// (builder style) — the per-tier write-policy scenario axis.
    ///
    /// # Panics
    ///
    /// Panics if `index` is at or past [`TierTopology::len`].
    pub const fn with_level_policy(mut self, index: usize, policy: WritePolicy) -> Self {
        match self.levels[index] {
            Some(level) => self.levels[index] = Some(level.with_write_policy(policy)),
            None => panic!("tier level index out of bounds"),
        }
        self
    }

    /// Number of levels in the topology.
    pub const fn len(&self) -> usize {
        let mut n = 0;
        while n < MAX_TIERS {
            if self.levels[n].is_none() {
                return n;
            }
            n += 1;
        }
        MAX_TIERS
    }

    /// Whether the topology describes no levels at all.
    pub const fn is_empty(&self) -> bool {
        self.levels[0].is_none()
    }

    /// The specification of level `index` (0 = hot tier).
    ///
    /// # Panics
    ///
    /// Panics if `index` is at or past [`TierTopology::len`].
    pub fn level(&self, index: usize) -> &TierLevelSpec {
        self.levels[index].as_ref().expect("tier level index in bounds")
    }

    /// Iterates the levels, hot tier first.
    pub fn levels(&self) -> impl Iterator<Item = &TierLevelSpec> {
        self.levels.iter().filter_map(|l| l.as_ref())
    }

    /// Total capacity across every level, in cache blocks.
    pub fn capacity_blocks(&self) -> usize {
        self.levels().map(|l| l.capacity_blocks()).sum()
    }

    /// The index fills are installed at under the current placement policy.
    pub const fn placement_level(&self) -> usize {
        match self.placement {
            PlacementPolicy::HotTier => 0,
            PlacementPolicy::ColdTier => self.len() - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbica_cache::{ReplacementKind, WritePolicy};

    fn level(num_sets: usize) -> TierLevelSpec {
        TierLevelSpec::new(
            CacheConfig {
                num_sets,
                associativity: 2,
                replacement: ReplacementKind::Lru,
                initial_policy: WritePolicy::WriteBack,
            },
            SsdConfig::samsung_863a(),
            1,
        )
    }

    #[test]
    fn constructors_count_levels() {
        assert_eq!(TierTopology::single(level(8)).len(), 1);
        assert_eq!(TierTopology::two_level(level(8), level(16)).len(), 2);
        assert_eq!(TierTopology::three_level(level(8), level(16), level(32)).len(), 3);
        assert!(!TierTopology::single(level(8)).is_empty());
    }

    #[test]
    fn push_level_appends_in_order() {
        let t = TierTopology::single(level(8)).push_level(level(16)).push_level(level(32));
        assert_eq!(t.len(), 3);
        assert_eq!(t.level(0).cache.num_sets, 8);
        assert_eq!(t.level(2).cache.num_sets, 32);
        assert_eq!(t.capacity_blocks(), (8 + 16 + 32) * 2);
    }

    #[test]
    #[should_panic(expected = "MAX_TIERS")]
    fn push_past_max_tiers_panics() {
        let _ = TierTopology::single(level(8))
            .push_level(level(8))
            .push_level(level(8))
            .push_level(level(8))
            .push_level(level(8));
    }

    #[test]
    fn placement_level_follows_policy() {
        let t = TierTopology::two_level(level(8), level(16));
        assert_eq!(t.placement_level(), 0);
        assert_eq!(t.with_placement(PlacementPolicy::ColdTier).placement_level(), 1);
    }

    #[test]
    fn policy_builders_replace_fields() {
        let t = TierTopology::two_level(level(8), level(16))
            .with_promotion(PromotionPolicy::Never)
            .with_demotion(DemotionPolicy::DirtyCascade);
        assert_eq!(t.promotion, PromotionPolicy::Never);
        assert_eq!(t.demotion, DemotionPolicy::DirtyCascade);
        assert_eq!(t.placement, PlacementPolicy::HotTier);
    }

    #[test]
    fn levels_iterator_visits_hot_first() {
        let t = TierTopology::two_level(level(8), level(16));
        let sets: Vec<usize> = t.levels().map(|l| l.cache.num_sets).collect();
        assert_eq!(sets, vec![8, 16]);
    }

    #[test]
    fn inclusion_defaults_to_exclusive_and_is_replaceable() {
        let t = TierTopology::two_level(level(8), level(16));
        assert_eq!(t.inclusion, InclusionPolicy::Exclusive);
        assert_eq!(
            t.with_inclusion(InclusionPolicy::Inclusive).inclusion,
            InclusionPolicy::Inclusive
        );
        assert_eq!(InclusionPolicy::default(), InclusionPolicy::Exclusive);
    }

    #[test]
    fn per_level_write_policies_ride_on_the_level_specs() {
        let t = TierTopology::two_level(level(8), level(16))
            .with_level_policy(1, WritePolicy::WriteThrough);
        assert_eq!(t.level(0).write_policy(), WritePolicy::WriteBack);
        assert_eq!(t.level(1).write_policy(), WritePolicy::WriteThrough);
        let spec = level(8).with_write_policy(WritePolicy::WriteOnly);
        assert_eq!(spec.write_policy(), WritePolicy::WriteOnly);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn with_level_policy_rejects_missing_levels() {
        let _ = TierTopology::single(level(8)).with_level_policy(1, WritePolicy::ReadOnly);
    }
}
