//! A multi-SSD tiered cache hierarchy for the LBICA reproduction.
//!
//! The paper load-balances a *single* SSD I/O cache in front of a disk
//! subsystem. This crate generalizes that cache into an N-level hierarchy:
//!
//! * [`TierTopology`] — up to [`MAX_TIERS`] cache levels (hot → cold), each
//!   with its own set-associative geometry ([`lbica_cache::CacheConfig`]),
//!   device service-time model ([`lbica_storage::device::SsdConfig`]),
//!   station parallelism and initial [`lbica_cache::WritePolicy`], plus
//!   four inter-tier data-movement policies: [`PlacementPolicy`] (where
//!   read-miss fills land), [`PromotionPolicy`] (whether lower-level hits
//!   move the block up), [`DemotionPolicy`] (whether evicted victims
//!   cascade down instead of dropping to disk) and [`InclusionPolicy`]
//!   (whether promotion moves or copies, with back-invalidation keeping
//!   inclusive stacks coherent).
//! * [`TieredCacheModule`] — the datapath itself: feed it an application
//!   [`lbica_storage::request::IoRequest`] and it returns a
//!   [`TieredOutcome`] listing the derived per-level operations under the
//!   per-level write policies (a write is judged by the policy of the
//!   level that owns the block). A single-level instance is bit-identical
//!   to the flat [`lbica_cache::CacheModule`] — same ops in the same
//!   order, same statistics — so the flat simulator path is a strict
//!   special case.
//! * [`TierMovement`] — promotion / demotion / spill / read-spill /
//!   back-invalidation accounting per level, surfaced by the simulator as
//!   per-tier report statistics.
//!
//! The simulator (`lbica-sim`) wires this module into an event-driven
//! `TieredStorageSystem` with one device station per level, and the
//! controller layer (`lbica-core`) extends the paper's
//! balancer into a tier-aware *spill chain*: reclassified requests spill to
//! the next level down before bypassing all the way to the disk subsystem.
//!
//! # Example
//!
//! ```
//! use lbica_cache::{CacheConfig, ReplacementKind, WritePolicy};
//! use lbica_storage::device::SsdConfig;
//! use lbica_storage::request::{IoRequest, RequestKind, RequestOrigin};
//! use lbica_tier::{TierLevelSpec, TierTopology, TieredCacheModule};
//!
//! let geometry = CacheConfig {
//!     num_sets: 4,
//!     associativity: 2,
//!     replacement: ReplacementKind::Lru,
//!     initial_policy: WritePolicy::WriteBack,
//! };
//! let hot = TierLevelSpec::new(geometry, SsdConfig::samsung_863a(), 1);
//! let warm = TierLevelSpec::new(geometry, SsdConfig::midrange_sata(), 2);
//! let mut cache = TieredCacheModule::new(TierTopology::two_level(hot, warm));
//!
//! let miss = cache.access(&IoRequest::new(
//!     1, RequestKind::Read, RequestOrigin::Application, 0, 8,
//! ));
//! assert!(!miss.read_hit());
//! // The miss is served by the disk and filled into the hot tier.
//! assert_eq!(miss.disk_ops().len(), 1);
//! assert_eq!(miss.level_ops(0).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod module;
pub mod outcome;

pub use config::{
    DemotionPolicy, InclusionPolicy, PlacementPolicy, PromotionPolicy, TierLevelSpec, TierTopology,
    MAX_TIERS,
};
pub use module::{TierMovement, TieredCacheModule};
pub use outcome::{TierTarget, TieredOp, TieredOutcome};
