//! The cache-controller interface.
//!
//! A controller is consulted once per monitoring interval with everything
//! the paper's LBICA daemon reads from `iostat` and `blktrace`
//! ([`ControllerContext`]) and answers with a [`ControllerDecision`]: which
//! write policy the cache should use for the next interval and which queued
//! requests, if any, should be bypassed to the disk subsystem.
//!
//! The LBICA and SIB controllers live in the `lbica-core` crate; this module
//! only defines the interface plus [`StaticPolicyController`], the
//! no-load-balancing baseline.

use lbica_cache::WritePolicy;
use lbica_storage::queue::{DeviceQueue, QueueSnapshot};
use lbica_storage::request::RequestId;
use lbica_storage::time::{SimDuration, SimTime};

/// One cache level's observable load at an interval boundary — the tier
/// vector the spill-chain balancer decides over. Flat (single-SSD) runs
/// pass an empty slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierLoad {
    /// Outstanding requests at the level's station (queued + in service).
    pub queue_depth: usize,
    /// Blended average service latency of the level's device.
    pub avg_latency: SimDuration,
}

impl TierLoad {
    /// The level's estimated queue time (Eq. 1 generalized per tier).
    pub fn queue_time(&self) -> SimDuration {
        self.avg_latency.saturating_mul(self.queue_depth as u64)
    }
}

/// Everything a controller can observe at an interval boundary.
#[derive(Debug)]
pub struct ControllerContext<'a> {
    /// Index of the interval that just ended.
    pub interval_index: u32,
    /// Simulated time at the boundary.
    pub now: SimTime,
    /// Current depth of the SSD cache queue (`ssdQSize`).
    pub cache_queue_depth: usize,
    /// Current depth of the disk-subsystem queue (`hddQSize`).
    pub disk_queue_depth: usize,
    /// Average service latency of the cache device (`ssdLatency`).
    pub cache_avg_latency: SimDuration,
    /// Average service latency of the disk subsystem (`hddLatency`).
    pub disk_avg_latency: SimDuration,
    /// Class mix of the requests that passed through the cache queue during
    /// the interval (the `blktrace` channel).
    pub cache_queue_mix: QueueSnapshot,
    /// The policy that was in force during the interval.
    pub current_policy: WritePolicy,
    /// Read-only view of the cache queue, for per-request wait estimation
    /// (used by SIB).
    pub cache_queue: &'a DeviceQueue,
    /// Per-cache-level loads, hot tier first — empty for flat runs. When
    /// two or more levels are present, tier-aware controllers may answer
    /// with [`BypassDirective::SpillTailWrites`] instead of bypassing
    /// straight to the disk subsystem.
    pub tier_loads: &'a [TierLoad],
    /// The write policies currently in force per cache level, hot tier
    /// first — empty for flat runs. Tier-aware controllers answering with
    /// [`ControllerDecision::tier_policies`] should derive lower-level
    /// entries from this vector so explicitly configured per-tier policies
    /// survive their overrides.
    pub tier_policies: &'a [WritePolicy],
}

/// Which queued requests the controller wants redirected to the disk
/// subsystem before the next interval starts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BypassDirective {
    /// Leave the cache queue untouched.
    #[default]
    None,
    /// Remove up to `max_requests` application writes from the tail of the
    /// cache queue and serve them from the disk subsystem (LBICA's Group 3
    /// action).
    TailWrites {
        /// Upper bound on how many requests to move.
        max_requests: usize,
    },
    /// Remove the specific requests (selected by the controller, e.g. SIB's
    /// highest-estimated-wait victims) and serve the application ones from
    /// the disk subsystem.
    Requests(Vec<RequestId>),
    /// Remove up to `max_requests` application writes from the tail of the
    /// *hot tier's* queue and spill them to cache level `target_level`
    /// instead of the disk — the tier-aware spill-chain action. On a flat
    /// system this degrades gracefully to [`BypassDirective::TailWrites`].
    SpillTailWrites {
        /// Upper bound on how many requests to move.
        max_requests: usize,
        /// The cache level the spilled requests are re-homed at (≥ 1).
        target_level: usize,
    },
    /// Remove up to `max_requests` application *reads* from the tail of
    /// the hot tier's queue and serve them from cache level `target_level`
    /// — the tiered analogue of the paper's Group-2 (read-burst) action,
    /// which has no disk fallback: the paper never bypasses reads to the
    /// disk subsystem, so on a flat system this directive is a no-op.
    SpillTailReads {
        /// Upper bound on how many requests to move.
        max_requests: usize,
        /// The cache level the spilled requests are served from (≥ 1).
        target_level: usize,
    },
}

/// A controller's answer for the next interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerDecision {
    /// The write policy to assign to the cache. On a tiered system this is
    /// the uniform whole-stack assignment unless `tier_policies` overrides
    /// it per level.
    pub policy: WritePolicy,
    /// Per-cache-level write policies, hot tier first — the tier-aware
    /// controllers' generalization of the single `policy` knob. Empty (the
    /// default, and the only shape flat systems accept) means "assign
    /// `policy` to every level"; non-empty vectors must hold exactly one
    /// entry per cache level.
    pub tier_policies: Vec<WritePolicy>,
    /// Which queued requests to bypass.
    pub bypass: BypassDirective,
    /// Whether the controller considered the interval a burst / bottleneck
    /// interval (recorded in the interval report, plotted in Fig. 6).
    pub burst_detected: bool,
}

impl ControllerDecision {
    /// A decision that keeps `policy` and changes nothing else.
    pub fn keep(policy: WritePolicy) -> Self {
        ControllerDecision {
            policy,
            tier_policies: Vec::new(),
            bypass: BypassDirective::None,
            burst_detected: false,
        }
    }
}

/// A cache load-balancing controller.
pub trait CacheController {
    /// Short name used in reports and plots ("WB", "SIB", "LBICA", ...).
    fn name(&self) -> &str;

    /// The policy the cache should start the run with.
    fn initial_policy(&self) -> WritePolicy {
        WritePolicy::WriteBack
    }

    /// Called at the end of every monitoring interval.
    fn on_interval(&mut self, ctx: &ControllerContext<'_>) -> ControllerDecision;

    /// Called once at the end of an observed run so the controller can
    /// publish its internal state (decision logs, detector counters) into
    /// the observer. `interval_us` converts interval indices to sim-time.
    /// The default publishes nothing; never called without an observer
    /// attached, so un-observed runs pay zero cost.
    fn export_obs(&self, _obs: &mut lbica_obs::SimObserver, _interval_us: u64) {}

    /// Serializes whatever internal state the controller's *decisions*
    /// depend on, for a replay checkpoint. Stateless controllers (the
    /// static baselines) keep the empty default; stateful ones (LBICA's
    /// calm-streak hysteresis, SIB's bypass counter) must override both
    /// this and [`CacheController::restore_state`] so a resumed run makes
    /// the same decisions as the unsplit one. Purely diagnostic state (e.g.
    /// decision logs) may be skipped — it never feeds back into decisions.
    fn save_state(&self, _w: &mut lbica_storage::snap::SnapWriter) {}

    /// Restores state written by [`CacheController::save_state`].
    fn restore_state(
        &mut self,
        _r: &mut lbica_storage::snap::SnapReader<'_>,
    ) -> Result<(), lbica_storage::snap::SnapError> {
        Ok(())
    }
}

/// The no-load-balancing baseline: a fixed write policy, never bypasses.
///
/// With [`WritePolicy::WriteBack`] this is the paper's "WB cache" baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticPolicyController {
    name: String,
    policy: WritePolicy,
}

impl StaticPolicyController {
    /// Creates a baseline that pins `policy` for the whole run.
    pub fn new(policy: WritePolicy) -> Self {
        StaticPolicyController { name: format!("static-{}", policy.label()), policy }
    }

    /// The paper's WB baseline.
    pub fn write_back() -> Self {
        StaticPolicyController { name: "WB".to_string(), policy: WritePolicy::WriteBack }
    }

    /// The pinned policy.
    pub const fn policy(&self) -> WritePolicy {
        self.policy
    }
}

impl CacheController for StaticPolicyController {
    fn name(&self) -> &str {
        &self.name
    }

    fn initial_policy(&self) -> WritePolicy {
        self.policy
    }

    fn on_interval(&mut self, _ctx: &ControllerContext<'_>) -> ControllerDecision {
        ControllerDecision::keep(self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(queue: &DeviceQueue) -> ControllerContext<'_> {
        ControllerContext {
            interval_index: 0,
            now: SimTime::ZERO,
            cache_queue_depth: 10,
            disk_queue_depth: 1,
            cache_avg_latency: SimDuration::from_micros(75),
            disk_avg_latency: SimDuration::from_micros(385),
            cache_queue_mix: QueueSnapshot::default(),
            current_policy: WritePolicy::WriteBack,
            cache_queue: queue,
            tier_loads: &[],
            tier_policies: &[],
        }
    }

    #[test]
    fn tier_load_queue_time_is_depth_times_latency() {
        let load = TierLoad { queue_depth: 12, avg_latency: SimDuration::from_micros(80) };
        assert_eq!(load.queue_time().as_micros(), 960);
        let idle = TierLoad { queue_depth: 0, avg_latency: SimDuration::from_micros(80) };
        assert_eq!(idle.queue_time(), SimDuration::ZERO);
    }

    #[test]
    fn static_controller_never_changes_anything() {
        let queue = DeviceQueue::new("ssd");
        let mut wb = StaticPolicyController::write_back();
        assert_eq!(wb.name(), "WB");
        assert_eq!(wb.initial_policy(), WritePolicy::WriteBack);
        let d = wb.on_interval(&ctx(&queue));
        assert_eq!(d.policy, WritePolicy::WriteBack);
        assert_eq!(d.bypass, BypassDirective::None);
        assert!(!d.burst_detected);
    }

    #[test]
    fn static_controller_can_pin_other_policies() {
        let c = StaticPolicyController::new(WritePolicy::WriteThrough);
        assert_eq!(c.policy(), WritePolicy::WriteThrough);
        assert_eq!(c.name(), "static-WT");
    }

    #[test]
    fn decision_keep_is_a_no_op() {
        let d = ControllerDecision::keep(WritePolicy::ReadOnly);
        assert_eq!(d.policy, WritePolicy::ReadOnly);
        assert_eq!(d.bypass, BypassDirective::None);
    }
}
