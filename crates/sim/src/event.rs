//! The discrete-event core: events and the time-ordered event queue.
//!
//! The queue is two sorted lanes merged at pop time:
//!
//! * an **in-order lane** (`VecDeque`) for events scheduled at a time at or
//!   after the lane's tail — the application arrival stream, which the
//!   generators emit in nondecreasing time order, costs O(1) per event
//!   here instead of a heap sift over every pending arrival;
//! * an **out-of-order lane** for everything else (device completions,
//!   whose `now + service_time` jitters): a `BinaryHeap` of small `Copy`
//!   keys `(time, seq, payload index)` over a free-list payload slab, so
//!   sift operations move 24-byte keys instead of ~100-byte events. Since
//!   only in-flight completions live here, this heap stays shallow
//!   (≈ device parallelism) even when thousands of arrivals are pending.
//!
//! Both lanes are individually sorted by `(time, seq)`, so popping the
//! smaller front yields exactly the same global order as the original
//! single-heap implementation.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use lbica_storage::request::IoRequest;
use lbica_storage::snap::{SnapError, SnapReader, SnapWriter};
use lbica_storage::time::SimTime;

use crate::system::TierId;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An application request arrives at the cache module.
    Arrival(IoRequest),
    /// A device finishes servicing a request.
    Completion {
        /// Which tier finished the request.
        tier: TierId,
        /// The serviced request (dispatch timestamp already set).
        request: IoRequest,
    },
    /// A cache-level station of a *tiered* hierarchy finishes servicing a
    /// request. Never scheduled by the flat [`crate::StorageSystem`].
    LevelCompletion {
        /// Which cache level (0 = hot tier) finished the request.
        level: usize,
        /// The serviced request (dispatch timestamp already set).
        request: IoRequest,
    },
}

impl EventKind {
    /// Serializes the event payload for a replay checkpoint.
    fn snap_to(&self, w: &mut SnapWriter) {
        match self {
            EventKind::Arrival(request) => {
                w.put_u8(0);
                request.snap_to(w);
            }
            EventKind::Completion { tier, request } => {
                w.put_u8(1);
                w.put_u8(match tier {
                    TierId::Ssd => 0,
                    TierId::Disk => 1,
                });
                request.snap_to(w);
            }
            EventKind::LevelCompletion { level, request } => {
                w.put_u8(2);
                w.put_usize(*level);
                request.snap_to(w);
            }
        }
    }

    /// Restores a payload written by [`EventKind::snap_to`].
    fn snap_from(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(EventKind::Arrival(IoRequest::snap_from(r)?)),
            1 => {
                let tier = match r.get_u8()? {
                    0 => TierId::Ssd,
                    1 => TierId::Disk,
                    _ => return Err(SnapError::Corrupt("tier id tag")),
                };
                Ok(EventKind::Completion { tier, request: IoRequest::snap_from(r)? })
            }
            2 => Ok(EventKind::LevelCompletion {
                level: r.get_usize()?,
                request: IoRequest::snap_from(r)?,
            }),
            _ => Err(SnapError::Corrupt("event kind tag")),
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic tie-breaker so simultaneous events fire in insertion order.
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

/// The heap entry: everything ordering needs, nothing more.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapKey {
    time: SimTime,
    seq: u64,
    payload: u32,
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // `seq` is unique, so the payload index never decides the order (it
        // participates only to keep Ord consistent with the derived Eq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
            .then_with(|| other.payload.cmp(&self.payload))
    }
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An entry of the in-order lane (payload held inline — the lane is a
/// FIFO, so nothing ever sifts past it).
#[derive(Debug)]
struct SortedEntry {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

/// A time-ordered queue of pending events.
#[derive(Debug, Default)]
pub struct EventQueue {
    /// In-order lane: sorted by `(time, seq)` by construction (an event is
    /// only appended when its time is at or after the tail's).
    sorted: VecDeque<SortedEntry>,
    /// Out-of-order lane.
    heap: BinaryHeap<HeapKey>,
    /// Payload slab: `heap` keys index into it; `None` slots are free.
    payloads: Vec<Option<EventKind>>,
    /// Indices of free `payloads` slots, reused before the slab grows.
    free: Vec<u32>,
    next_seq: u64,
    peak_len: usize,
}

impl EventQueue {
    /// Creates an empty event queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.sorted.len() + self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty() && self.heap.is_empty()
    }

    /// The largest number of simultaneously pending events ever observed.
    pub const fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Clears all pending events and counters while keeping every backing
    /// allocation — both lanes, the payload slab and its free list — so the
    /// next simulation run schedules into already-sized storage. Afterwards
    /// the queue is observationally identical to a freshly constructed one.
    pub fn reset(&mut self) {
        self.sorted.clear();
        self.heap.clear();
        self.payloads.clear();
        self.free.clear();
        self.next_seq = 0;
        self.peak_len = 0;
    }

    /// Schedules `kind` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.sorted.back().is_none_or(|tail| time >= tail.time) {
            self.sorted.push_back(SortedEntry { time, seq, kind });
        } else {
            let payload = match self.free.pop() {
                Some(idx) => {
                    self.payloads[idx as usize] = Some(kind);
                    idx
                }
                None => {
                    let idx =
                        u32::try_from(self.payloads.len()).expect("event slab fits u32 indices");
                    self.payloads.push(Some(kind));
                    idx
                }
            };
            self.heap.push(HeapKey { time, seq, payload });
        }
        self.peak_len = self.peak_len.max(self.len());
    }

    /// The firing time of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        match (self.sorted.front(), self.heap.peek()) {
            (Some(s), Some(h)) => Some(s.time.min(h.time)),
            (Some(s), None) => Some(s.time),
            (None, Some(h)) => Some(h.time),
            (None, None) => None,
        }
    }

    /// Whether the next pop comes from the in-order lane. `None` when the
    /// queue is empty. Both lanes are sorted by `(time, seq)`, so the
    /// smaller front is the global minimum.
    fn pop_from_sorted(&self) -> Option<bool> {
        match (self.sorted.front(), self.heap.peek()) {
            (Some(s), Some(h)) => Some((s.time, s.seq) <= (h.time, h.seq)),
            (Some(_), None) => Some(true),
            (None, Some(_)) => Some(false),
            (None, None) => None,
        }
    }

    /// Reclaims a popped key's payload slot and assembles the public event.
    fn take(&mut self, key: HeapKey) -> Event {
        let kind = self.payloads[key.payload as usize].take().expect("scheduled payload present");
        self.free.push(key.payload);
        Event { time: key.time, seq: key.seq, kind }
    }

    /// Pops the earliest pending event if it fires at or before `limit`.
    ///
    /// One peek at each lane front decides both which lane holds the global
    /// minimum and whether it is due — this runs once per event of the
    /// simulation loop, so it avoids the separate `next_time` + `pop`
    /// front-comparison round trip.
    pub fn pop_until(&mut self, limit: SimTime) -> Option<Event> {
        let from_sorted = match (self.sorted.front(), self.heap.peek()) {
            (Some(s), Some(h)) => {
                if (s.time, s.seq) <= (h.time, h.seq) {
                    if s.time > limit {
                        return None;
                    }
                    true
                } else {
                    if h.time > limit {
                        return None;
                    }
                    false
                }
            }
            (Some(s), None) => {
                if s.time > limit {
                    return None;
                }
                true
            }
            (None, Some(h)) => {
                if h.time > limit {
                    return None;
                }
                false
            }
            (None, None) => return None,
        };
        if from_sorted {
            let entry = self.sorted.pop_front().expect("front exists");
            Some(Event { time: entry.time, seq: entry.seq, kind: entry.kind })
        } else {
            let key = self.heap.pop().expect("peek exists");
            Some(self.take(key))
        }
    }

    /// Serializes every pending event — plus the sequence counter and peak
    /// depth — in canonical `(time, seq)` order, for a replay checkpoint.
    /// Which lane a pending event happens to sit in is *not* recorded: pop
    /// order is globally `(time, seq)` regardless of lane, so the lane
    /// split is unobservable and a restored queue may legally re-lane.
    pub fn snap_to(&self, w: &mut SnapWriter) {
        w.put_u64(self.next_seq);
        w.put_usize(self.peak_len);
        let mut entries: Vec<(SimTime, u64, &EventKind)> =
            self.sorted.iter().map(|e| (e.time, e.seq, &e.kind)).collect();
        for key in &self.heap {
            let kind =
                self.payloads[key.payload as usize].as_ref().expect("scheduled payload present");
            entries.push((key.time, key.seq, kind));
        }
        entries.sort_by_key(|&(time, seq, _)| (time, seq));
        w.put_usize(entries.len());
        for (time, seq, kind) in entries {
            w.put_u64(time.as_micros());
            w.put_u64(seq);
            kind.snap_to(w);
        }
    }

    /// Restores the pending events written by [`EventQueue::snap_to`] into
    /// this queue (whose own pending events are discarded). Every restored
    /// event lands in the in-order lane — legal because the serialized
    /// stream is `(time, seq)`-sorted, and unobservable (see
    /// [`EventQueue::snap_to`]).
    pub fn snap_state_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reset();
        let next_seq = r.get_u64()?;
        let peak_len = r.get_usize()?;
        let len = r.get_usize()?;
        let mut last: Option<(SimTime, u64)> = None;
        for _ in 0..len {
            let time = SimTime::from_micros(r.get_u64()?);
            let seq = r.get_u64()?;
            if seq >= next_seq {
                return Err(SnapError::Corrupt("event seq beyond counter"));
            }
            if last.is_some_and(|prev| (time, seq) <= prev) {
                return Err(SnapError::Corrupt("pending events out of order"));
            }
            last = Some((time, seq));
            let kind = EventKind::snap_from(r)?;
            self.sorted.push_back(SortedEntry { time, seq, kind });
        }
        self.next_seq = next_seq;
        self.peak_len = peak_len.max(self.sorted.len());
        Ok(())
    }

    /// Pops the earliest pending event unconditionally.
    pub fn pop(&mut self) -> Option<Event> {
        if self.pop_from_sorted()? {
            let entry = self.sorted.pop_front().expect("front exists");
            Some(Event { time: entry.time, seq: entry.seq, kind: entry.kind })
        } else {
            let key = self.heap.pop().expect("peek exists");
            Some(self.take(key))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbica_storage::request::{RequestKind, RequestOrigin};

    fn arrival(id: u64, t: u64) -> (SimTime, EventKind) {
        (
            SimTime::from_micros(t),
            EventKind::Arrival(IoRequest::new(
                id,
                RequestKind::Read,
                RequestOrigin::Application,
                0,
                8,
            )),
        )
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        for (id, t) in [(1u64, 300u64), (2, 100), (3, 200)] {
            let (time, kind) = arrival(id, t);
            q.schedule(time, kind);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(r) => r.id(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for id in 0..5u64 {
            let (time, kind) = arrival(id, 50);
            q.schedule(time, kind);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(r) => r.id(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        let (t1, k1) = arrival(1, 100);
        let (t2, k2) = arrival(2, 500);
        q.schedule(t1, k1);
        q.schedule(t2, k2);
        assert!(q.pop_until(SimTime::from_micros(200)).is_some());
        assert!(q.pop_until(SimTime::from_micros(200)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(SimTime::from_micros(500)));
        assert!(q.pop_until(SimTime::from_micros(500)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn payload_slots_are_reused_after_pops() {
        let mut q = EventQueue::new();
        for _round in 0..10 {
            // Decreasing times force the out-of-order lane (all but the
            // first land before the lane tail).
            for id in 0..4u64 {
                let (time, kind) = arrival(id, 1000 - id);
                q.schedule(time, kind);
            }
            while q.pop().is_some() {}
        }
        // Ten rounds of four events never grow the slab past one round's
        // worth of simultaneously pending payloads.
        assert!(q.payloads.len() <= 4, "slab grew to {}", q.payloads.len());
        assert_eq!(q.peak_len(), 4);
    }

    #[test]
    fn in_order_arrivals_bypass_the_heap() {
        let mut q = EventQueue::new();
        for id in 0..100u64 {
            let (time, kind) = arrival(id, id * 10);
            q.schedule(time, kind);
        }
        assert!(q.heap.is_empty(), "a sorted stream must stay in the FIFO lane");
        assert_eq!(q.sorted.len(), 100);
    }

    #[test]
    fn lanes_merge_in_exact_time_seq_order() {
        let mut q = EventQueue::new();
        // Sorted lane: 100, 200, 300; then out-of-order events landing
        // between, before, at-equal-time-after those.
        for (id, t) in [(0u64, 100u64), (1, 200), (2, 300)] {
            let (time, kind) = arrival(id, t);
            q.schedule(time, kind);
        }
        for (id, t) in [(3u64, 150u64), (4, 50), (5, 200), (6, 300)] {
            let (time, kind) = arrival(id, t);
            q.schedule(time, kind);
        }
        assert!(!q.heap.is_empty());
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(r) => r.id(),
                _ => unreachable!(),
            })
            .collect();
        // Time order, seq-stable within equal times: 50, 100, 150,
        // 200(seq1), 200(seq5), 300(seq2), 300(seq6).
        assert_eq!(order, vec![4, 0, 3, 1, 5, 2, 6]);
    }

    #[test]
    fn snapshot_round_trip_preserves_pop_order_across_both_lanes() {
        let mut q = EventQueue::new();
        // Sorted lane plus heap-lane stragglers, mixed kinds.
        for (id, t) in [(0u64, 100u64), (1, 200), (2, 300)] {
            let (time, kind) = arrival(id, t);
            q.schedule(time, kind);
        }
        let req = |id| {
            IoRequest::new(id, RequestKind::Write, RequestOrigin::Promote, 64, 8)
                .with_arrival(SimTime::from_micros(10))
        };
        q.schedule(
            SimTime::from_micros(150),
            EventKind::Completion { tier: TierId::Disk, request: req(3) },
        );
        q.schedule(
            SimTime::from_micros(50),
            EventKind::LevelCompletion { level: 1, request: req(4) },
        );
        assert!(!q.heap.is_empty(), "the test must cover the out-of-order lane");

        let mut w = SnapWriter::new();
        q.snap_to(&mut w);
        let bytes = w.into_bytes();
        let mut restored = EventQueue::new();
        let mut r = SnapReader::new(&bytes);
        restored.snap_state_from(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.len(), q.len());
        assert_eq!(restored.peak_len(), q.peak_len());
        let drain = |q: &mut EventQueue| -> Vec<Event> { std::iter::from_fn(|| q.pop()).collect() };
        assert_eq!(drain(&mut restored), drain(&mut q));
    }

    #[test]
    fn restored_queue_continues_the_seq_counter() {
        let mut q = EventQueue::new();
        let (time, kind) = arrival(1, 100);
        q.schedule(time, kind);
        let mut w = SnapWriter::new();
        q.snap_to(&mut w);
        let bytes = w.into_bytes();
        let mut restored = EventQueue::new();
        restored.snap_state_from(&mut SnapReader::new(&bytes)).unwrap();
        // A post-restore event at the same time must fire *after* the
        // restored one (larger seq), exactly as in the unsplit run.
        let (time, kind) = arrival(2, 100);
        restored.schedule(time, kind);
        let ids: Vec<u64> = std::iter::from_fn(|| restored.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(r) => r.id(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn corrupt_event_kind_tag_is_rejected() {
        let mut q = EventQueue::new();
        let (time, kind) = arrival(1, 100);
        q.schedule(time, kind);
        let mut w = SnapWriter::new();
        q.snap_to(&mut w);
        let mut bytes = w.into_bytes();
        // next_seq (8) + peak_len (8) + count (8) + time (8) + seq (8),
        // then the kind tag.
        bytes[40] = 9;
        let err = EventQueue::new().snap_state_from(&mut SnapReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, SnapError::Corrupt("event kind tag")));
    }

    #[test]
    fn peak_len_tracks_the_high_watermark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        for id in 0..7u64 {
            let (time, kind) = arrival(id, 10 + id);
            q.schedule(time, kind);
        }
        while q.pop().is_some() {}
        assert_eq!(q.peak_len(), 7);
        assert!(q.is_empty());
    }
}
