//! The discrete-event core: events and the time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use lbica_storage::request::IoRequest;
use lbica_storage::time::SimTime;

use crate::system::TierId;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An application request arrives at the cache module.
    Arrival(IoRequest),
    /// A device finishes servicing a request.
    Completion {
        /// Which tier finished the request.
        tier: TierId,
        /// The serviced request (dispatch timestamp already set).
        request: IoRequest,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic tie-breaker so simultaneous events fire in insertion order.
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of pending events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty event queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `kind` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// The firing time of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest pending event if it fires at or before `limit`.
    pub fn pop_until(&mut self, limit: SimTime) -> Option<Event> {
        match self.heap.peek() {
            Some(e) if e.time <= limit => self.heap.pop(),
            _ => None,
        }
    }

    /// Pops the earliest pending event unconditionally.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbica_storage::request::{RequestKind, RequestOrigin};

    fn arrival(id: u64, t: u64) -> (SimTime, EventKind) {
        (
            SimTime::from_micros(t),
            EventKind::Arrival(IoRequest::new(
                id,
                RequestKind::Read,
                RequestOrigin::Application,
                0,
                8,
            )),
        )
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        for (id, t) in [(1u64, 300u64), (2, 100), (3, 200)] {
            let (time, kind) = arrival(id, t);
            q.schedule(time, kind);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(r) => r.id(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for id in 0..5u64 {
            let (time, kind) = arrival(id, 50);
            q.schedule(time, kind);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(r) => r.id(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        let (t1, k1) = arrival(1, 100);
        let (t2, k2) = arrival(2, 500);
        q.schedule(t1, k1);
        q.schedule(t2, k2);
        assert!(q.pop_until(SimTime::from_micros(200)).is_some());
        assert!(q.pop_until(SimTime::from_micros(200)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(SimTime::from_micros(500)));
        assert!(q.pop_until(SimTime::from_micros(500)).is_some());
        assert!(q.is_empty());
    }
}
