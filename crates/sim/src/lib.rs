//! Discrete-event simulator of a two-tier (SSD cache + disk subsystem)
//! storage hierarchy.
//!
//! The paper evaluates LBICA on a physical server; this crate provides the
//! deterministic, seedable stand-in: an event-driven model of
//!
//! * an application issuing the open-loop request stream of a
//!   [`lbica_trace::workload::WorkloadSpec`],
//! * the EnhanceIO-like [`lbica_cache::CacheModule`] that turns each
//!   application request into derived SSD / disk operations under the
//!   current write policy,
//! * two [`DeviceStation`]s — the SSD cache device and the disk subsystem —
//!   each a FIFO [`lbica_storage::queue::DeviceQueue`] in front of a
//!   configurable number of service slots, and
//! * the `iostat` / `blktrace` monitors sampled once per interval.
//!
//! A [`CacheController`] (the WB baseline, SIB, or LBICA from
//! `lbica-core`) is consulted at every monitoring-interval boundary and may
//! switch the cache write policy and/or bypass queued requests to the disk
//! subsystem — exactly the two knobs the paper's Fig. 2 gives LBICA.
//!
//! # Example
//!
//! ```
//! use lbica_sim::{Simulation, SimulationConfig, StaticPolicyController};
//! use lbica_trace::workload::{WorkloadScale, WorkloadSpec};
//!
//! let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
//! let mut sim = Simulation::new(SimulationConfig::tiny(), spec, 42);
//! let report = sim.run(&mut StaticPolicyController::write_back());
//! assert_eq!(report.intervals.len() as u32, report.total_intervals);
//! assert!(report.app_completed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod checkpoint;
pub mod config;
pub mod controller;
pub mod event;
pub mod report;
pub mod runner;
pub mod system;
pub mod tiered;
pub mod tracker;

pub use arena::SimArena;
pub use checkpoint::ReplayCheckpoint;
pub use config::{DiskDeviceConfig, SimulationConfig};
pub use controller::{
    BypassDirective, CacheController, ControllerContext, ControllerDecision,
    StaticPolicyController, TierLoad,
};
pub use event::{Event, EventKind, EventQueue};
pub use lbica_storage::snap::SnapError;
pub use report::{PolicyChange, SimPerf, SimulationReport, TierLevelStats};
pub use runner::Simulation;
pub use system::{DeviceStation, StorageSystem};
pub use tiered::TieredStorageSystem;
pub use tracker::AppTracker;
