//! Cross-cell state reuse for sweep workers.
//!
//! A parameter sweep runs many short simulation cells, and for the small
//! matrices the per-cell setup — allocating slot arenas, tracker slabs,
//! event-queue lanes and monitor histories, then prewarming the cache —
//! rivals the event loop itself. A [`SimArena`] keeps the previously built
//! [`StorageSystem`] / [`TieredStorageSystem`] alive between cells and
//! hands it back **reset** instead of reallocated whenever the next cell
//! asks for the same [`SimulationConfig`].
//!
//! The contract is strict: *reset is observationally equivalent to fresh
//! construction*. Every component exposes a `reset()` that clears all
//! state a simulation can observe (counters, clocks, contents, histories)
//! while keeping the backing allocations; the arena only reuses a system
//! when the requested config is `==` the one the system was built with, so
//! geometry, device models and policies are guaranteed identical. Anything
//! else falls back to building fresh. The equivalence is pinned by
//! proptests in `lbica-lab` that compare reports, figure CSV rows and trace
//! snapshots of arena-reused runs against fresh-state runs byte for byte.
//!
//! One arena per sweep worker thread: cells on the same worker share it
//! sequentially, so after the first cell of each shape every subsequent
//! cell runs allocation-free.

use crate::config::SimulationConfig;
use crate::system::StorageSystem;
use crate::tiered::TieredStorageSystem;

/// Reusable backing store for the simulated systems of consecutive runs.
///
/// ```
/// use lbica_sim::{SimArena, SimulationConfig};
///
/// let mut arena = SimArena::new();
/// let config = SimulationConfig::tiny();
/// let sys = arena.take_flat(&config); // first use: built fresh
/// arena.store_flat(config, sys);
/// let _sys = arena.take_flat(&config); // reused, reset, allocation-free
/// ```
#[derive(Debug, Default)]
pub struct SimArena {
    flat: Option<(SimulationConfig, StorageSystem)>,
    tiered: Option<(SimulationConfig, TieredStorageSystem)>,
}

impl SimArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        SimArena::default()
    }

    /// Hands out a flat system for `config`: the stored one, reset, when
    /// its construction config matches; a freshly built one otherwise.
    pub fn take_flat(&mut self, config: &SimulationConfig) -> StorageSystem {
        match self.flat.take() {
            Some((stored, mut system)) if stored == *config => {
                system.reset(config);
                system
            }
            _ => StorageSystem::new(config),
        }
    }

    /// Returns a flat system to the arena for the next [`SimArena::take_flat`].
    pub fn store_flat(&mut self, config: SimulationConfig, system: StorageSystem) {
        self.flat = Some((config, system));
    }

    /// Hands out a tiered system for `config`: the stored one, reset, when
    /// its construction config matches; a freshly built one otherwise.
    ///
    /// # Panics
    ///
    /// Panics (in [`TieredStorageSystem::new`]) if `config` carries no tier
    /// topology and no stored system matches.
    pub fn take_tiered(&mut self, config: &SimulationConfig) -> TieredStorageSystem {
        match self.tiered.take() {
            Some((stored, mut system)) if stored == *config => {
                system.reset(config);
                system
            }
            _ => TieredStorageSystem::new(config),
        }
    }

    /// Returns a tiered system to the arena for the next
    /// [`SimArena::take_tiered`].
    pub fn store_tiered(&mut self, config: SimulationConfig, system: TieredStorageSystem) {
        self.tiered = Some((config, system));
    }
}
