//! Replay segment checkpoints.
//!
//! A [`ReplayCheckpoint`] captures the full mid-flight state of a simulation
//! at a monitoring-interval boundary: the storage system (queues, in-flight
//! requests, cache map, event queue, latency tracker), the controller's
//! decision-relevant state, and the report rows already accumulated. A run
//! split at any boundary and resumed from its checkpoint produces a
//! [`SimulationReport`](crate::report::SimulationReport) byte-identical to
//! the unsplit run — which lets long replays pause/resume and lets sweep
//! cells shard one replay across processes.
//!
//! Checkpoints serialize through the hand-rolled
//! [`snap`](lbica_storage::snap) encoding and are hardened against hostile
//! input the same way: truncated, corrupted, or mismatched buffers decode to
//! typed [`SnapError`]s, never panics.

use lbica_storage::snap::{SnapError, SnapReader, SnapWriter};
use lbica_trace::monitor::IntervalReport;

use crate::report::PolicyChange;

/// File magic of the serialized checkpoint format.
const MAGIC: [u8; 4] = *b"LBCP";
/// Version of the serialized checkpoint format.
const VERSION: u32 = 1;

/// The state of a simulation paused at a monitoring-interval boundary.
///
/// Produced by [`Simulation::run_to_checkpoint`](crate::Simulation::run_to_checkpoint)
/// and consumed by
/// [`Simulation::resume_from_checkpoint`](crate::Simulation::resume_from_checkpoint).
/// The identity fields (`workload`, `controller`, `seed`, `tiered`,
/// `total_intervals`) are validated on resume so a checkpoint can never be
/// silently replayed against the wrong cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCheckpoint {
    /// Workload name of the checkpointed run.
    pub workload: String,
    /// Controller name of the checkpointed run.
    pub controller: String,
    /// Workload seed of the checkpointed run.
    pub seed: u64,
    /// Whether the run used the tiered datapath.
    pub tiered: bool,
    /// First interval the resumed run will execute.
    pub next_interval: u32,
    /// Total intervals the workload defines.
    pub total_intervals: u32,
    /// Requests bypassed to the disk so far.
    pub bypassed_total: u64,
    /// Interval reports accumulated so far (one per completed interval).
    pub intervals: Vec<IntervalReport>,
    /// Policy changes recorded so far.
    pub policy_changes: Vec<PolicyChange>,
    /// Opaque snapshot of the storage system followed by the controller
    /// state, as written by `StorageSystem::snap_to` /
    /// `CacheController::save_state`.
    pub state: Vec<u8>,
}

impl ReplayCheckpoint {
    /// Serializes the checkpoint to a self-describing byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        for b in MAGIC {
            w.put_u8(b);
        }
        w.put_u32(VERSION);
        w.put_str(&self.workload);
        w.put_str(&self.controller);
        w.put_u64(self.seed);
        w.put_bool(self.tiered);
        w.put_u32(self.next_interval);
        w.put_u32(self.total_intervals);
        w.put_u64(self.bypassed_total);
        w.put_usize(self.intervals.len());
        for interval in &self.intervals {
            interval.snap_to(&mut w);
        }
        w.put_usize(self.policy_changes.len());
        for change in &self.policy_changes {
            change.snap_to(&mut w);
        }
        w.put_bytes(&self.state);
        w.into_bytes()
    }

    /// Decodes a checkpoint serialized by [`ReplayCheckpoint::to_bytes`],
    /// treating the buffer as untrusted.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(bytes);
        for expected in MAGIC {
            if r.get_u8()? != expected {
                return Err(SnapError::Corrupt("checkpoint magic"));
            }
        }
        if r.get_u32()? != VERSION {
            return Err(SnapError::Corrupt("checkpoint version"));
        }
        let workload = r.get_str()?;
        let controller = r.get_str()?;
        let seed = r.get_u64()?;
        let tiered = r.get_bool()?;
        let next_interval = r.get_u32()?;
        let total_intervals = r.get_u32()?;
        let bypassed_total = r.get_u64()?;
        let interval_count = r.get_usize()?;
        // No `with_capacity` on the untrusted count: a hostile length errors
        // out on the first short read instead of pre-allocating.
        let mut intervals = Vec::new();
        for _ in 0..interval_count {
            intervals.push(IntervalReport::snap_from(&mut r)?);
        }
        let change_count = r.get_usize()?;
        let mut policy_changes = Vec::new();
        for _ in 0..change_count {
            policy_changes.push(PolicyChange::snap_from(&mut r)?);
        }
        let state = r.get_bytes()?;
        r.finish()?;
        if next_interval > total_intervals {
            return Err(SnapError::Corrupt("checkpoint interval beyond workload end"));
        }
        if intervals.len() != next_interval as usize {
            return Err(SnapError::Corrupt("checkpoint interval row count"));
        }
        Ok(ReplayCheckpoint {
            workload,
            controller,
            seed,
            tiered,
            next_interval,
            total_intervals,
            bypassed_total,
            intervals,
            policy_changes,
            state,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReplayCheckpoint {
        ReplayCheckpoint {
            workload: "tpcc".into(),
            controller: "LBICA".into(),
            seed: 42,
            tiered: true,
            next_interval: 2,
            total_intervals: 9,
            bypassed_total: 17,
            intervals: vec![
                IntervalReport { index: 0, ..IntervalReport::default() },
                IntervalReport {
                    index: 1,
                    burst_detected: true,
                    policy_label: "WO".into(),
                    ..IntervalReport::default()
                },
            ],
            policy_changes: vec![
                PolicyChange { interval: 0, policy: "WB".into() },
                PolicyChange { interval: 2, policy: "WO".into() },
            ],
            state: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn checkpoints_round_trip_through_bytes() {
        let cp = sample();
        let decoded = ReplayCheckpoint::from_bytes(&cp.to_bytes()).unwrap();
        assert_eq!(cp, decoded);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xff;
        assert_eq!(
            ReplayCheckpoint::from_bytes(&bytes),
            Err(SnapError::Corrupt("checkpoint magic"))
        );
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 0xfe;
        assert_eq!(
            ReplayCheckpoint::from_bytes(&bytes),
            Err(SnapError::Corrupt("checkpoint version"))
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            match ReplayCheckpoint::from_bytes(&bytes[..len]) {
                Err(_) => {}
                Ok(_) => panic!("truncation to {len} bytes decoded successfully"),
            }
        }
    }

    #[test]
    fn interval_row_count_must_match_next_interval() {
        let mut cp = sample();
        cp.intervals.pop();
        assert_eq!(
            ReplayCheckpoint::from_bytes(&cp.to_bytes()),
            Err(SnapError::Corrupt("checkpoint interval row count"))
        );
    }
}
