//! Simulation configuration.

use serde::{Deserialize, Serialize};

use lbica_cache::{CacheConfig, ReplacementKind, WritePolicy};
use lbica_storage::device::{HddConfig, SsdConfig};
use lbica_tier::{InclusionPolicy, TierLevelSpec, TierTopology};

/// Which device model backs the disk-subsystem tier.
///
/// The paper's latency plots (hundreds of microseconds on the disk tier)
/// match an enterprise disk subsystem built on mid-range SSDs — an option
/// the paper's introduction explicitly lists — so that is the default. The
/// raw 7.2K RPM HDD model remains available for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DiskDeviceConfig {
    /// A mid-range SATA SSD array.
    MidrangeSsd(SsdConfig),
    /// A 7.2K RPM SAS HDD.
    Hdd(HddConfig),
}

impl DiskDeviceConfig {
    /// The default mid-range SSD disk subsystem.
    pub const fn midrange_ssd() -> Self {
        DiskDeviceConfig::MidrangeSsd(SsdConfig::midrange_sata())
    }

    /// The 7.2K SAS HDD disk subsystem from the paper's parts list.
    pub const fn seagate_hdd() -> Self {
        DiskDeviceConfig::Hdd(HddConfig::seagate_7200_sas())
    }
}

impl Default for DiskDeviceConfig {
    fn default() -> Self {
        DiskDeviceConfig::midrange_ssd()
    }
}

/// Full configuration of a [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Geometry and initial policy of the SSD cache.
    pub cache: CacheConfig,
    /// Service-time model of the SSD cache device.
    pub cache_device: SsdConfig,
    /// Service-time model of the disk subsystem.
    pub disk_device: DiskDeviceConfig,
    /// Number of requests the cache device services concurrently.
    pub ssd_parallelism: usize,
    /// Number of requests the disk subsystem services concurrently (an
    /// enterprise disk subsystem is an array, not a single spindle).
    pub disk_parallelism: usize,
    /// Pre-populate the cache with clean blocks before the run, modelling a
    /// workload that has passed its warm-up interval (the paper's
    /// assumption in Section III-B).
    pub prewarm_cache: bool,
    /// Optional multi-level cache hierarchy. `None` (the default) runs the
    /// paper's flat single-SSD cache; a topology with two or more levels
    /// switches the simulation onto the tiered datapath. A one-level
    /// topology still runs the flat path (it is semantically identical),
    /// so every historical configuration is untouched.
    pub tiers: Option<TierTopology>,
}

impl SimulationConfig {
    /// The configuration used by the figure-reproduction harness: a
    /// 16 Ki-block (64 MiB) LRU cache on a Samsung-863a-class device, a
    /// mid-range-SSD disk subsystem with four service slots.
    pub const fn harness() -> Self {
        SimulationConfig {
            cache: CacheConfig {
                num_sets: 4_096,
                associativity: 4,
                replacement: ReplacementKind::Lru,
                initial_policy: WritePolicy::WriteBack,
            },
            cache_device: SsdConfig::samsung_863a(),
            disk_device: DiskDeviceConfig::midrange_ssd(),
            ssd_parallelism: 1,
            disk_parallelism: 4,
            prewarm_cache: true,
            tiers: None,
        }
    }

    /// A much smaller configuration for fast tests (512-block cache).
    pub const fn tiny() -> Self {
        SimulationConfig {
            cache: CacheConfig {
                num_sets: 128,
                associativity: 4,
                replacement: ReplacementKind::Lru,
                initial_policy: WritePolicy::WriteBack,
            },
            cache_device: SsdConfig::samsung_863a(),
            disk_device: DiskDeviceConfig::midrange_ssd(),
            ssd_parallelism: 1,
            disk_parallelism: 4,
            prewarm_cache: true,
            tiers: None,
        }
    }

    /// Same as [`SimulationConfig::harness`] but with the raw HDD disk
    /// subsystem, for ablations.
    pub const fn harness_with_hdd() -> Self {
        let mut cfg = SimulationConfig::harness();
        cfg.disk_device = DiskDeviceConfig::seagate_hdd();
        cfg
    }

    /// Returns a copy with the cache's set count replaced (builder style).
    /// Together with [`SimulationConfig::with_cache_associativity`] this is
    /// how scenario sweeps enumerate cache geometries.
    pub const fn with_cache_sets(mut self, num_sets: usize) -> Self {
        self.cache.num_sets = num_sets;
        self
    }

    /// Returns a copy with the cache's ways-per-set replaced (builder
    /// style).
    pub const fn with_cache_associativity(mut self, associativity: usize) -> Self {
        self.cache.associativity = associativity;
        self
    }

    /// Returns a copy with the cache's replacement policy replaced (builder
    /// style) — the `ReplacementKind` scenario axis. When a tier topology
    /// is attached, this governs the flat fallback only; per-level
    /// replacement lives in the topology.
    pub const fn with_replacement(mut self, replacement: ReplacementKind) -> Self {
        self.cache.replacement = replacement;
        self
    }

    /// Returns a copy with the disk-subsystem device model replaced
    /// (builder style).
    pub const fn with_disk_device(mut self, disk_device: DiskDeviceConfig) -> Self {
        self.disk_device = disk_device;
        self
    }

    /// Returns a copy with a cache-tier topology attached (builder style).
    /// The flat cache fields are re-synced from the topology's hot tier so
    /// that capacity accessors and one-level topologies stay coherent with
    /// the flat path.
    pub fn with_tiers(mut self, tiers: TierTopology) -> Self {
        let hot = *tiers.level(0);
        self.cache = hot.cache;
        self.cache_device = hot.device;
        self.ssd_parallelism = hot.parallelism;
        self.tiers = Some(tiers);
        self
    }

    /// Returns a copy with the tier hierarchy's inclusion policy replaced
    /// (builder style) — the inclusive-vs-exclusive scenario axis. A no-op
    /// for flat configurations, which have no hierarchy to make inclusive.
    pub fn with_tier_inclusion(mut self, inclusion: InclusionPolicy) -> Self {
        if let Some(tiers) = self.tiers {
            self = self.with_tiers(tiers.with_inclusion(inclusion));
        }
        self
    }

    /// Returns a copy with cache level `level`'s initial write policy
    /// replaced (builder style) — the per-tier write-policy scenario axis.
    ///
    /// Note that in a full [`crate::Simulation`] run the *hot tier's*
    /// run-start policy is owned by the controller
    /// ([`crate::CacheController::initial_policy`]); configured lower-level
    /// policies are preserved. Level-0 assignments therefore matter for
    /// direct [`crate::TieredStorageSystem`] use, not controller-driven
    /// runs.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no tier topology or `level` is out
    /// of bounds.
    pub fn with_tier_level_policy(self, level: usize, policy: WritePolicy) -> Self {
        let tiers = self.tiers.expect("per-tier policies need a tier topology");
        self.with_tiers(tiers.with_level_policy(level, policy))
    }

    /// Number of cache levels the configuration describes (1 for the flat
    /// cache).
    pub fn tier_count(&self) -> usize {
        self.tiers.map_or(1, |t| t.len())
    }

    /// Whether the configuration runs the tiered datapath (two or more
    /// cache levels).
    pub fn is_tiered(&self) -> bool {
        self.tier_count() >= 2
    }

    /// A two-level hierarchy at test scale: the tiny hot tier over a
    /// 4x-larger QLC warm tier, with the tiny disk subsystem.
    pub fn tiny_two_tier() -> Self {
        let base = SimulationConfig::tiny();
        let hot = TierLevelSpec::new(base.cache, base.cache_device, base.ssd_parallelism);
        let warm = TierLevelSpec::new(
            CacheConfig { num_sets: 512, ..base.cache },
            SsdConfig::qlc_capacity(),
            2,
        );
        base.with_tiers(TierTopology::two_level(hot, warm))
    }

    /// Derives a two-level variant of this configuration: the current
    /// cache becomes the hot tier, backed by a QLC warm tier with twice
    /// the sets and two service slots. The generic way any scenario axis
    /// turns a flat cell into a tiered one.
    pub fn two_tier_qlc(self) -> Self {
        let hot = TierLevelSpec::new(self.cache, self.cache_device, self.ssd_parallelism);
        let warm = TierLevelSpec::new(
            CacheConfig { num_sets: self.cache.num_sets * 2, ..self.cache },
            SsdConfig::qlc_capacity(),
            2,
        );
        self.with_tiers(TierTopology::two_level(hot, warm))
    }

    /// A two-level hierarchy at the published figure scale: the harness
    /// cache as hot tier over a 2x-larger QLC warm tier.
    pub fn harness_two_tier() -> Self {
        SimulationConfig::harness().two_tier_qlc()
    }

    /// A three-level hierarchy at test scale (tiny hot tier, QLC warm tier,
    /// an even larger mid-range cold tier).
    pub fn tiny_three_tier() -> Self {
        let base = SimulationConfig::tiny();
        let hot = TierLevelSpec::new(base.cache, base.cache_device, base.ssd_parallelism);
        let warm = TierLevelSpec::new(
            CacheConfig { num_sets: 256, ..base.cache },
            SsdConfig::qlc_capacity(),
            2,
        );
        let cold = TierLevelSpec::new(
            CacheConfig { num_sets: 1_024, ..base.cache },
            SsdConfig::midrange_sata(),
            4,
        );
        base.with_tiers(TierTopology::three_level(hot, warm, cold))
    }

    /// Returns a copy with the service parallelism of both tiers replaced
    /// (builder style).
    pub const fn with_parallelism(mut self, ssd: usize, disk: usize) -> Self {
        self.ssd_parallelism = ssd;
        self.disk_parallelism = disk;
        self
    }

    /// Total cache capacity in blocks: `num_sets × associativity` for the
    /// flat cache, the sum over every level for a tiered hierarchy.
    pub fn cache_capacity_blocks(&self) -> usize {
        match &self.tiers {
            Some(t) => t.capacity_blocks(),
            None => self.cache.capacity_blocks(),
        }
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig::harness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_config_matches_workload_scale() {
        let cfg = SimulationConfig::harness();
        assert_eq!(cfg.cache.capacity_blocks(), 16_384);
        assert!(cfg.prewarm_cache);
        assert!(matches!(cfg.disk_device, DiskDeviceConfig::MidrangeSsd(_)));
    }

    #[test]
    fn tiny_config_matches_tiny_scale() {
        let cfg = SimulationConfig::tiny();
        assert_eq!(cfg.cache.capacity_blocks(), 512);
    }

    #[test]
    fn builder_accessors_enumerate_axis_variants() {
        let base = SimulationConfig::tiny();
        assert_eq!(base.cache_capacity_blocks(), 512);
        let wider = base.with_cache_sets(256).with_cache_associativity(8);
        assert_eq!(wider.cache_capacity_blocks(), 2048);
        let hdd = base.with_disk_device(DiskDeviceConfig::seagate_hdd());
        assert!(matches!(hdd.disk_device, DiskDeviceConfig::Hdd(_)));
        let parallel = base.with_parallelism(2, 8);
        assert_eq!(parallel.ssd_parallelism, 2);
        assert_eq!(parallel.disk_parallelism, 8);
        // Builders copy: the base config is untouched.
        assert_eq!(base, SimulationConfig::tiny());
    }

    #[test]
    fn with_replacement_swaps_the_policy_axis() {
        let base = SimulationConfig::tiny();
        let fifo = base.with_replacement(ReplacementKind::Fifo);
        assert_eq!(fifo.cache.replacement, ReplacementKind::Fifo);
        assert_eq!(base.cache.replacement, ReplacementKind::Lru);
        assert_eq!(fifo.cache_capacity_blocks(), base.cache_capacity_blocks());
    }

    #[test]
    fn tier_presets_describe_multi_level_hierarchies() {
        let flat = SimulationConfig::tiny();
        assert_eq!(flat.tier_count(), 1);
        assert!(!flat.is_tiered());

        let two = SimulationConfig::tiny_two_tier();
        assert_eq!(two.tier_count(), 2);
        assert!(two.is_tiered());
        // Hot tier re-syncs the flat fields; capacity spans both levels.
        assert_eq!(two.cache, flat.cache);
        assert_eq!(two.cache_capacity_blocks(), 512 + 2_048);

        let three = SimulationConfig::tiny_three_tier();
        assert_eq!(three.tier_count(), 3);
        assert_eq!(three.cache_capacity_blocks(), 512 + 1_024 + 4_096);

        let harness = SimulationConfig::harness_two_tier();
        assert_eq!(harness.tier_count(), 2);
        assert_eq!(harness.cache_capacity_blocks(), 16_384 + 32_768);
    }

    #[test]
    fn tier_axis_builders_rewrite_the_topology() {
        let base = SimulationConfig::tiny_two_tier();
        assert_eq!(base.tiers.unwrap().inclusion, InclusionPolicy::Exclusive);
        let inclusive = base.with_tier_inclusion(InclusionPolicy::Inclusive);
        assert_eq!(inclusive.tiers.unwrap().inclusion, InclusionPolicy::Inclusive);
        // Flat configs have no hierarchy to make inclusive.
        let flat = SimulationConfig::tiny().with_tier_inclusion(InclusionPolicy::Inclusive);
        assert!(flat.tiers.is_none());

        let wt_warm = base.with_tier_level_policy(1, WritePolicy::WriteThrough);
        assert_eq!(wt_warm.tiers.unwrap().level(1).write_policy(), WritePolicy::WriteThrough);
        assert_eq!(wt_warm.tiers.unwrap().level(0).write_policy(), WritePolicy::WriteBack);
        // Hot-tier policies re-sync the flat cache fields via with_tiers.
        let wo_hot = base.with_tier_level_policy(0, WritePolicy::WriteOnly);
        assert_eq!(wo_hot.cache.initial_policy, WritePolicy::WriteOnly);
    }

    #[test]
    #[should_panic(expected = "per-tier policies need a tier topology")]
    fn per_tier_policy_on_a_flat_config_panics() {
        let _ = SimulationConfig::tiny().with_tier_level_policy(0, WritePolicy::ReadOnly);
    }

    #[test]
    fn one_level_topology_still_reports_flat() {
        use lbica_tier::{TierLevelSpec, TierTopology};
        let base = SimulationConfig::tiny();
        let single = base.with_tiers(TierTopology::single(TierLevelSpec::new(
            base.cache,
            base.cache_device,
            base.ssd_parallelism,
        )));
        assert_eq!(single.tier_count(), 1);
        assert!(!single.is_tiered());
        assert_eq!(single.cache_capacity_blocks(), base.cache_capacity_blocks());
    }

    #[test]
    fn hdd_variant_switches_disk_model() {
        let cfg = SimulationConfig::harness_with_hdd();
        assert!(matches!(cfg.disk_device, DiskDeviceConfig::Hdd(_)));
        assert_eq!(DiskDeviceConfig::default(), DiskDeviceConfig::midrange_ssd());
    }
}
