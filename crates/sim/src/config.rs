//! Simulation configuration.

use serde::{Deserialize, Serialize};

use lbica_cache::{CacheConfig, ReplacementKind, WritePolicy};
use lbica_storage::device::{HddConfig, SsdConfig};

/// Which device model backs the disk-subsystem tier.
///
/// The paper's latency plots (hundreds of microseconds on the disk tier)
/// match an enterprise disk subsystem built on mid-range SSDs — an option
/// the paper's introduction explicitly lists — so that is the default. The
/// raw 7.2K RPM HDD model remains available for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DiskDeviceConfig {
    /// A mid-range SATA SSD array.
    MidrangeSsd(SsdConfig),
    /// A 7.2K RPM SAS HDD.
    Hdd(HddConfig),
}

impl DiskDeviceConfig {
    /// The default mid-range SSD disk subsystem.
    pub const fn midrange_ssd() -> Self {
        DiskDeviceConfig::MidrangeSsd(SsdConfig::midrange_sata())
    }

    /// The 7.2K SAS HDD disk subsystem from the paper's parts list.
    pub const fn seagate_hdd() -> Self {
        DiskDeviceConfig::Hdd(HddConfig::seagate_7200_sas())
    }
}

impl Default for DiskDeviceConfig {
    fn default() -> Self {
        DiskDeviceConfig::midrange_ssd()
    }
}

/// Full configuration of a [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Geometry and initial policy of the SSD cache.
    pub cache: CacheConfig,
    /// Service-time model of the SSD cache device.
    pub cache_device: SsdConfig,
    /// Service-time model of the disk subsystem.
    pub disk_device: DiskDeviceConfig,
    /// Number of requests the cache device services concurrently.
    pub ssd_parallelism: usize,
    /// Number of requests the disk subsystem services concurrently (an
    /// enterprise disk subsystem is an array, not a single spindle).
    pub disk_parallelism: usize,
    /// Pre-populate the cache with clean blocks before the run, modelling a
    /// workload that has passed its warm-up interval (the paper's
    /// assumption in Section III-B).
    pub prewarm_cache: bool,
}

impl SimulationConfig {
    /// The configuration used by the figure-reproduction harness: a
    /// 16 Ki-block (64 MiB) LRU cache on a Samsung-863a-class device, a
    /// mid-range-SSD disk subsystem with four service slots.
    pub const fn harness() -> Self {
        SimulationConfig {
            cache: CacheConfig {
                num_sets: 4_096,
                associativity: 4,
                replacement: ReplacementKind::Lru,
                initial_policy: WritePolicy::WriteBack,
            },
            cache_device: SsdConfig::samsung_863a(),
            disk_device: DiskDeviceConfig::midrange_ssd(),
            ssd_parallelism: 1,
            disk_parallelism: 4,
            prewarm_cache: true,
        }
    }

    /// A much smaller configuration for fast tests (512-block cache).
    pub const fn tiny() -> Self {
        SimulationConfig {
            cache: CacheConfig {
                num_sets: 128,
                associativity: 4,
                replacement: ReplacementKind::Lru,
                initial_policy: WritePolicy::WriteBack,
            },
            cache_device: SsdConfig::samsung_863a(),
            disk_device: DiskDeviceConfig::midrange_ssd(),
            ssd_parallelism: 1,
            disk_parallelism: 4,
            prewarm_cache: true,
        }
    }

    /// Same as [`SimulationConfig::harness`] but with the raw HDD disk
    /// subsystem, for ablations.
    pub const fn harness_with_hdd() -> Self {
        let mut cfg = SimulationConfig::harness();
        cfg.disk_device = DiskDeviceConfig::seagate_hdd();
        cfg
    }

    /// Returns a copy with the cache's set count replaced (builder style).
    /// Together with [`SimulationConfig::with_cache_associativity`] this is
    /// how scenario sweeps enumerate cache geometries.
    pub const fn with_cache_sets(mut self, num_sets: usize) -> Self {
        self.cache.num_sets = num_sets;
        self
    }

    /// Returns a copy with the cache's ways-per-set replaced (builder
    /// style).
    pub const fn with_cache_associativity(mut self, associativity: usize) -> Self {
        self.cache.associativity = associativity;
        self
    }

    /// Returns a copy with the disk-subsystem device model replaced
    /// (builder style).
    pub const fn with_disk_device(mut self, disk_device: DiskDeviceConfig) -> Self {
        self.disk_device = disk_device;
        self
    }

    /// Returns a copy with the service parallelism of both tiers replaced
    /// (builder style).
    pub const fn with_parallelism(mut self, ssd: usize, disk: usize) -> Self {
        self.ssd_parallelism = ssd;
        self.disk_parallelism = disk;
        self
    }

    /// Total cache capacity in blocks (`num_sets × associativity`).
    pub const fn cache_capacity_blocks(&self) -> usize {
        self.cache.capacity_blocks()
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig::harness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_config_matches_workload_scale() {
        let cfg = SimulationConfig::harness();
        assert_eq!(cfg.cache.capacity_blocks(), 16_384);
        assert!(cfg.prewarm_cache);
        assert!(matches!(cfg.disk_device, DiskDeviceConfig::MidrangeSsd(_)));
    }

    #[test]
    fn tiny_config_matches_tiny_scale() {
        let cfg = SimulationConfig::tiny();
        assert_eq!(cfg.cache.capacity_blocks(), 512);
    }

    #[test]
    fn builder_accessors_enumerate_axis_variants() {
        let base = SimulationConfig::tiny();
        assert_eq!(base.cache_capacity_blocks(), 512);
        let wider = base.with_cache_sets(256).with_cache_associativity(8);
        assert_eq!(wider.cache_capacity_blocks(), 2048);
        let hdd = base.with_disk_device(DiskDeviceConfig::seagate_hdd());
        assert!(matches!(hdd.disk_device, DiskDeviceConfig::Hdd(_)));
        let parallel = base.with_parallelism(2, 8);
        assert_eq!(parallel.ssd_parallelism, 2);
        assert_eq!(parallel.disk_parallelism, 8);
        // Builders copy: the base config is untouched.
        assert_eq!(base, SimulationConfig::tiny());
    }

    #[test]
    fn hdd_variant_switches_disk_model() {
        let cfg = SimulationConfig::harness_with_hdd();
        assert!(matches!(cfg.disk_device, DiskDeviceConfig::Hdd(_)));
        assert_eq!(DiskDeviceConfig::default(), DiskDeviceConfig::midrange_ssd());
    }
}
