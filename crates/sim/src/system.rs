//! The simulated storage system: cache module + two device stations.

use lbica_cache::{CacheModule, CacheOutcome, TargetDevice, WritePolicy};
use lbica_obs::{NoProf, Phase, PhaseSink};
use lbica_storage::device::{AnyDeviceModel, DeviceModel, HddModel, SsdModel};
use lbica_storage::queue::DeviceQueue;
use lbica_storage::request::{IoRequest, RequestClass, RequestId, RequestOrigin};
use lbica_storage::snap::{SnapError, SnapReader, SnapWriter};
use lbica_storage::time::{SimDuration, SimTime};
use lbica_trace::monitor::{BlktraceProbe, IostatCollector, Tier};
use lbica_trace::record::TraceRecord;

use crate::config::{DiskDeviceConfig, SimulationConfig};
use crate::controller::BypassDirective;
use crate::event::{EventKind, EventQueue};
use crate::tracker::AppTracker;

/// Identifies one of the two device stations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierId {
    /// The SSD cache device.
    Ssd,
    /// The disk subsystem.
    Disk,
}

impl TierId {
    fn monitor_tier(self) -> Tier {
        match self {
            TierId::Ssd => Tier::Cache,
            TierId::Disk => Tier::Disk,
        }
    }
}

/// A device and the queue in front of it, with a fixed number of concurrent
/// service slots.
pub struct DeviceStation {
    pub(crate) queue: DeviceQueue,
    pub(crate) model: AnyDeviceModel,
    pub(crate) parallelism: usize,
    pub(crate) in_service: usize,
}

impl std::fmt::Debug for DeviceStation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceStation")
            .field("queue_depth", &self.queue.depth())
            .field("parallelism", &self.parallelism)
            .field("in_service", &self.in_service)
            .finish()
    }
}

impl DeviceStation {
    /// Creates a station with the given service model and parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn new(
        name: impl Into<String>,
        model: impl Into<AnyDeviceModel>,
        parallelism: usize,
    ) -> Self {
        assert!(parallelism > 0, "a device needs at least one service slot");
        // Merging is disabled at the station level: each derived request is
        // tied to the application request it serves, and coalescing two
        // requests would conflate their completions.
        DeviceStation {
            queue: DeviceQueue::without_merging(name),
            model: model.into(),
            parallelism,
            in_service: 0,
        }
    }

    /// The pending-request queue.
    pub fn queue(&self) -> &DeviceQueue {
        &self.queue
    }

    /// Number of requests currently being serviced.
    pub const fn in_service(&self) -> usize {
        self.in_service
    }

    /// Total outstanding work: queued plus in service.
    pub fn outstanding(&self) -> usize {
        self.queue.depth() + self.in_service
    }

    /// The device's blended average latency (Eq. 1's `ssdLatency` /
    /// `hddLatency`).
    pub fn avg_latency(&self) -> SimDuration {
        self.model.avg_latency()
    }

    /// Returns the station to its freshly constructed state — empty queue,
    /// zeroed statistics, no in-service requests, device history forgotten —
    /// while keeping the queue's ring buffer allocated.
    pub(crate) fn reset(&mut self) {
        self.queue.reset();
        self.model.reset_history();
        self.in_service = 0;
    }

    /// Serializes the station for a replay checkpoint: the queue (pending
    /// requests and statistics), the device model's service-relevant state
    /// and the in-service slot count. Parallelism and the device config are
    /// not stored — they are rebuilt from the simulation config.
    pub(crate) fn snap_to(&self, w: &mut SnapWriter) {
        self.queue.snap_to(w);
        self.model.snap_state_to(w);
        w.put_usize(self.in_service);
    }

    /// Restores state written by [`DeviceStation::snap_to`] into this
    /// config-built station.
    pub(crate) fn snap_state_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.queue = DeviceQueue::snap_from(r)?;
        self.model.snap_state_from(r)?;
        self.in_service = r.get_usize()?;
        if self.in_service > self.parallelism {
            return Err(SnapError::Corrupt("in-service count exceeds parallelism"));
        }
        Ok(())
    }
}

/// The full simulated system: application entry point, cache module, SSD and
/// disk stations, monitors and the event queue.
#[derive(Debug)]
pub struct StorageSystem {
    cache: CacheModule,
    ssd: DeviceStation,
    disk: DeviceStation,
    events: EventQueue,
    clock: SimTime,
    iostat: IostatCollector,
    probe: BlktraceProbe,
    app: AppTracker,
    next_id: RequestId,
    events_processed: u64,
    /// Reused per-arrival outcome buffer (no allocation in the hot loop).
    outcome_scratch: CacheOutcome,
}

impl StorageSystem {
    /// Builds a system from a [`SimulationConfig`].
    pub fn new(config: &SimulationConfig) -> Self {
        let mut cache = CacheModule::new(config.cache);
        if config.prewarm_cache {
            cache.prewarm_full();
        }
        let ssd_model = AnyDeviceModel::Ssd(SsdModel::new(config.cache_device));
        let disk_model = match config.disk_device {
            DiskDeviceConfig::MidrangeSsd(cfg) => AnyDeviceModel::Ssd(SsdModel::new(cfg)),
            DiskDeviceConfig::Hdd(cfg) => AnyDeviceModel::Hdd(HddModel::new(cfg)),
        };
        StorageSystem {
            cache,
            ssd: DeviceStation::new("ssd-cache", ssd_model, config.ssd_parallelism),
            disk: DeviceStation::new("disk-subsystem", disk_model, config.disk_parallelism),
            events: EventQueue::new(),
            clock: SimTime::ZERO,
            iostat: IostatCollector::new(),
            probe: BlktraceProbe::new(),
            app: AppTracker::new(),
            next_id: 1,
            events_processed: 0,
            outcome_scratch: CacheOutcome::new(),
        }
    }

    /// Returns the system to the state [`StorageSystem::new`] would produce
    /// for the same config, reusing every backing allocation: cache slot
    /// arenas, device-queue ring buffers, event-queue lanes and payload
    /// slab, tracker slabs and monitor histories all keep their capacity.
    /// The caller (the [`crate::SimArena`]) guarantees the config is
    /// identical to the one the system was built with.
    pub(crate) fn reset(&mut self, config: &SimulationConfig) {
        self.cache.reset();
        if config.prewarm_cache {
            self.cache.prewarm_full();
        }
        self.ssd.reset();
        self.disk.reset();
        self.events.reset();
        self.clock = SimTime::ZERO;
        self.iostat.reset();
        self.probe.reset();
        self.app.reset();
        self.next_id = 1;
        self.events_processed = 0;
        self.outcome_scratch.clear();
    }

    /// The current simulated time.
    pub const fn now(&self) -> SimTime {
        self.clock
    }

    /// The cache module (policy, stats, contents).
    pub fn cache(&self) -> &CacheModule {
        &self.cache
    }

    /// The SSD cache station.
    pub fn ssd(&self) -> &DeviceStation {
        &self.ssd
    }

    /// The disk-subsystem station.
    pub fn disk(&self) -> &DeviceStation {
        &self.disk
    }

    /// Number of application requests fully completed so far.
    pub fn app_completed(&self) -> u64 {
        self.app.completed()
    }

    /// Mean end-to-end latency of completed application requests, µs.
    pub fn app_avg_latency_us(&self) -> u64 {
        self.app.total_latency_us().checked_div(self.app.completed()).unwrap_or(0)
    }

    /// Maximum end-to-end latency of completed application requests, µs.
    pub const fn app_max_latency_us(&self) -> u64 {
        self.app.max_latency_us()
    }

    /// End-to-end application latency at `pct` (0–100), µs, log-bucketed.
    pub fn app_percentile_us(&self, pct: f64) -> u64 {
        self.app.percentile_us(pct)
    }

    /// The end-to-end application latency distribution.
    pub fn app_latency_histogram(&self) -> &lbica_storage::histogram::LatencyHistogram {
        self.app.latency_histogram()
    }

    /// Total number of discrete events processed by the event loop.
    pub const fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The largest event-queue depth ever reached.
    pub const fn peak_event_queue_depth(&self) -> usize {
        self.events.peak_len()
    }

    fn fresh_id(&mut self) -> RequestId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Schedules the arrival of an application request described by a trace
    /// record.
    pub fn schedule_record(&mut self, record: &TraceRecord) {
        let id = self.fresh_id();
        let request = record.to_request(id);
        self.events.schedule(request.arrival(), EventKind::Arrival(request));
    }

    /// Runs the event loop until every event at or before `limit` has been
    /// processed, then advances the clock to `limit`.
    pub fn run_until(&mut self, limit: SimTime) {
        self.run_until_with(limit, &mut NoProf);
    }

    /// [`StorageSystem::run_until`] with a [`PhaseSink`] attributing wall
    /// time to the hot loop's phases. The [`NoProf`] monomorphization is
    /// the unprofiled loop exactly — every sink call inlines to nothing —
    /// and a real profiler never feeds anything back, so the simulation is
    /// byte-identical either way.
    pub fn run_until_with<P: PhaseSink>(&mut self, limit: SimTime, prof: &mut P) {
        loop {
            let mark = prof.mark();
            let popped = self.events.pop_until(limit);
            prof.record(Phase::EventQueue, mark);
            let Some(event) = popped else { break };
            self.clock = event.time;
            self.events_processed += 1;
            match event.kind {
                EventKind::Arrival(request) => self.handle_arrival(request, prof),
                EventKind::Completion { tier, request } => {
                    self.handle_completion(tier, request, prof)
                }
                EventKind::LevelCompletion { .. } => {
                    unreachable!("the flat storage system schedules no tiered-level completions")
                }
            }
        }
        self.clock = limit;
    }

    fn handle_arrival<P: PhaseSink>(&mut self, request: IoRequest, prof: &mut P) {
        let now = self.clock;
        // Temporarily take the scratch buffer so the cache can fill it
        // while `self` stays borrowable for the enqueue fan-out.
        let mut outcome = std::mem::take(&mut self.outcome_scratch);
        let mark = prof.mark();
        self.cache.access_into(&request, &mut outcome);
        prof.record(Phase::CacheMap, mark);
        let datapath_ops =
            outcome.ops().iter().filter(|op| op.origin == RequestOrigin::Application).count()
                as u32;
        let mark = prof.mark();
        self.app.register(request.id(), now, datapath_ops);
        prof.record(Phase::Tracker, mark);
        let mark = prof.mark();
        self.enqueue_outcome(request.id(), &outcome, now);
        prof.record(Phase::DeviceModel, mark);
        self.outcome_scratch = outcome;
    }

    fn enqueue_outcome(&mut self, parent: RequestId, outcome: &CacheOutcome, now: SimTime) {
        let mut touched = [false; 2];
        for op in outcome.ops() {
            let id = self.fresh_id();
            let derived = IoRequest::from_range(id, op.kind, op.origin, op.range)
                .with_arrival(now)
                .with_parent(parent);
            let tier = match op.target {
                TargetDevice::Ssd => TierId::Ssd,
                TargetDevice::Hdd => TierId::Disk,
            };
            touched[(tier == TierId::Disk) as usize] = true;
            self.enqueue_at(tier, derived);
        }
        // A tier that received nothing cannot have become dispatchable:
        // capacity only frees on completion, which dispatches that tier
        // itself — so skipping it is a semantic no-op.
        if touched[0] {
            self.try_dispatch(TierId::Ssd);
        }
        if touched[1] {
            self.try_dispatch(TierId::Disk);
        }
    }

    fn enqueue_at(&mut self, tier: TierId, request: IoRequest) {
        self.iostat.record_enqueue(tier.monitor_tier());
        if tier == TierId::Ssd {
            // The blktrace-style probe counts every request that enters the
            // cache queue during the interval.
            self.probe.observe_class(request.class());
        }
        let station = self.station_mut(tier);
        station.queue.enqueue(request);
        let depth = station.queue.depth();
        self.iostat.observe_queue_depth(tier.monitor_tier(), depth);
    }

    fn station_mut(&mut self, tier: TierId) -> &mut DeviceStation {
        match tier {
            TierId::Ssd => &mut self.ssd,
            TierId::Disk => &mut self.disk,
        }
    }

    fn try_dispatch(&mut self, tier: TierId) {
        let now = self.clock;
        loop {
            let station = self.station_mut(tier);
            if station.in_service >= station.parallelism || station.queue.is_empty() {
                break;
            }
            let mut request = match station.queue.dispatch(now) {
                Some(r) => r,
                None => break,
            };
            let service = station.model.service_time(&request);
            station.in_service += 1;
            let completion_time = now + service;
            request.mark_completed(completion_time);
            self.events.schedule(completion_time, EventKind::Completion { tier, request });
        }
    }

    fn handle_completion<P: PhaseSink>(&mut self, tier: TierId, request: IoRequest, prof: &mut P) {
        let now = self.clock;
        let mark = prof.mark();
        {
            let station = self.station_mut(tier);
            station.in_service -= 1;
        }
        let latency = request.latency().map(|d| d.as_micros()).unwrap_or_default();
        self.iostat.record_completion(tier.monitor_tier(), latency);
        prof.record(Phase::DeviceModel, mark);
        if request.origin() == RequestOrigin::Application {
            if let Some(parent) = request.parent() {
                let mark = prof.mark();
                self.app.complete_op(parent, now);
                prof.record(Phase::Tracker, mark);
            }
        }
        let mark = prof.mark();
        self.try_dispatch(tier);
        prof.record(Phase::DeviceModel, mark);
    }

    /// Closes monitoring interval `index`, returning its report (queue
    /// depths, latencies and the interval's cache-queue class mix).
    pub fn end_interval(&mut self, index: u32) -> lbica_trace::monitor::IntervalReport {
        let cache_depth = self.ssd.outstanding();
        let disk_depth = self.disk.outstanding();
        let mut report = self.iostat.finish_interval(index, cache_depth, disk_depth);
        report.cache_queue_mix = self.probe.take();
        report.policy_label = self.cache.policy().label().to_string();
        report
    }

    /// The cache device's blended average latency (`ssdLatency`).
    pub fn cache_avg_latency(&self) -> SimDuration {
        self.ssd.avg_latency()
    }

    /// The disk subsystem's blended average latency (`hddLatency`).
    pub fn disk_avg_latency(&self) -> SimDuration {
        self.disk.avg_latency()
    }

    /// The current write policy of the cache.
    pub fn policy(&self) -> WritePolicy {
        self.cache.policy()
    }

    /// Assigns a new write policy to the cache module.
    pub fn set_policy(&mut self, policy: WritePolicy) {
        self.cache.set_policy(policy);
    }

    /// Applies a controller's bypass directive: moves the selected requests
    /// out of the cache queue and serves them from the disk subsystem.
    /// Returns how many requests were moved or cancelled.
    pub fn apply_bypass(&mut self, directive: &BypassDirective) -> usize {
        let moved = match directive {
            BypassDirective::None => Vec::new(),
            // A spill on a flat system has nowhere to go but the disk, so
            // the two tail directives coincide here.
            BypassDirective::TailWrites { max_requests }
            | BypassDirective::SpillTailWrites { max_requests, .. } => {
                self.ssd.queue.drain_tail(*max_requests, |r| r.class() == RequestClass::Write)
            }
            // A read spill has no flat analogue: there is no lower level to
            // serve from, and the paper never bypasses reads to the disk
            // subsystem, so the directive is a no-op here.
            BypassDirective::SpillTailReads { .. } => Vec::new(),
            BypassDirective::Requests(ids) => self.ssd.queue.remove_by_ids(ids),
        };
        let count = moved.len();
        for request in moved {
            self.redirect_to_disk(request);
        }
        if count > 0 {
            self.try_dispatch(TierId::Disk);
        }
        count
    }

    fn redirect_to_disk(&mut self, request: IoRequest) {
        match request.class() {
            RequestClass::Write | RequestClass::Read => {
                // The block's cached copy (if any) is stale or redundant once
                // the request is served by the disk subsystem.
                for block in request.range().block_indices() {
                    if request.class() == RequestClass::Write {
                        self.cache.invalidate_block(block);
                    }
                }
                self.enqueue_at(TierId::Disk, request);
            }
            RequestClass::Promote => {
                // Cancelling a promotion: the block never makes it into the
                // cache, so drop the metadata entry that was pre-created.
                for block in request.range().block_indices() {
                    self.cache.invalidate_block(block);
                }
            }
            RequestClass::Evict => {
                // Evictions carry dirty victim data; they must stay on the
                // cache device. Put the request back.
                self.ssd.queue.enqueue(request);
            }
        }
    }

    /// Read-only access to the cache queue (for controller contexts).
    pub fn cache_queue(&self) -> &DeviceQueue {
        self.ssd.queue()
    }

    /// Serializes the full mid-flight system state for a replay checkpoint.
    ///
    /// Meant to be called at a monitoring-interval boundary (after
    /// [`StorageSystem::end_interval`]). The monitors' *in-progress*
    /// accumulators are stored too: they are usually fresh at a boundary,
    /// but a boundary-time controller action — a bypass moving queued
    /// requests to the disk subsystem — has already fed the next interval's
    /// counters by the time the snapshot is taken. The finished-interval
    /// history is not stored; the runner's accumulated reports carry it.
    pub fn snap_to(&self, w: &mut SnapWriter) {
        self.cache.snap_to(w);
        self.ssd.snap_to(w);
        self.disk.snap_to(w);
        self.events.snap_to(w);
        w.put_u64(self.clock.as_micros());
        self.app.snap_to(w);
        w.put_u64(self.next_id);
        w.put_u64(self.events_processed);
        self.iostat.snap_to(w);
        self.probe.snap_to(w);
    }

    /// Restores state written by [`StorageSystem::snap_to`] into this
    /// config-built system. The config must match the one the snapshot was
    /// taken under; geometry mismatches surface as typed
    /// [`SnapError::Corrupt`] errors.
    pub fn snap_state_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cache.snap_state_from(r)?;
        self.ssd.snap_state_from(r)?;
        self.disk.snap_state_from(r)?;
        self.events.snap_state_from(r)?;
        self.clock = SimTime::from_micros(r.get_u64()?);
        self.app.snap_state_from(r)?;
        self.next_id = r.get_u64()?;
        self.events_processed = r.get_u64()?;
        self.iostat.snap_state_from(r)?;
        self.probe.snap_state_from(r)?;
        Ok(())
    }

    /// Number of events still pending (for drain loops at the end of a run).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Drains outstanding work by running the event loop in fixed 100 ms
    /// steps until no events remain, but for at most `max_steps` steps —
    /// a hard cap that bounds the wall-clock cost of a pathological
    /// backlog. Returns `true` if the system fully drained.
    pub fn drain(&mut self, max_steps: u32) -> bool {
        self.drain_with(max_steps, &mut NoProf)
    }

    /// [`StorageSystem::drain`] with phase attribution (see
    /// [`StorageSystem::run_until_with`]).
    pub fn drain_with<P: PhaseSink>(&mut self, max_steps: u32, prof: &mut P) -> bool {
        let step = SimDuration::from_millis(100);
        let mut steps = 0;
        while self.pending_events() > 0 {
            if steps >= max_steps {
                return false;
            }
            let boundary = self.now() + step;
            self.run_until_with(boundary, prof);
            steps += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbica_storage::request::RequestKind;

    fn record(ts: u64, sector: u64, kind: RequestKind) -> TraceRecord {
        TraceRecord::new(ts, sector, 8, kind)
    }

    fn tiny_system() -> StorageSystem {
        StorageSystem::new(&SimulationConfig::tiny())
    }

    #[test]
    fn prewarmed_read_hits_complete_on_the_ssd_only() {
        let mut sys = tiny_system();
        sys.schedule_record(&record(0, 0, RequestKind::Read));
        sys.run_until(SimTime::from_millis(10));
        assert_eq!(sys.app_completed(), 1);
        let report = sys.end_interval(0);
        assert_eq!(report.cache.completed, 1);
        assert_eq!(report.disk.completed, 0);
        // A single uncontended SSD read: latency equals the device's read
        // latency.
        assert_eq!(report.cache.max_latency_us, 90);
    }

    #[test]
    fn read_miss_touches_both_tiers() {
        let mut sys = tiny_system();
        // Address far outside the prewarmed region.
        sys.schedule_record(&record(0, 10_000_000, RequestKind::Read));
        sys.run_until(SimTime::from_millis(50));
        let report = sys.end_interval(0);
        assert_eq!(report.disk.completed, 1, "miss data comes from the disk subsystem");
        assert!(report.cache.completed >= 1, "the promote lands on the SSD");
        assert_eq!(sys.app_completed(), 1);
        assert_eq!(sys.cache().stats().read_misses, 1);
    }

    #[test]
    fn app_latency_tracks_slowest_datapath_leg() {
        let mut sys = tiny_system();
        sys.schedule_record(&record(0, 10_000_000, RequestKind::Read));
        sys.run_until(SimTime::from_millis(50));
        // Miss served by the mid-range-SSD disk tier: ~350 µs.
        assert!(sys.app_avg_latency_us() >= 300, "got {}", sys.app_avg_latency_us());
        assert!(sys.app_max_latency_us() >= sys.app_avg_latency_us());
    }

    #[test]
    fn queue_builds_up_when_arrivals_exceed_service_rate() {
        let mut sys = tiny_system();
        // 200 writes arriving in the same microsecond: the single-slot SSD
        // cannot keep up.
        for i in 0..200u64 {
            sys.schedule_record(&record(1, (i % 500) * 8, RequestKind::Write));
        }
        sys.run_until(SimTime::from_micros(2_000));
        assert!(sys.ssd().outstanding() > 50, "outstanding {}", sys.ssd().outstanding());
        let report = sys.end_interval(0);
        assert!(report.cache.queue_depth > 50);
        assert!(report.cache_queue_mix.writes >= 150);
    }

    #[test]
    fn bypass_tail_writes_moves_load_to_the_disk() {
        let mut sys = tiny_system();
        for i in 0..100u64 {
            sys.schedule_record(&record(1, (i % 500) * 8, RequestKind::Write));
        }
        sys.run_until(SimTime::from_micros(1_000));
        let before = sys.ssd().outstanding();
        let moved = sys.apply_bypass(&BypassDirective::TailWrites { max_requests: 40 });
        assert!(moved > 0);
        assert!(sys.ssd().outstanding() < before);
        assert!(sys.disk().outstanding() > 0);
        // Invalidations were recorded for the redirected writes.
        assert!(sys.cache().stats().invalidations > 0);
    }

    #[test]
    fn bypass_none_is_a_no_op() {
        let mut sys = tiny_system();
        sys.schedule_record(&record(0, 0, RequestKind::Write));
        sys.run_until(SimTime::from_micros(10));
        assert_eq!(sys.apply_bypass(&BypassDirective::None), 0);
    }

    #[test]
    fn policy_switch_takes_effect_for_future_accesses() {
        let mut sys = tiny_system();
        sys.set_policy(WritePolicy::ReadOnly);
        assert_eq!(sys.policy(), WritePolicy::ReadOnly);
        sys.schedule_record(&record(0, 0, RequestKind::Write));
        sys.run_until(SimTime::from_millis(10));
        let report = sys.end_interval(0);
        // The write bypassed the cache entirely.
        assert_eq!(report.disk.completed, 1);
        assert_eq!(report.cache.completed, 0);
    }

    #[test]
    fn interval_reports_reset_between_intervals() {
        let mut sys = tiny_system();
        sys.schedule_record(&record(0, 0, RequestKind::Read));
        sys.run_until(SimTime::from_millis(1));
        let r0 = sys.end_interval(0);
        assert_eq!(r0.cache.completed, 1);
        sys.run_until(SimTime::from_millis(2));
        let r1 = sys.end_interval(1);
        assert_eq!(r1.cache.completed, 0);
        assert_eq!(r1.index, 1);
    }

    #[test]
    fn drain_completes_a_finite_backlog_and_reports_success() {
        let mut sys = tiny_system();
        for i in 0..50u64 {
            sys.schedule_record(&record(0, (i % 500) * 8, RequestKind::Write));
        }
        assert!(sys.drain(600), "50 requests drain well within the cap");
        assert_eq!(sys.app_completed(), 50);
        assert_eq!(sys.pending_events(), 0);
    }

    #[test]
    fn drain_terminates_on_a_pathological_backlog() {
        let mut sys = tiny_system();
        // 20 000 simultaneous writes through a single-slot SSD (~90 µs
        // each) need ~1.8 simulated seconds — far beyond a 3-step
        // (300 ms) cap. The old open-ended loop would keep extending its
        // deadline; `drain` must give up instead.
        for i in 0..20_000u64 {
            sys.schedule_record(&record(0, (i % 500) * 8, RequestKind::Write));
        }
        assert!(!sys.drain(3), "the cap must trip before the backlog clears");
        assert!(sys.pending_events() > 0);
        // The clock advanced exactly max_steps × 100 ms.
        assert_eq!(sys.now(), SimTime::from_millis(300));
    }

    #[test]
    fn mid_flight_snapshot_resumes_identically_to_the_unsplit_run() {
        let config = SimulationConfig::tiny();
        let schedule_first = |sys: &mut StorageSystem| {
            for i in 0..200u64 {
                let kind = if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read };
                sys.schedule_record(&record(i * 5, (i % 700) * 8, kind));
            }
        };
        let mut sys = StorageSystem::new(&config);
        schedule_first(&mut sys);
        sys.run_until(SimTime::from_micros(500));
        let _ = sys.end_interval(0);
        assert!(sys.pending_events() > 0, "the snapshot must cover in-flight work");

        let mut w = SnapWriter::new();
        sys.snap_to(&mut w);
        let bytes = w.into_bytes();
        let mut restored = StorageSystem::new(&config);
        let mut r = SnapReader::new(&bytes);
        restored.snap_state_from(&mut r).unwrap();
        r.finish().unwrap();

        // Drive both through an identical second interval.
        for s in [&mut sys, &mut restored] {
            for i in 0..50u64 {
                s.schedule_record(&record(520 + i * 3, (i % 900) * 8, RequestKind::Read));
            }
            s.run_until(SimTime::from_micros(1_000));
        }
        assert_eq!(restored.now(), sys.now());
        assert_eq!(restored.end_interval(1), sys.end_interval(1));
        assert_eq!(restored.events_processed(), sys.events_processed());
        assert_eq!(restored.app_completed(), sys.app_completed());
        assert_eq!(restored.app_avg_latency_us(), sys.app_avg_latency_us());
        assert_eq!(restored.cache().stats(), sys.cache().stats());
        assert_eq!(restored.pending_events(), sys.pending_events());
        assert!(restored.drain(600) && sys.drain(600));
        assert_eq!(restored.app_completed(), sys.app_completed());
        assert_eq!(restored.app_max_latency_us(), sys.app_max_latency_us());
    }

    #[test]
    fn conservation_all_scheduled_requests_eventually_complete() {
        let mut sys = tiny_system();
        for i in 0..300u64 {
            sys.schedule_record(&record(
                i * 20,
                (i % 2_000) * 8,
                if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read },
            ));
        }
        // Run far past the last arrival so every queue drains.
        sys.run_until(SimTime::from_secs(10));
        assert_eq!(sys.app_completed(), 300);
        assert_eq!(sys.pending_events(), 0);
        assert_eq!(sys.ssd().outstanding(), 0);
        assert_eq!(sys.disk().outstanding(), 0);
    }
}
