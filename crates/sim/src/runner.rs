//! The per-workload simulation driver.

use lbica_obs::{NoProf, Phase, PhaseProfiler, PhaseSink, QueueTier, SimObserver};
use lbica_trace::workload::WorkloadSpec;

use crate::arena::SimArena;
use crate::checkpoint::ReplayCheckpoint;
use crate::config::SimulationConfig;
use crate::controller::{CacheController, ControllerContext, TierLoad};
use crate::report::{PolicyChange, SimulationReport};
use crate::system::StorageSystem;
use crate::tiered::TieredStorageSystem;

use lbica_storage::snap::{SnapError, SnapReader, SnapWriter};
use lbica_storage::time::SimTime;
use lbica_trace::monitor::IntervalReport;

/// Drives one [`WorkloadSpec`] through a [`StorageSystem`] under a
/// [`CacheController`], interval by interval, producing a
/// [`SimulationReport`].
///
/// The loop mirrors the paper's deployment: the workload runs continuously;
/// once per monitoring interval the `iostat`/`blktrace` measurements are
/// gathered, handed to the controller, and the controller's policy /
/// bypass decision is applied before the next interval starts.
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
    spec: WorkloadSpec,
    seed: u64,
    drain_at_end: bool,
    observer: Option<SimObserver>,
    profiler: Option<PhaseProfiler>,
}

impl Simulation {
    /// Creates a simulation of `spec` with the given configuration and
    /// random seed.
    pub fn new(config: SimulationConfig, spec: WorkloadSpec, seed: u64) -> Self {
        Simulation { config, spec, seed, drain_at_end: true, observer: None, profiler: None }
    }

    /// Disables draining outstanding requests after the last interval
    /// (builder style). Draining is enabled by default so that conservation
    /// checks and aggregate latencies cover every request.
    pub fn without_drain(mut self) -> Self {
        self.drain_at_end = false;
        self
    }

    /// Attaches an observer that records interval-granularity trace events
    /// and metrics during the run (builder style). Observability is
    /// strictly out-of-band: the report of an observed run is byte-identical
    /// to an unobserved one, and with no observer attached the run pays
    /// zero instrumentation cost.
    pub fn with_observer(mut self, observer: SimObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Detaches and returns the observer (with everything it recorded),
    /// if one was attached.
    pub fn take_observer(&mut self) -> Option<SimObserver> {
        self.observer.take()
    }

    /// Attaches a phase profiler that attributes the run's *wall* time to
    /// the hot loop's subsystems (builder style). Like the observer, the
    /// profiler is write-only: a profiled run's report is byte-identical
    /// to an unprofiled one, and with no profiler attached the loop runs
    /// its [`lbica_obs::NoProf`] monomorphization — the exact pre-profiler
    /// code, zero instrumentation cost.
    pub fn with_profiler(mut self, profiler: PhaseProfiler) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Detaches and returns the profiler (with the run's accumulated
    /// phase totals), if one was attached.
    pub fn take_profiler(&mut self) -> Option<PhaseProfiler> {
        self.profiler.take()
    }

    /// The workload being simulated.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The configuration in use.
    pub const fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Runs the full workload under `controller` and returns the report.
    ///
    /// Configurations describing two or more cache levels run on the
    /// tiered datapath ([`TieredStorageSystem`]);
    /// everything else takes
    /// the paper's flat single-SSD path, which is untouched by the tier
    /// subsystem (single-tier results are bit-identical to the seed).
    pub fn run(&mut self, controller: &mut dyn CacheController) -> SimulationReport {
        let mut arena = SimArena::new();
        self.run_in(controller, &mut arena)
    }

    /// Like [`Simulation::run`], but sourcing (and returning) the simulated
    /// system's backing stores from `arena`, so consecutive runs of the same
    /// [`SimulationConfig`] on one thread reuse their allocations instead of
    /// rebuilding them per run. Reset is observationally equivalent to fresh
    /// construction (see [`SimArena`]), so the report — and any observed
    /// trace — is byte-identical to [`Simulation::run`]'s.
    pub fn run_in(
        &mut self,
        controller: &mut dyn CacheController,
        arena: &mut SimArena,
    ) -> SimulationReport {
        // The profiler is threaded as a generic PhaseSink so the
        // no-profiler path monomorphizes to the uninstrumented loop; it is
        // taken out of `self` for the duration of the run and restored
        // afterwards (mirroring how callers retrieve it via
        // `take_profiler`).
        match self.profiler.take() {
            Some(mut prof) => {
                let report = if self.config.is_tiered() {
                    self.run_tiered(controller, arena, &mut prof)
                } else {
                    self.run_flat(controller, arena, &mut prof)
                };
                self.profiler = Some(prof);
                report
            }
            None => {
                if self.config.is_tiered() {
                    self.run_tiered(controller, arena, &mut NoProf)
                } else {
                    self.run_flat(controller, arena, &mut NoProf)
                }
            }
        }
    }

    /// The flat-datapath interval loop (see [`Simulation::run_in`]).
    fn run_flat<P: PhaseSink>(
        &mut self,
        controller: &mut dyn CacheController,
        arena: &mut SimArena,
        prof: &mut P,
    ) -> SimulationReport {
        let mut system = arena.take_flat(&self.config);
        system.set_policy(controller.initial_policy());

        let total_intervals = self.spec.total_intervals();
        let interval_us = self.spec.interval_us();
        let mut intervals = Vec::with_capacity(total_intervals as usize);
        let mut policy_changes = vec![PolicyChange {
            interval: 0,
            policy: controller.initial_policy().label().to_string(),
        }];
        let mut bypassed_total = 0u64;

        for index in 0..total_intervals {
            // 1. Feed the interval's arrivals and run the event loop to the
            //    interval boundary.
            let mark = prof.mark();
            for record in self.spec.generate_interval(index, self.seed) {
                system.schedule_record(&record);
            }
            prof.record(Phase::EventQueue, mark);
            let boundary = SimTime::from_micros((index as u64 + 1) * interval_us);
            system.run_until_with(boundary, prof);

            // 2. Gather the iostat/blktrace measurements for the interval.
            let mark = prof.mark();
            let mut report = system.end_interval(index);
            prof.record(Phase::Report, mark);

            // 3. Consult the controller and apply its decision.
            let mark = prof.mark();
            let decision = {
                let ctx = ControllerContext {
                    interval_index: index,
                    now: system.now(),
                    cache_queue_depth: report.cache.queue_depth,
                    disk_queue_depth: report.disk.queue_depth,
                    cache_avg_latency: system.cache_avg_latency(),
                    disk_avg_latency: system.disk_avg_latency(),
                    cache_queue_mix: report.cache_queue_mix,
                    current_policy: system.policy(),
                    cache_queue: system.cache_queue(),
                    tier_loads: &[],
                    tier_policies: &[],
                };
                controller.on_interval(&ctx)
            };

            report.burst_detected = decision.burst_detected;
            let policy_switched = decision.policy != system.policy();
            if policy_switched {
                system.set_policy(decision.policy);
                policy_changes.push(PolicyChange {
                    interval: index + 1,
                    policy: decision.policy.label().to_string(),
                });
            }
            let moved = system.apply_bypass(&decision.bypass) as u64;
            bypassed_total += moved;
            prof.record(Phase::Controller, mark);

            // Out-of-band observability: reads interval measurements, never
            // feeds anything back into the system or the report.
            if let Some(obs) = self.observer.as_mut() {
                let start_us = index as u64 * interval_us;
                let end_us = start_us + interval_us;
                obs.interval_rollover(
                    index,
                    start_us,
                    interval_us,
                    report.cache.completed,
                    report.disk.completed,
                );
                obs.queue_high_water(
                    end_us,
                    index,
                    QueueTier::Cache,
                    report.cache.peak_queue_depth as u64,
                );
                obs.queue_high_water(
                    end_us,
                    index,
                    QueueTier::Disk,
                    report.disk.peak_queue_depth as u64,
                );
                if decision.burst_detected {
                    obs.burst(end_us, index);
                }
                if policy_switched {
                    obs.policy_change(end_us, index + 1, decision.policy.label());
                }
                obs.bypass(end_us, index, moved);
            }

            intervals.push(report);
        }

        if self.drain_at_end {
            // Let in-flight and queued requests finish so aggregate latencies
            // cover the whole workload. 600 × 100 ms = 60 simulated seconds,
            // a hard cap: a backlog the system cannot clear in that window
            // is truncated rather than chased forever.
            system.drain_with(600, prof);
        }

        if let Some(obs) = self.observer.as_mut() {
            controller.export_obs(obs, interval_us);
            obs.run_totals(
                system.events_processed(),
                system.app_completed(),
                system.peak_event_queue_depth() as u64,
            );
            obs.observe_app_latency(system.app_latency_histogram());
        }

        let mark = prof.mark();
        let report = SimulationReport {
            workload: self.spec.name().to_string(),
            controller: controller.name().to_string(),
            total_intervals,
            intervals,
            policy_changes,
            app_completed: system.app_completed(),
            app_avg_latency_us: system.app_avg_latency_us(),
            app_max_latency_us: system.app_max_latency_us(),
            app_p50_latency_us: system.app_percentile_us(50.0),
            app_p95_latency_us: system.app_percentile_us(95.0),
            app_p99_latency_us: system.app_percentile_us(99.0),
            bypassed_requests: bypassed_total,
            cache_stats: *system.cache().stats(),
            perf: crate::report::SimPerf {
                events_processed: system.events_processed(),
                peak_event_queue_depth: system.peak_event_queue_depth(),
            },
            tier_stats: Vec::new(),
        };
        prof.record(Phase::Report, mark);
        arena.store_flat(self.config, system);
        report
    }

    /// The tiered-datapath twin of [`Simulation::run`]: same interval loop,
    /// same controller protocol, but the system is an N-level hierarchy and
    /// the controller additionally sees the per-level tier-load vector (so
    /// tier-aware balancers can answer with spill directives).
    ///
    /// The loop is deliberately duplicated rather than abstracted over the
    /// two system types: the flat path is pinned bit-identical to the seed
    /// by the figure characterization tests, and keeping it monomorphic and
    /// untouched is the cheapest way to guarantee that. (Both loops are
    /// generic over the [`PhaseSink`] only — the `NoProf` instantiation
    /// compiles to the uninstrumented loop.) Changes to the interval
    /// protocol must be applied to both loops.
    fn run_tiered<P: PhaseSink>(
        &mut self,
        controller: &mut dyn CacheController,
        arena: &mut SimArena,
        prof: &mut P,
    ) -> SimulationReport {
        let mut system = arena.take_tiered(&self.config);
        // On an explicitly per-tier topology `set_policy` drives the hot
        // tier only (lower levels are config-pinned; see
        // `TieredCacheModule::set_policy`), so a configured warm-tier
        // policy survives run start, every burst switch and every revert.
        system.set_policy(controller.initial_policy());

        let total_intervals = self.spec.total_intervals();
        let interval_us = self.spec.interval_us();
        let mut intervals = Vec::with_capacity(total_intervals as usize);
        let mut policy_changes =
            vec![PolicyChange { interval: 0, policy: tier_policy_label(system.level_policies()) }];
        let mut bypassed_total = 0u64;
        let mut tier_loads: Vec<TierLoad> = Vec::with_capacity(system.tier_count());
        // Cumulative (promotions, demotions) at the last observed interval,
        // so the observer can trace per-interval movement deltas.
        let mut observed_moves = (0u64, 0u64);

        for index in 0..total_intervals {
            let mark = prof.mark();
            for record in self.spec.generate_interval(index, self.seed) {
                system.schedule_record(&record);
            }
            prof.record(Phase::EventQueue, mark);
            let boundary = SimTime::from_micros((index as u64 + 1) * interval_us);
            system.run_until_with(boundary, prof);

            let mut report = system.end_interval_with(index, prof);
            let mark = prof.mark();
            system.tier_loads_into(&mut tier_loads);
            prof.record(Phase::Report, mark);

            let mark = prof.mark();
            let decision = {
                let ctx = ControllerContext {
                    interval_index: index,
                    now: system.now(),
                    cache_queue_depth: report.cache.queue_depth,
                    disk_queue_depth: report.disk.queue_depth,
                    cache_avg_latency: system.cache_avg_latency(),
                    disk_avg_latency: system.disk_avg_latency(),
                    cache_queue_mix: report.cache_queue_mix,
                    current_policy: system.policy(),
                    cache_queue: system.cache_queue(),
                    tier_loads: &tier_loads,
                    tier_policies: system.level_policies(),
                };
                controller.on_interval(&ctx)
            };

            report.burst_detected = decision.burst_detected;
            let mut policy_switched = false;
            if decision.tier_policies.is_empty() {
                // The paper's single policy knob (which drives the hot tier
                // only on an explicitly per-tier stack); the recorded label
                // is the resulting hot-to-cold assignment.
                if decision.policy != system.policy() {
                    system.set_policy(decision.policy);
                    policy_changes.push(PolicyChange {
                        interval: index + 1,
                        policy: tier_policy_label(system.level_policies()),
                    });
                    policy_switched = true;
                }
            } else if system.level_policies() != decision.tier_policies.as_slice() {
                // Tier-aware assignment: one policy per level, recorded as
                // a composite hot-to-cold label (e.g. "WO/WB").
                system.set_level_policies(&decision.tier_policies);
                policy_changes.push(PolicyChange {
                    interval: index + 1,
                    policy: tier_policy_label(&decision.tier_policies),
                });
                policy_switched = true;
            }
            // `bypassed_requests` keeps its flat-path meaning — requests
            // reclassified *to the disk*. Spills (write and read alike)
            // stay in the hierarchy and are accounted separately
            // (tier_stats / spilled_requests() / spilled_reads()).
            let spilled_writes_before = system.spilled_requests();
            let spilled_reads_before = system.spilled_reads();
            let moved = system.apply_bypass(&decision.bypass) as u64;
            let spill_writes = system.spilled_requests() - spilled_writes_before;
            let spill_reads = system.spilled_reads() - spilled_reads_before;
            bypassed_total += moved - (spill_writes + spill_reads);
            prof.record(Phase::Controller, mark);

            // Out-of-band observability, mirroring the flat loop plus the
            // tier-movement events only this datapath can produce.
            if let Some(obs) = self.observer.as_mut() {
                let start_us = index as u64 * interval_us;
                let end_us = start_us + interval_us;
                obs.interval_rollover(
                    index,
                    start_us,
                    interval_us,
                    report.cache.completed,
                    report.disk.completed,
                );
                obs.queue_high_water(
                    end_us,
                    index,
                    QueueTier::Cache,
                    report.cache.peak_queue_depth as u64,
                );
                obs.queue_high_water(
                    end_us,
                    index,
                    QueueTier::Disk,
                    report.disk.peak_queue_depth as u64,
                );
                if decision.burst_detected {
                    obs.burst(end_us, index);
                }
                if policy_switched {
                    let label = &policy_changes.last().expect("just pushed").policy;
                    obs.policy_change(end_us, index + 1, label);
                }
                obs.bypass(end_us, index, moved - (spill_writes + spill_reads));
                obs.spill_writes(end_us, index, spill_writes);
                obs.spill_reads(end_us, index, spill_reads);
                let (promotions, demotions) = system.movement_totals();
                obs.promotions(end_us, index, promotions - observed_moves.0);
                obs.demotions(end_us, index, demotions - observed_moves.1);
                observed_moves = (promotions, demotions);
            }

            intervals.push(report);
        }

        if self.drain_at_end {
            system.drain_with(600, prof);
        }

        if let Some(obs) = self.observer.as_mut() {
            controller.export_obs(obs, interval_us);
            obs.run_totals(
                system.events_processed(),
                system.app_completed(),
                system.peak_event_queue_depth() as u64,
            );
            obs.observe_app_latency(system.app_latency_histogram());
        }

        // The headline cache stats stay hot-tier shaped (hit/miss/bypass of
        // the level every application request is judged against); the full
        // per-level breakdown rides in `tier_stats`.
        let mark = prof.mark();
        let report = SimulationReport {
            workload: self.spec.name().to_string(),
            controller: controller.name().to_string(),
            total_intervals,
            intervals,
            policy_changes,
            app_completed: system.app_completed(),
            app_avg_latency_us: system.app_avg_latency_us(),
            app_max_latency_us: system.app_max_latency_us(),
            app_p50_latency_us: system.app_percentile_us(50.0),
            app_p95_latency_us: system.app_percentile_us(95.0),
            app_p99_latency_us: system.app_percentile_us(99.0),
            bypassed_requests: bypassed_total,
            cache_stats: *system.cache().stats(0),
            perf: crate::report::SimPerf {
                events_processed: system.events_processed(),
                peak_event_queue_depth: system.peak_event_queue_depth(),
            },
            tier_stats: system.tier_level_stats(),
        };
        prof.record(Phase::Report, mark);
        arena.store_tiered(self.config, system);
        report
    }

    /// Runs intervals `[0, split_at)` and pauses, returning a
    /// [`ReplayCheckpoint`] that [`Simulation::resume_from_checkpoint`]
    /// continues byte-identically to the unsplit run.
    ///
    /// Checkpoints are taken at monitoring-interval boundaries, where the
    /// iostat/blktrace accumulators are freshly reset — the only points at
    /// which the monitors carry no state that would have to be serialized.
    /// `split_at` may equal the workload's interval count, in which case the
    /// resume only drains and builds the report. Checkpointed runs execute
    /// unobserved and unprofiled: attach neither, or this returns an error.
    pub fn run_to_checkpoint(
        &mut self,
        controller: &mut dyn CacheController,
        split_at: u32,
    ) -> Result<ReplayCheckpoint, SnapError> {
        if self.observer.is_some() || self.profiler.is_some() {
            return Err(SnapError::Corrupt("checkpoint runs execute unobserved"));
        }
        let total_intervals = self.spec.total_intervals();
        if split_at > total_intervals {
            return Err(SnapError::Corrupt("checkpoint split beyond workload end"));
        }
        let tiered = self.config.is_tiered();
        let mut arena = SimArena::new();
        let mut intervals = Vec::with_capacity(split_at as usize);
        let mut bypassed_total = 0u64;
        let mut w = SnapWriter::new();
        let policy_changes;
        if tiered {
            let mut system = arena.take_tiered(&self.config);
            system.set_policy(controller.initial_policy());
            let mut changes = vec![PolicyChange {
                interval: 0,
                policy: tier_policy_label(system.level_policies()),
            }];
            self.tiered_span(
                &mut system,
                controller,
                0,
                split_at,
                &mut intervals,
                &mut changes,
                &mut bypassed_total,
            );
            policy_changes = changes;
            system.snap_to(&mut w);
        } else {
            let mut system = arena.take_flat(&self.config);
            system.set_policy(controller.initial_policy());
            let mut changes = vec![PolicyChange {
                interval: 0,
                policy: controller.initial_policy().label().to_string(),
            }];
            self.flat_span(
                &mut system,
                controller,
                0,
                split_at,
                &mut intervals,
                &mut changes,
                &mut bypassed_total,
            );
            policy_changes = changes;
            system.snap_to(&mut w);
        }
        controller.save_state(&mut w);
        Ok(ReplayCheckpoint {
            workload: self.spec.name().to_string(),
            controller: controller.name().to_string(),
            seed: self.seed,
            tiered,
            next_interval: split_at,
            total_intervals,
            bypassed_total,
            intervals,
            policy_changes,
            state: w.into_bytes(),
        })
    }

    /// Continues a run paused by [`Simulation::run_to_checkpoint`], restoring
    /// the storage system and the controller and executing the remaining
    /// intervals. The returned report is byte-identical to the report the
    /// unsplit run would have produced.
    ///
    /// The checkpoint's identity fields are validated against this
    /// simulation and `controller`; any mismatch (different workload, seed,
    /// controller, datapath, or interval count) is a typed error, never a
    /// silently wrong replay.
    pub fn resume_from_checkpoint(
        &mut self,
        controller: &mut dyn CacheController,
        cp: &ReplayCheckpoint,
    ) -> Result<SimulationReport, SnapError> {
        if self.observer.is_some() || self.profiler.is_some() {
            return Err(SnapError::Corrupt("checkpoint runs execute unobserved"));
        }
        if cp.tiered != self.config.is_tiered() {
            return Err(SnapError::Corrupt("checkpoint datapath mismatch"));
        }
        if cp.workload != self.spec.name() {
            return Err(SnapError::Corrupt("checkpoint workload mismatch"));
        }
        if cp.seed != self.seed {
            return Err(SnapError::Corrupt("checkpoint seed mismatch"));
        }
        if cp.controller != controller.name() {
            return Err(SnapError::Corrupt("checkpoint controller mismatch"));
        }
        if cp.total_intervals != self.spec.total_intervals() {
            return Err(SnapError::Corrupt("checkpoint interval count mismatch"));
        }
        if cp.next_interval > cp.total_intervals {
            return Err(SnapError::Corrupt("checkpoint interval beyond workload end"));
        }
        let mut arena = SimArena::new();
        let mut intervals = cp.intervals.clone();
        let mut policy_changes = cp.policy_changes.clone();
        let mut bypassed_total = cp.bypassed_total;
        let mut r = SnapReader::new(&cp.state);
        if cp.tiered {
            let mut system = arena.take_tiered(&self.config);
            // The restored cache carries the checkpointed write policy;
            // `set_policy(initial)` is deliberately *not* replayed.
            system.snap_state_from(&mut r)?;
            controller.restore_state(&mut r)?;
            r.finish()?;
            self.tiered_span(
                &mut system,
                controller,
                cp.next_interval,
                cp.total_intervals,
                &mut intervals,
                &mut policy_changes,
                &mut bypassed_total,
            );
            if self.drain_at_end {
                system.drain_with(600, &mut NoProf);
            }
            Ok(SimulationReport {
                workload: self.spec.name().to_string(),
                controller: controller.name().to_string(),
                total_intervals: cp.total_intervals,
                intervals,
                policy_changes,
                app_completed: system.app_completed(),
                app_avg_latency_us: system.app_avg_latency_us(),
                app_max_latency_us: system.app_max_latency_us(),
                app_p50_latency_us: system.app_percentile_us(50.0),
                app_p95_latency_us: system.app_percentile_us(95.0),
                app_p99_latency_us: system.app_percentile_us(99.0),
                bypassed_requests: bypassed_total,
                cache_stats: *system.cache().stats(0),
                perf: crate::report::SimPerf {
                    events_processed: system.events_processed(),
                    peak_event_queue_depth: system.peak_event_queue_depth(),
                },
                tier_stats: system.tier_level_stats(),
            })
        } else {
            let mut system = arena.take_flat(&self.config);
            system.snap_state_from(&mut r)?;
            controller.restore_state(&mut r)?;
            r.finish()?;
            self.flat_span(
                &mut system,
                controller,
                cp.next_interval,
                cp.total_intervals,
                &mut intervals,
                &mut policy_changes,
                &mut bypassed_total,
            );
            if self.drain_at_end {
                system.drain_with(600, &mut NoProf);
            }
            Ok(SimulationReport {
                workload: self.spec.name().to_string(),
                controller: controller.name().to_string(),
                total_intervals: cp.total_intervals,
                intervals,
                policy_changes,
                app_completed: system.app_completed(),
                app_avg_latency_us: system.app_avg_latency_us(),
                app_max_latency_us: system.app_max_latency_us(),
                app_p50_latency_us: system.app_percentile_us(50.0),
                app_p95_latency_us: system.app_percentile_us(95.0),
                app_p99_latency_us: system.app_percentile_us(99.0),
                bypassed_requests: bypassed_total,
                cache_stats: *system.cache().stats(),
                perf: crate::report::SimPerf {
                    events_processed: system.events_processed(),
                    peak_event_queue_depth: system.peak_event_queue_depth(),
                },
                tier_stats: Vec::new(),
            })
        }
    }

    /// Intervals `[start, end)` of the flat loop, shared by the two
    /// checkpoint paths. The body mirrors [`Simulation::run_flat`] step for
    /// step (minus profiling and observability, which checkpointed runs do
    /// not support) — the pinned `run_flat` datapath itself stays untouched.
    #[allow(clippy::too_many_arguments)]
    fn flat_span(
        &mut self,
        system: &mut StorageSystem,
        controller: &mut dyn CacheController,
        start: u32,
        end: u32,
        intervals: &mut Vec<IntervalReport>,
        policy_changes: &mut Vec<PolicyChange>,
        bypassed_total: &mut u64,
    ) {
        let interval_us = self.spec.interval_us();
        for index in start..end {
            for record in self.spec.generate_interval(index, self.seed) {
                system.schedule_record(&record);
            }
            let boundary = SimTime::from_micros((index as u64 + 1) * interval_us);
            system.run_until_with(boundary, &mut NoProf);

            let mut report = system.end_interval(index);
            let decision = {
                let ctx = ControllerContext {
                    interval_index: index,
                    now: system.now(),
                    cache_queue_depth: report.cache.queue_depth,
                    disk_queue_depth: report.disk.queue_depth,
                    cache_avg_latency: system.cache_avg_latency(),
                    disk_avg_latency: system.disk_avg_latency(),
                    cache_queue_mix: report.cache_queue_mix,
                    current_policy: system.policy(),
                    cache_queue: system.cache_queue(),
                    tier_loads: &[],
                    tier_policies: &[],
                };
                controller.on_interval(&ctx)
            };

            report.burst_detected = decision.burst_detected;
            if decision.policy != system.policy() {
                system.set_policy(decision.policy);
                policy_changes.push(PolicyChange {
                    interval: index + 1,
                    policy: decision.policy.label().to_string(),
                });
            }
            *bypassed_total += system.apply_bypass(&decision.bypass) as u64;
            intervals.push(report);
        }
    }

    /// Intervals `[start, end)` of the tiered loop, shared by the two
    /// checkpoint paths (the twin of [`Simulation::flat_span`]; mirrors
    /// [`Simulation::run_tiered`]).
    #[allow(clippy::too_many_arguments)]
    fn tiered_span(
        &mut self,
        system: &mut TieredStorageSystem,
        controller: &mut dyn CacheController,
        start: u32,
        end: u32,
        intervals: &mut Vec<IntervalReport>,
        policy_changes: &mut Vec<PolicyChange>,
        bypassed_total: &mut u64,
    ) {
        let interval_us = self.spec.interval_us();
        let mut tier_loads: Vec<TierLoad> = Vec::with_capacity(system.tier_count());
        for index in start..end {
            for record in self.spec.generate_interval(index, self.seed) {
                system.schedule_record(&record);
            }
            let boundary = SimTime::from_micros((index as u64 + 1) * interval_us);
            system.run_until_with(boundary, &mut NoProf);

            let mut report = system.end_interval_with(index, &mut NoProf);
            system.tier_loads_into(&mut tier_loads);

            let decision = {
                let ctx = ControllerContext {
                    interval_index: index,
                    now: system.now(),
                    cache_queue_depth: report.cache.queue_depth,
                    disk_queue_depth: report.disk.queue_depth,
                    cache_avg_latency: system.cache_avg_latency(),
                    disk_avg_latency: system.disk_avg_latency(),
                    cache_queue_mix: report.cache_queue_mix,
                    current_policy: system.policy(),
                    cache_queue: system.cache_queue(),
                    tier_loads: &tier_loads,
                    tier_policies: system.level_policies(),
                };
                controller.on_interval(&ctx)
            };

            report.burst_detected = decision.burst_detected;
            if decision.tier_policies.is_empty() {
                if decision.policy != system.policy() {
                    system.set_policy(decision.policy);
                    policy_changes.push(PolicyChange {
                        interval: index + 1,
                        policy: tier_policy_label(system.level_policies()),
                    });
                }
            } else if system.level_policies() != decision.tier_policies.as_slice() {
                system.set_level_policies(&decision.tier_policies);
                policy_changes.push(PolicyChange {
                    interval: index + 1,
                    policy: tier_policy_label(&decision.tier_policies),
                });
            }
            let spilled_writes_before = system.spilled_requests();
            let spilled_reads_before = system.spilled_reads();
            let moved = system.apply_bypass(&decision.bypass) as u64;
            let spill_writes = system.spilled_requests() - spilled_writes_before;
            let spill_reads = system.spilled_reads() - spilled_reads_before;
            *bypassed_total += moved - (spill_writes + spill_reads);
            intervals.push(report);
        }
    }
}

/// The Fig. 6-style label of a per-tier policy assignment: the plain policy
/// label when every level agrees, a hot-to-cold `"WO/WB"` composite when
/// they differ.
fn tier_policy_label(policies: &[lbica_cache::WritePolicy]) -> String {
    if policies.windows(2).all(|w| w[0] == w[1]) {
        policies[0].label().to_string()
    } else {
        policies.iter().map(|p| p.label()).collect::<Vec<_>>().join("/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::StaticPolicyController;
    use lbica_cache::WritePolicy;
    use lbica_trace::workload::{WorkloadScale, WorkloadSpec};

    fn tiny_sim(spec: WorkloadSpec) -> Simulation {
        Simulation::new(SimulationConfig::tiny(), spec, 7)
    }

    #[test]
    fn wb_baseline_completes_every_interval() {
        let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
        let total = spec.total_intervals();
        let mut sim = tiny_sim(spec);
        let report = sim.run(&mut StaticPolicyController::write_back());
        assert_eq!(report.intervals.len() as u32, total);
        assert_eq!(report.controller, "WB");
        assert_eq!(report.workload, "tpcc");
        assert!(report.app_completed > 100);
        assert_eq!(report.policy_changes.len(), 1);
        assert_eq!(report.bypassed_requests, 0);
        // Every interval carries the WB label.
        assert!(report.policy_series().iter().all(|p| *p == "WB"));
    }

    #[test]
    fn burst_intervals_show_higher_cache_load_than_the_preceding_calm_ones() {
        let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
        let first_burst = (0..spec.total_intervals())
            .find(|i| spec.is_burst_interval(*i))
            .expect("tpcc has burst intervals");
        let mut sim = tiny_sim(spec.clone());
        let report = sim.run(&mut StaticPolicyController::write_back());
        let burst_avg = mean_at(&report, |i| spec.is_burst_interval(i));
        // Compare against the calm intervals *before* the first burst: the
        // intervals after a burst still drain its backlog and are not a fair
        // "moderate" baseline.
        let pre_burst_avg = mean_at(&report, |i| i < first_burst);
        assert!(
            burst_avg > pre_burst_avg,
            "burst avg {burst_avg} should exceed pre-burst avg {pre_burst_avg}"
        );
    }

    fn mean_at(report: &SimulationReport, pred: impl Fn(u32) -> bool) -> f64 {
        let vals: Vec<u64> = report
            .intervals
            .iter()
            .filter(|i| pred(i.index))
            .map(|i| i.cache.max_latency_us)
            .collect();
        vals.iter().sum::<u64>() as f64 / vals.len().max(1) as f64
    }

    #[test]
    fn static_read_only_controller_pushes_writes_to_disk() {
        let spec = WorkloadSpec::mail_server_scaled(WorkloadScale::tiny());
        let mut wb_sim = tiny_sim(spec.clone());
        let wb = wb_sim.run(&mut StaticPolicyController::write_back());
        let mut ro_sim = tiny_sim(spec);
        let ro = ro_sim.run(&mut StaticPolicyController::new(WritePolicy::ReadOnly));
        let wb_disk: u64 = wb.intervals.iter().map(|i| i.disk.completed).sum();
        let ro_disk: u64 = ro.intervals.iter().map(|i| i.disk.completed).sum();
        assert!(
            ro_disk > wb_disk,
            "read-only cache must send more work to the disk ({ro_disk} vs {wb_disk})"
        );
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let spec = WorkloadSpec::web_server_scaled(WorkloadScale::tiny());
        let a = Simulation::new(SimulationConfig::tiny(), spec.clone(), 3)
            .run(&mut StaticPolicyController::write_back());
        let b = Simulation::new(SimulationConfig::tiny(), spec, 3)
            .run(&mut StaticPolicyController::write_back());
        assert_eq!(a, b);
    }

    #[test]
    fn tiered_runs_complete_and_surface_per_tier_stats() {
        let spec = WorkloadSpec::mail_server_scaled(WorkloadScale::tiny());
        let total = spec.total_intervals();
        let mut sim = Simulation::new(SimulationConfig::tiny_two_tier(), spec, 7);
        let report = sim.run(&mut StaticPolicyController::write_back());
        assert_eq!(report.intervals.len() as u32, total);
        assert!(report.app_completed > 100);
        assert_eq!(report.tier_stats.len(), 2);
        assert_eq!(report.tier_count(), 2);
        assert!(report.tier(0).unwrap().hits > 0, "hot tier serves traffic");
        assert!(report.tier(0).unwrap().completed > 0);
        assert!(report.tier(1).is_some());
        assert!(report.tier(2).is_none());
    }

    #[test]
    fn tiered_runs_are_deterministic_for_a_fixed_seed() {
        let spec = WorkloadSpec::web_server_scaled(WorkloadScale::tiny());
        let a = Simulation::new(SimulationConfig::tiny_two_tier(), spec.clone(), 3)
            .run(&mut StaticPolicyController::write_back());
        let b = Simulation::new(SimulationConfig::tiny_two_tier(), spec, 3)
            .run(&mut StaticPolicyController::write_back());
        assert_eq!(a, b);
    }

    #[test]
    fn flat_reports_carry_no_tier_stats() {
        let spec = WorkloadSpec::web_server_scaled(WorkloadScale::tiny());
        let report = tiny_sim(spec).run(&mut StaticPolicyController::write_back());
        assert!(report.tier_stats.is_empty());
        assert_eq!(report.tier_count(), 1);
        assert_eq!(report.spilled_requests(), 0);
    }

    #[test]
    fn configured_per_tier_policies_survive_run_start() {
        let spec = WorkloadSpec::mail_server_scaled(WorkloadScale::tiny());
        let uniform = Simulation::new(SimulationConfig::tiny_two_tier(), spec.clone(), 7)
            .run(&mut StaticPolicyController::write_back());
        let warm_wt =
            SimulationConfig::tiny_two_tier().with_tier_level_policy(1, WritePolicy::WriteThrough);
        let wt = Simulation::new(warm_wt, spec, 7).run(&mut StaticPolicyController::write_back());
        // The initial Fig. 6 label is the composite hot-to-cold assignment.
        assert_eq!(wt.policy_changes[0].policy, "WB/WT");
        assert_eq!(uniform.policy_changes[0].policy, "WB");
        assert_ne!(uniform, wt, "a write-through warm tier must change behaviour");
        // Writes owned by the WT warm tier additionally reach the disk.
        let disk = |r: &SimulationReport| r.intervals.iter().map(|i| i.disk.completed).sum::<u64>();
        assert!(
            disk(&wt) > disk(&uniform),
            "warm-tier write-through traffic must show up at the disk ({} vs {})",
            disk(&wt),
            disk(&uniform)
        );
    }

    #[test]
    fn observed_runs_produce_identical_reports_to_unobserved_ones() {
        for config in [SimulationConfig::tiny(), SimulationConfig::tiny_two_tier()] {
            let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
            let plain = Simulation::new(config, spec.clone(), 11)
                .run(&mut StaticPolicyController::write_back());
            let mut observed =
                Simulation::new(config, spec, 11).with_observer(lbica_obs::SimObserver::new());
            let report = observed.run(&mut StaticPolicyController::write_back());
            assert_eq!(plain, report, "observer must not perturb the report");

            let obs = observed.take_observer().expect("observer attached");
            assert!(observed.take_observer().is_none());
            // One rollover + two queue marks per interval, at minimum.
            assert!(obs.ring().len() >= plain.intervals.len() * 3);
            let snap = obs.snapshot();
            let intervals = snap
                .counters
                .iter()
                .find(|c| c.name == "lbica_sim_intervals_total")
                .expect("interval counter registered");
            assert_eq!(intervals.value, plain.intervals.len() as u64);
            let events = snap
                .counters
                .iter()
                .find(|c| c.name == "lbica_sim_events_processed_total")
                .expect("events counter registered");
            assert_eq!(events.value, plain.perf.events_processed);
        }
    }

    #[test]
    fn profiled_runs_produce_identical_reports_to_unprofiled_ones() {
        use lbica_obs::{Phase, PhaseProfiler};
        for config in [SimulationConfig::tiny(), SimulationConfig::tiny_two_tier()] {
            let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
            let plain = Simulation::new(config, spec.clone(), 11)
                .run(&mut StaticPolicyController::write_back());
            let mut profiled =
                Simulation::new(config, spec, 11).with_profiler(PhaseProfiler::new());
            let report = profiled.run(&mut StaticPolicyController::write_back());
            assert_eq!(plain, report, "profiler must not perturb the report");

            let prof = profiled.take_profiler().expect("profiler attached");
            assert!(profiled.take_profiler().is_none());
            // Every event pops through the EventQueue phase, plus one feed
            // region per interval.
            assert!(
                prof.calls(Phase::EventQueue) > plain.perf.events_processed,
                "event-queue regions cover every pop"
            );
            assert!(prof.calls(Phase::CacheMap) > 0);
            assert_eq!(prof.calls(Phase::Controller), plain.intervals.len() as u64);
            if config.is_tiered() {
                assert_eq!(prof.calls(Phase::TierMovement), plain.intervals.len() as u64);
            } else {
                assert_eq!(prof.calls(Phase::TierMovement), 0, "flat runs never move tiers");
            }
            assert!(prof.calls(Phase::Report) > plain.intervals.len() as u64);
        }
    }

    #[test]
    fn observed_traces_are_deterministic() {
        let run = || {
            let spec = WorkloadSpec::web_server_scaled(WorkloadScale::tiny());
            let mut sim = Simulation::new(SimulationConfig::tiny(), spec, 5)
                .with_observer(lbica_obs::SimObserver::new());
            sim.run(&mut StaticPolicyController::write_back());
            sim.take_observer().unwrap().render_chrome_trace("cell")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reports_surface_app_latency_percentiles() {
        let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
        let report = tiny_sim(spec).run(&mut StaticPolicyController::write_back());
        assert!(report.app_p50_latency_us > 0);
        assert!(report.app_p50_latency_us <= report.app_p95_latency_us);
        assert!(report.app_p95_latency_us <= report.app_p99_latency_us);
        assert!(report.app_p99_latency_us <= report.app_max_latency_us);
    }

    #[test]
    fn arena_reuse_reproduces_fresh_runs_exactly() {
        let mut arena = SimArena::new();
        for config in [
            SimulationConfig::tiny(),
            SimulationConfig::tiny_two_tier(),
            SimulationConfig::tiny_three_tier(),
        ] {
            let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
            let fresh = Simulation::new(config, spec.clone(), 13)
                .run(&mut StaticPolicyController::write_back());
            // First pass may build fresh; second pass reuses the stored
            // system via reset. Both must equal the from-scratch run.
            for pass in 0..2 {
                let reused = Simulation::new(config, spec.clone(), 13)
                    .run_in(&mut StaticPolicyController::write_back(), &mut arena);
                assert_eq!(fresh, reused, "pass {pass} diverged");
            }
        }
        // Cycling back to an earlier config after the arena holds a
        // different shape rebuilds fresh — and still matches.
        let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
        let fresh = Simulation::new(SimulationConfig::tiny(), spec.clone(), 13)
            .run(&mut StaticPolicyController::write_back());
        let reused = Simulation::new(SimulationConfig::tiny(), spec, 13)
            .run_in(&mut StaticPolicyController::write_back(), &mut arena);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn checkpointed_flat_replay_equals_the_unsplit_run() {
        let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
        let total = spec.total_intervals();
        let unsplit = Simulation::new(SimulationConfig::tiny(), spec.clone(), 7)
            .run(&mut StaticPolicyController::write_back());
        // Every boundary is a legal split point, including 0 (resume runs
        // everything) and total (resume only drains and reports).
        for split in [0, 1, total / 2, total - 1, total] {
            let cp = Simulation::new(SimulationConfig::tiny(), spec.clone(), 7)
                .run_to_checkpoint(&mut StaticPolicyController::write_back(), split)
                .unwrap();
            let cp = ReplayCheckpoint::from_bytes(&cp.to_bytes()).unwrap();
            let resumed = Simulation::new(SimulationConfig::tiny(), spec.clone(), 7)
                .resume_from_checkpoint(&mut StaticPolicyController::write_back(), &cp)
                .unwrap();
            assert_eq!(unsplit, resumed, "split at {split} diverged");
        }
    }

    #[test]
    fn checkpointed_tiered_replay_equals_the_unsplit_run() {
        let spec = WorkloadSpec::mail_server_scaled(WorkloadScale::tiny());
        let total = spec.total_intervals();
        let unsplit = Simulation::new(SimulationConfig::tiny_two_tier(), spec.clone(), 7)
            .run(&mut StaticPolicyController::write_back());
        for split in [1, total / 2, total] {
            let cp = Simulation::new(SimulationConfig::tiny_two_tier(), spec.clone(), 7)
                .run_to_checkpoint(&mut StaticPolicyController::write_back(), split)
                .unwrap();
            let cp = ReplayCheckpoint::from_bytes(&cp.to_bytes()).unwrap();
            let resumed = Simulation::new(SimulationConfig::tiny_two_tier(), spec.clone(), 7)
                .resume_from_checkpoint(&mut StaticPolicyController::write_back(), &cp)
                .unwrap();
            assert_eq!(unsplit, resumed, "split at {split} diverged");
        }
    }

    #[test]
    fn checkpoints_refuse_to_resume_against_the_wrong_cell() {
        use lbica_storage::snap::SnapError;
        let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
        let cp = Simulation::new(SimulationConfig::tiny(), spec.clone(), 7)
            .run_to_checkpoint(&mut StaticPolicyController::write_back(), 2)
            .unwrap();
        // Wrong seed.
        let err = Simulation::new(SimulationConfig::tiny(), spec.clone(), 8)
            .resume_from_checkpoint(&mut StaticPolicyController::write_back(), &cp)
            .unwrap_err();
        assert_eq!(err, SnapError::Corrupt("checkpoint seed mismatch"));
        // Wrong workload.
        let other = WorkloadSpec::web_server_scaled(WorkloadScale::tiny());
        let err = Simulation::new(SimulationConfig::tiny(), other, 7)
            .resume_from_checkpoint(&mut StaticPolicyController::write_back(), &cp)
            .unwrap_err();
        assert_eq!(err, SnapError::Corrupt("checkpoint workload mismatch"));
        // Wrong controller.
        let err = Simulation::new(SimulationConfig::tiny(), spec.clone(), 7)
            .resume_from_checkpoint(&mut StaticPolicyController::new(WritePolicy::ReadOnly), &cp)
            .unwrap_err();
        assert_eq!(err, SnapError::Corrupt("checkpoint controller mismatch"));
        // Wrong datapath.
        let err = Simulation::new(SimulationConfig::tiny_two_tier(), spec.clone(), 7)
            .resume_from_checkpoint(&mut StaticPolicyController::write_back(), &cp)
            .unwrap_err();
        assert_eq!(err, SnapError::Corrupt("checkpoint datapath mismatch"));
        // Split past the end of the workload.
        let err = Simulation::new(SimulationConfig::tiny(), spec, 7)
            .run_to_checkpoint(&mut StaticPolicyController::write_back(), cp.total_intervals + 1)
            .unwrap_err();
        assert_eq!(err, SnapError::Corrupt("checkpoint split beyond workload end"));
    }

    #[test]
    fn checkpoint_paths_reject_observed_runs() {
        let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
        let err = Simulation::new(SimulationConfig::tiny(), spec, 7)
            .with_observer(lbica_obs::SimObserver::new())
            .run_to_checkpoint(&mut StaticPolicyController::write_back(), 1)
            .unwrap_err();
        assert_eq!(
            err,
            lbica_storage::snap::SnapError::Corrupt("checkpoint runs execute unobserved")
        );
    }

    #[test]
    fn without_drain_skips_the_tail() {
        let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
        let drained = Simulation::new(SimulationConfig::tiny(), spec.clone(), 9)
            .run(&mut StaticPolicyController::write_back());
        let undrained = Simulation::new(SimulationConfig::tiny(), spec, 9)
            .without_drain()
            .run(&mut StaticPolicyController::write_back());
        assert!(drained.app_completed >= undrained.app_completed);
    }
}
