//! Simulation output.

use serde::{Deserialize, Serialize};

use lbica_cache::CacheStats;
use lbica_trace::monitor::IntervalReport;

/// A recorded write-policy change (interval index at which the new policy
/// took effect, and its label) — the annotations of Fig. 6.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyChange {
    /// First interval governed by the new policy.
    pub interval: u32,
    /// The policy's label (WB / WT / RO / WO).
    pub policy: String,
}

impl PolicyChange {
    /// Serializes the change for a replay checkpoint.
    pub fn snap_to(&self, w: &mut lbica_storage::snap::SnapWriter) {
        w.put_u32(self.interval);
        w.put_str(&self.policy);
    }

    /// Restores a change serialized by [`PolicyChange::snap_to`].
    pub fn snap_from(
        r: &mut lbica_storage::snap::SnapReader<'_>,
    ) -> Result<Self, lbica_storage::snap::SnapError> {
        Ok(PolicyChange { interval: r.get_u32()?, policy: r.get_str()? })
    }
}

/// Deterministic simulator-performance counters gathered during a run —
/// the denominator data for events-per-second throughput benchmarks.
/// Everything here depends only on the workload/config/seed (never on
/// wall-clock), so reports stay comparable across serial and parallel
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimPerf {
    /// Discrete events processed by the event loop (arrivals + completions).
    pub events_processed: u64,
    /// Largest number of simultaneously pending events.
    pub peak_event_queue_depth: usize,
}

/// Cumulative statistics of one cache level of a tiered run — hit, data
/// movement (promotion / demotion / spill) and queue figures per tier.
/// Flat (single-SSD) runs carry no rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TierLevelStats {
    /// Level index, 0 = hot tier.
    pub level: usize,
    /// Application reads + writes that hit at this level.
    pub hits: u64,
    /// Blocks promoted into this level on lower-level hits.
    pub promotions_in: u64,
    /// Blocks demoted into this level by evictions above it.
    pub demotions_in: u64,
    /// Application writes the load balancer spilled into this level.
    pub spills_in: u64,
    /// Application reads the load balancer spilled into this level (the
    /// Group-2 read-burst action).
    pub read_spills_in: u64,
    /// Copies this level dropped to keep an inclusive hierarchy coherent
    /// when the backing copy below was evicted.
    pub back_invalidations: u64,
    /// Requests enqueued at this level's station.
    pub enqueued: u64,
    /// Requests completed at this level's station.
    pub completed: u64,
    /// Largest queue depth the level's station ever reached.
    pub peak_queue_depth: usize,
    /// Mean end-to-end latency of requests completed at this level, µs.
    pub avg_latency_us: u64,
    /// Maximum end-to-end latency of requests completed at this level, µs.
    pub max_latency_us: u64,
    /// Blocks resident at this level at the end of the run.
    pub cached_blocks: usize,
    /// Dirty blocks resident at this level at the end of the run.
    pub dirty_blocks: usize,
}

/// Everything measured during one simulation run: the per-interval series
/// of Figures 4–6 plus the aggregate latency of Fig. 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Workload name (tpcc / mail-server / web-server / custom).
    pub workload: String,
    /// Controller name (WB / SIB / LBICA / ...).
    pub controller: String,
    /// Number of monitoring intervals the workload defines.
    pub total_intervals: u32,
    /// Per-interval measurements, in interval order.
    pub intervals: Vec<IntervalReport>,
    /// Write-policy changes applied by the controller.
    pub policy_changes: Vec<PolicyChange>,
    /// Number of application requests that completed.
    pub app_completed: u64,
    /// Mean end-to-end application latency, µs (Fig. 7's y-axis).
    pub app_avg_latency_us: u64,
    /// Maximum end-to-end application latency, µs.
    pub app_max_latency_us: u64,
    /// Median end-to-end application latency, µs (log-bucketed).
    pub app_p50_latency_us: u64,
    /// 95th-percentile end-to-end application latency, µs (log-bucketed).
    pub app_p95_latency_us: u64,
    /// 99th-percentile end-to-end application latency, µs (log-bucketed).
    pub app_p99_latency_us: u64,
    /// Requests the controller bypassed from the cache queue to the disk.
    pub bypassed_requests: u64,
    /// Final cache statistics.
    pub cache_stats: CacheStats,
    /// Simulator-performance counters (event counts, peak queue depth).
    pub perf: SimPerf,
    /// Per-cache-level statistics of a tiered run (hot tier first); empty
    /// for flat single-SSD runs.
    pub tier_stats: Vec<TierLevelStats>,
}

impl SimulationReport {
    /// Mean of the per-interval *maximum* cache latency — the average height
    /// of the Fig. 4 curve, used as the paper's "I/O load on the cache"
    /// metric.
    pub fn avg_cache_load_us(&self) -> f64 {
        mean(self.intervals.iter().map(|i| i.cache.max_latency_us))
    }

    /// Mean of the per-interval maximum disk-subsystem latency (Fig. 5).
    pub fn avg_disk_load_us(&self) -> f64 {
        mean(self.intervals.iter().map(|i| i.disk.max_latency_us))
    }

    /// Mean of the per-interval cache queue depth.
    pub fn avg_cache_queue_depth(&self) -> f64 {
        mean(self.intervals.iter().map(|i| i.cache.queue_depth as u64))
    }

    /// Mean cache load restricted to the intervals the controller flagged as
    /// bursts (or all intervals when none were flagged).
    pub fn avg_cache_load_in_bursts_us(&self) -> f64 {
        let burst: Vec<u64> = self
            .intervals
            .iter()
            .filter(|i| i.burst_detected)
            .map(|i| i.cache.max_latency_us)
            .collect();
        if burst.is_empty() {
            self.avg_cache_load_us()
        } else {
            mean(burst.into_iter())
        }
    }

    /// Number of intervals the controller flagged as bursts.
    pub fn burst_intervals(&self) -> usize {
        self.intervals.iter().filter(|i| i.burst_detected).count()
    }

    /// The per-interval cache max-latency series (the Fig. 4 curve).
    pub fn cache_load_series(&self) -> Vec<u64> {
        self.intervals.iter().map(|i| i.cache.max_latency_us).collect()
    }

    /// The per-interval disk max-latency series (the Fig. 5 curve).
    pub fn disk_load_series(&self) -> Vec<u64> {
        self.intervals.iter().map(|i| i.disk.max_latency_us).collect()
    }

    /// The policy label in force at every interval (the Fig. 6 annotation).
    pub fn policy_series(&self) -> Vec<&str> {
        self.intervals.iter().map(|i| i.policy_label.as_str()).collect()
    }

    /// Number of cache levels the run simulated (1 for the flat cache).
    pub fn tier_count(&self) -> usize {
        self.tier_stats.len().max(1)
    }

    /// The per-level statistics row for cache level `level`, if the run
    /// was tiered.
    pub fn tier(&self, level: usize) -> Option<&TierLevelStats> {
        self.tier_stats.iter().find(|t| t.level == level)
    }

    /// Total write requests the balancer spilled into lower cache levels
    /// (zero for flat runs, where every bypass goes to the disk).
    pub fn spilled_requests(&self) -> u64 {
        self.tier_stats.iter().map(|t| t.spills_in).sum()
    }

    /// Total read requests the balancer spilled into lower cache levels
    /// (the Group-2 read-burst action; zero for flat runs).
    pub fn spilled_reads(&self) -> u64 {
        self.tier_stats.iter().map(|t| t.read_spills_in).sum()
    }

    /// Total upper-level copies dropped by inclusive back-invalidation
    /// (zero for exclusive hierarchies and flat runs).
    pub fn back_invalidations(&self) -> u64 {
        self.tier_stats.iter().map(|t| t.back_invalidations).sum()
    }
}

fn mean(values: impl Iterator<Item = u64>) -> f64 {
    let mut sum = 0u128;
    let mut count = 0u64;
    for v in values {
        sum += v as u128;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbica_trace::monitor::TierReport;

    fn report_with_loads(cache: &[u64], disk: &[u64], bursts: &[bool]) -> SimulationReport {
        let intervals = cache
            .iter()
            .zip(disk)
            .zip(bursts)
            .enumerate()
            .map(|(i, ((c, d), b))| IntervalReport {
                index: i as u32,
                cache: TierReport { max_latency_us: *c, queue_depth: 2, ..TierReport::default() },
                disk: TierReport { max_latency_us: *d, ..TierReport::default() },
                burst_detected: *b,
                policy_label: "WB".to_string(),
                ..IntervalReport::default()
            })
            .collect();
        SimulationReport {
            workload: "test".into(),
            controller: "WB".into(),
            total_intervals: cache.len() as u32,
            intervals,
            policy_changes: Vec::new(),
            app_completed: 0,
            app_avg_latency_us: 0,
            app_max_latency_us: 0,
            app_p50_latency_us: 0,
            app_p95_latency_us: 0,
            app_p99_latency_us: 0,
            bypassed_requests: 0,
            cache_stats: CacheStats::default(),
            perf: SimPerf::default(),
            tier_stats: Vec::new(),
        }
    }

    #[test]
    fn averages_and_series_are_consistent() {
        let r = report_with_loads(&[100, 300, 200], &[10, 20, 30], &[false, true, true]);
        assert!((r.avg_cache_load_us() - 200.0).abs() < 1e-9);
        assert!((r.avg_disk_load_us() - 20.0).abs() < 1e-9);
        assert!((r.avg_cache_queue_depth() - 2.0).abs() < 1e-9);
        assert_eq!(r.cache_load_series(), vec![100, 300, 200]);
        assert_eq!(r.disk_load_series(), vec![10, 20, 30]);
        assert_eq!(r.policy_series(), vec!["WB", "WB", "WB"]);
        assert_eq!(r.burst_intervals(), 2);
        assert!((r.avg_cache_load_in_bursts_us() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn burst_average_falls_back_to_overall_when_no_bursts() {
        let r = report_with_loads(&[100, 200], &[0, 0], &[false, false]);
        assert!((r.avg_cache_load_in_bursts_us() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_yields_zero_averages() {
        let r = report_with_loads(&[], &[], &[]);
        assert_eq!(r.avg_cache_load_us(), 0.0);
        assert_eq!(r.burst_intervals(), 0);
    }
}
