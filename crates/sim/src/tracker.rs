//! Outstanding-application-request accounting.
//!
//! Request ids are dense and sequential (the system hands them out from a
//! counter), so keying a `HashMap` by them pays SipHash for nothing. The
//! tracker instead keeps a flat id→slot index (4 bytes per id ever issued)
//! into a free-list slab of live entries: register and complete are both a
//! pair of array indexing operations.

use lbica_storage::histogram::LatencyHistogram;
use lbica_storage::request::RequestId;
use lbica_storage::snap::{SnapError, SnapReader, SnapWriter};
use lbica_storage::time::SimTime;

/// Sentinel for "no slot" in the id→slot index.
const NIL: u32 = u32::MAX;

/// One outstanding application request.
#[derive(Debug, Clone, Copy)]
struct AppEntry {
    arrival: SimTime,
    pending_ops: u32,
}

/// Tracks in-flight application requests and aggregates end-to-end latency
/// over completed ones.
///
/// ```
/// use lbica_sim::tracker::AppTracker;
/// use lbica_storage::time::SimTime;
///
/// let mut t = AppTracker::new();
/// t.register(1, SimTime::ZERO, 2);
/// t.complete_op(1, SimTime::from_micros(100));
/// t.complete_op(1, SimTime::from_micros(250));
/// assert_eq!(t.completed(), 1);
/// assert_eq!(t.total_latency_us(), 250);
/// ```
#[derive(Debug, Default)]
pub struct AppTracker {
    /// Request id → slab slot (`NIL` when the id has no live entry). Grows
    /// to the highest registered id; ids are dense, so this stays compact.
    index: Vec<u32>,
    /// Live entries, slots reused via `free`.
    slots: Vec<AppEntry>,
    free: Vec<u32>,
    completed: u64,
    total_latency_us: u64,
    max_latency_us: u64,
    /// End-to-end latency distribution over completed requests, feeding the
    /// report's p50/p95/p99 columns.
    latency: LatencyHistogram,
}

impl AppTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        AppTracker::default()
    }

    /// Number of application requests fully completed.
    pub const fn completed(&self) -> u64 {
        self.completed
    }

    /// Sum of end-to-end latencies of completed requests, µs.
    pub const fn total_latency_us(&self) -> u64 {
        self.total_latency_us
    }

    /// Largest end-to-end latency of a completed request, µs.
    pub const fn max_latency_us(&self) -> u64 {
        self.max_latency_us
    }

    /// End-to-end latency at the given percentile (0–100), µs, log-bucketed.
    pub fn percentile_us(&self, pct: f64) -> u64 {
        self.latency.percentile(pct).as_micros()
    }

    /// The full end-to-end latency distribution over completed requests.
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Number of requests currently in flight.
    pub fn outstanding(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Clears all accounting while keeping the id→slot index, the entry
    /// slab, and the free list allocated, so a reused tracker registers
    /// requests without growing any Vec. Observationally identical to a
    /// freshly constructed tracker afterwards.
    pub fn reset(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.completed = 0;
        self.total_latency_us = 0;
        self.max_latency_us = 0;
        self.latency.reset();
    }

    /// Serializes the tracker for a replay checkpoint: the completed-side
    /// aggregates plus every in-flight request as an `(id, arrival,
    /// pending_ops)` triple in id order. Slab slot assignments are *not*
    /// recorded — they are unobservable bookkeeping, rebuilt on restore.
    pub fn snap_to(&self, w: &mut SnapWriter) {
        w.put_u64(self.completed);
        w.put_u64(self.total_latency_us);
        w.put_u64(self.max_latency_us);
        self.latency.snap_to(w);
        w.put_usize(self.outstanding());
        for (id, &slot) in self.index.iter().enumerate() {
            if slot != NIL {
                let entry = &self.slots[slot as usize];
                w.put_u64(id as u64);
                w.put_u64(entry.arrival.as_micros());
                w.put_u32(entry.pending_ops);
            }
        }
    }

    /// Restores state written by [`AppTracker::snap_to`] into this tracker
    /// (whose own accounting is discarded).
    pub fn snap_state_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reset();
        self.completed = r.get_u64()?;
        self.total_latency_us = r.get_u64()?;
        self.max_latency_us = r.get_u64()?;
        self.latency = LatencyHistogram::snap_from(r)?;
        let live = r.get_usize()?;
        for _ in 0..live {
            let id = r.get_u64()?;
            let arrival = SimTime::from_micros(r.get_u64()?);
            let pending_ops = r.get_u32()?;
            if pending_ops == 0 {
                return Err(SnapError::Corrupt("live request with zero pending ops"));
            }
            if self.index.get(id as usize).is_some_and(|&s| s != NIL) {
                return Err(SnapError::Corrupt("duplicate live request id"));
            }
            self.register(id, arrival, pending_ops);
        }
        Ok(())
    }

    /// Registers an application request that fans out into `pending_ops`
    /// datapath operations.
    pub fn register(&mut self, id: RequestId, arrival: SimTime, pending_ops: u32) {
        if pending_ops == 0 {
            // Nothing in the datapath (cannot normally happen) — count as an
            // instantaneous completion.
            self.completed += 1;
            self.latency.record_us(0);
            return;
        }
        let id = id as usize;
        if self.index.len() <= id {
            self.index.resize(id + 1, NIL);
        }
        debug_assert_eq!(self.index[id], NIL, "request id registered twice");
        let entry = AppEntry { arrival, pending_ops };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = entry;
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slab fits u32 indices");
                self.slots.push(entry);
                slot
            }
        };
        self.index[id] = slot;
    }

    /// Records the completion of one datapath operation belonging to
    /// application request `parent`. When the last one lands the request's
    /// end-to-end latency is folded into the aggregates. Unknown parents
    /// are ignored (their request completed through another path).
    pub fn complete_op(&mut self, parent: RequestId, now: SimTime) {
        let Some(&slot) = self.index.get(parent as usize) else {
            return;
        };
        if slot == NIL {
            return;
        }
        let entry = &mut self.slots[slot as usize];
        entry.pending_ops -= 1;
        if entry.pending_ops == 0 {
            let latency = now.saturating_since(entry.arrival).as_micros();
            self.completed += 1;
            self.total_latency_us += latency;
            self.max_latency_us = self.max_latency_us.max(latency);
            self.latency.record_us(latency);
            self.index[parent as usize] = NIL;
            self.free.push(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_op_registration_counts_as_instant_completion() {
        let mut t = AppTracker::new();
        t.register(1, SimTime::ZERO, 0);
        assert_eq!(t.completed(), 1);
        assert_eq!(t.outstanding(), 0);
        assert_eq!(t.total_latency_us(), 0);
    }

    #[test]
    fn latency_is_taken_from_the_last_op() {
        let mut t = AppTracker::new();
        t.register(5, SimTime::from_micros(100), 3);
        t.complete_op(5, SimTime::from_micros(150));
        t.complete_op(5, SimTime::from_micros(200));
        assert_eq!(t.completed(), 0);
        assert_eq!(t.outstanding(), 1);
        t.complete_op(5, SimTime::from_micros(400));
        assert_eq!(t.completed(), 1);
        assert_eq!(t.total_latency_us(), 300);
        assert_eq!(t.max_latency_us(), 300);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn unknown_parents_are_ignored() {
        let mut t = AppTracker::new();
        t.complete_op(42, SimTime::from_micros(10));
        t.register(1, SimTime::ZERO, 1);
        t.complete_op(99, SimTime::from_micros(10));
        assert_eq!(t.completed(), 0);
        assert_eq!(t.outstanding(), 1);
    }

    #[test]
    fn slots_are_reused_across_request_generations() {
        let mut t = AppTracker::new();
        for id in 1..=100u64 {
            t.register(id, SimTime::from_micros(id), 1);
            t.complete_op(id, SimTime::from_micros(id + 7));
        }
        assert_eq!(t.completed(), 100);
        assert_eq!(t.outstanding(), 0);
        // One request in flight at a time → one slab slot, ever.
        assert_eq!(t.slots.len(), 1);
        assert_eq!(t.total_latency_us(), 700);
        assert_eq!(t.max_latency_us(), 7);
    }

    #[test]
    fn interleaved_requests_complete_independently() {
        let mut t = AppTracker::new();
        t.register(1, SimTime::ZERO, 2);
        t.register(2, SimTime::from_micros(50), 1);
        t.complete_op(1, SimTime::from_micros(60));
        t.complete_op(2, SimTime::from_micros(80));
        assert_eq!(t.completed(), 1);
        t.complete_op(1, SimTime::from_micros(120));
        assert_eq!(t.completed(), 2);
        assert_eq!(t.max_latency_us(), 120);
        assert_eq!(t.total_latency_us(), 150);
    }

    #[test]
    fn snapshot_round_trip_restores_aggregates_and_in_flight_requests() {
        let mut t = AppTracker::new();
        for id in 1..=20u64 {
            t.register(id, SimTime::from_micros(id), 1);
            t.complete_op(id, SimTime::from_micros(id + 5));
        }
        t.register(21, SimTime::from_micros(100), 2);
        t.register(22, SimTime::from_micros(110), 1);
        t.complete_op(21, SimTime::from_micros(120));

        let mut w = SnapWriter::new();
        t.snap_to(&mut w);
        let bytes = w.into_bytes();
        let mut restored = AppTracker::new();
        let mut r = SnapReader::new(&bytes);
        restored.snap_state_from(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.completed(), t.completed());
        assert_eq!(restored.total_latency_us(), t.total_latency_us());
        assert_eq!(restored.max_latency_us(), t.max_latency_us());
        assert_eq!(restored.outstanding(), 2);
        assert_eq!(restored.percentile_us(50.0), t.percentile_us(50.0));
        // The restored tracker finishes the in-flight requests identically.
        restored.complete_op(21, SimTime::from_micros(300));
        t.complete_op(21, SimTime::from_micros(300));
        restored.complete_op(22, SimTime::from_micros(310));
        t.complete_op(22, SimTime::from_micros(310));
        assert_eq!(restored.completed(), t.completed());
        assert_eq!(restored.total_latency_us(), t.total_latency_us());
        assert_eq!(restored.max_latency_us(), t.max_latency_us());
    }

    #[test]
    fn zero_pending_ops_in_a_snapshot_is_rejected() {
        let mut t = AppTracker::new();
        t.register(7, SimTime::from_micros(5), 3);
        let mut w = SnapWriter::new();
        t.snap_to(&mut w);
        let mut bytes = w.into_bytes();
        // The trailing u32 is the live entry's pending_ops.
        let n = bytes.len();
        bytes[n - 4..].fill(0);
        let err = AppTracker::new().snap_state_from(&mut SnapReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, SnapError::Corrupt("live request with zero pending ops")));
    }

    #[test]
    fn percentiles_track_completed_latencies() {
        let mut t = AppTracker::new();
        for id in 1..=100u64 {
            t.register(id, SimTime::ZERO, 1);
            t.complete_op(id, SimTime::from_micros(id * 100));
        }
        assert_eq!(t.latency_histogram().count(), 100);
        let p50 = t.percentile_us(50.0);
        let p99 = t.percentile_us(99.0);
        assert!((4_000..=6_500).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50 && p99 <= t.max_latency_us());
    }
}
