//! The simulated *tiered* storage system: an N-level cache hierarchy in
//! front of the disk subsystem.
//!
//! This is the multi-SSD generalization of [`crate::StorageSystem`]: one
//! [`DeviceStation`] per cache level (hot tier first) plus the disk
//! station, with the [`TieredCacheModule`] deciding which station every
//! derived operation lands on. The flat system remains the single-tier
//! special case and is untouched by this module — `Simulation` dispatches
//! here only when the configuration describes two or more levels.

use lbica_cache::WritePolicy;
use lbica_obs::{NoProf, Phase, PhaseSink};
use lbica_storage::device::{AnyDeviceModel, DeviceModel, HddModel, SsdModel};
use lbica_storage::queue::DeviceQueue;
use lbica_storage::request::{IoRequest, RequestClass, RequestId, RequestOrigin};
use lbica_storage::snap::{SnapError, SnapReader, SnapWriter};
use lbica_storage::time::{SimDuration, SimTime};
use lbica_tier::{TierTarget, TieredCacheModule, TieredOutcome, MAX_TIERS};
use lbica_trace::monitor::{BlktraceProbe, IostatCollector, Tier};
use lbica_trace::record::TraceRecord;

use crate::config::{DiskDeviceConfig, SimulationConfig};
use crate::controller::{BypassDirective, TierLoad};
use crate::event::{EventKind, EventQueue};
use crate::report::TierLevelStats;
use crate::system::{DeviceStation, TierId};
use crate::tracker::AppTracker;

/// Per-level completion counters the stations cannot track themselves.
#[derive(Debug, Clone, Copy, Default)]
struct LevelCounters {
    completed: u64,
    total_latency_us: u64,
    max_latency_us: u64,
}

/// The full simulated tiered system: application entry point, the tiered
/// cache module, one station per cache level, the disk station, monitors
/// and the event queue.
#[derive(Debug)]
pub struct TieredStorageSystem {
    cache: TieredCacheModule,
    levels: Vec<DeviceStation>,
    disk: DeviceStation,
    counters: Vec<LevelCounters>,
    events: EventQueue,
    clock: SimTime,
    iostat: IostatCollector,
    probe: BlktraceProbe,
    app: AppTracker,
    next_id: RequestId,
    events_processed: u64,
    spilled_requests: u64,
    spilled_reads: u64,
    /// Reused per-arrival outcome buffer (no allocation in the hot loop).
    outcome_scratch: TieredOutcome,
}

impl TieredStorageSystem {
    /// Builds a tiered system from a [`SimulationConfig`] carrying a tier
    /// topology.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no tier topology.
    pub fn new(config: &SimulationConfig) -> Self {
        let topology = config.tiers.expect("a tiered system needs a tier topology");
        let mut cache = TieredCacheModule::new(topology);
        if config.prewarm_cache {
            cache.prewarm_to_capacity();
        }
        let levels: Vec<DeviceStation> = topology
            .levels()
            .enumerate()
            .map(|(i, spec)| {
                let model = AnyDeviceModel::Ssd(SsdModel::new(spec.device));
                DeviceStation::new(format!("tier{i}-ssd"), model, spec.parallelism)
            })
            .collect();
        let disk_model = match config.disk_device {
            DiskDeviceConfig::MidrangeSsd(cfg) => AnyDeviceModel::Ssd(SsdModel::new(cfg)),
            DiskDeviceConfig::Hdd(cfg) => AnyDeviceModel::Hdd(HddModel::new(cfg)),
        };
        let n = levels.len();
        TieredStorageSystem {
            cache,
            levels,
            disk: DeviceStation::new("disk-subsystem", disk_model, config.disk_parallelism),
            counters: vec![LevelCounters::default(); n],
            events: EventQueue::new(),
            clock: SimTime::ZERO,
            iostat: IostatCollector::new(),
            probe: BlktraceProbe::new(),
            app: AppTracker::new(),
            next_id: 1,
            events_processed: 0,
            spilled_requests: 0,
            spilled_reads: 0,
            outcome_scratch: TieredOutcome::new(),
        }
    }

    /// Returns the system to the state [`TieredStorageSystem::new`] would
    /// produce for the same config, reusing every backing allocation (see
    /// [`crate::StorageSystem`]'s reset for the flat analogue). The caller
    /// (the [`crate::SimArena`]) guarantees the config — including the tier
    /// topology — is identical to the one the system was built with.
    pub(crate) fn reset(&mut self, config: &SimulationConfig) {
        self.cache.reset();
        if config.prewarm_cache {
            self.cache.prewarm_to_capacity();
        }
        for station in &mut self.levels {
            station.reset();
        }
        self.disk.reset();
        self.counters.fill(LevelCounters::default());
        self.events.reset();
        self.clock = SimTime::ZERO;
        self.iostat.reset();
        self.probe.reset();
        self.app.reset();
        self.next_id = 1;
        self.events_processed = 0;
        self.spilled_requests = 0;
        self.spilled_reads = 0;
        self.outcome_scratch.clear();
    }

    /// The current simulated time.
    pub const fn now(&self) -> SimTime {
        self.clock
    }

    /// The tiered cache module (policy, per-level stats, contents).
    pub fn cache(&self) -> &TieredCacheModule {
        &self.cache
    }

    /// Number of cache levels.
    pub fn tier_count(&self) -> usize {
        self.levels.len()
    }

    /// The station of cache level `level` (0 = hot tier).
    pub fn level(&self, level: usize) -> &DeviceStation {
        &self.levels[level]
    }

    /// The disk-subsystem station.
    pub fn disk(&self) -> &DeviceStation {
        &self.disk
    }

    /// Number of application requests fully completed so far.
    pub fn app_completed(&self) -> u64 {
        self.app.completed()
    }

    /// Mean end-to-end latency of completed application requests, µs.
    pub fn app_avg_latency_us(&self) -> u64 {
        self.app.total_latency_us().checked_div(self.app.completed()).unwrap_or(0)
    }

    /// Maximum end-to-end latency of completed application requests, µs.
    pub const fn app_max_latency_us(&self) -> u64 {
        self.app.max_latency_us()
    }

    /// End-to-end application latency at `pct` (0–100), µs, log-bucketed.
    pub fn app_percentile_us(&self, pct: f64) -> u64 {
        self.app.percentile_us(pct)
    }

    /// The end-to-end application latency distribution.
    pub fn app_latency_histogram(&self) -> &lbica_storage::histogram::LatencyHistogram {
        self.app.latency_histogram()
    }

    /// Total number of discrete events processed by the event loop.
    pub const fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The largest event-queue depth ever reached.
    pub const fn peak_event_queue_depth(&self) -> usize {
        self.events.peak_len()
    }

    /// Write requests the balancer spilled from the hot tier into a lower
    /// level (as opposed to bypassing all the way to the disk).
    pub const fn spilled_requests(&self) -> u64 {
        self.spilled_requests
    }

    /// Read requests the balancer spilled from the hot tier into a lower
    /// level (the Group-2 read-burst action; reads never fall through to
    /// the disk).
    pub const fn spilled_reads(&self) -> u64 {
        self.spilled_reads
    }

    fn fresh_id(&mut self) -> RequestId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Schedules the arrival of an application request described by a trace
    /// record.
    pub fn schedule_record(&mut self, record: &TraceRecord) {
        let id = self.fresh_id();
        let request = record.to_request(id);
        self.events.schedule(request.arrival(), EventKind::Arrival(request));
    }

    /// Runs the event loop until every event at or before `limit` has been
    /// processed, then advances the clock to `limit`.
    pub fn run_until(&mut self, limit: SimTime) {
        self.run_until_with(limit, &mut NoProf);
    }

    /// [`TieredStorageSystem::run_until`] with a [`PhaseSink`] attributing
    /// wall time to the hot loop's phases (see
    /// [`crate::StorageSystem::run_until_with`] for the contract).
    pub fn run_until_with<P: PhaseSink>(&mut self, limit: SimTime, prof: &mut P) {
        loop {
            let mark = prof.mark();
            let popped = self.events.pop_until(limit);
            prof.record(Phase::EventQueue, mark);
            let Some(event) = popped else { break };
            self.clock = event.time;
            self.events_processed += 1;
            match event.kind {
                EventKind::Arrival(request) => self.handle_arrival(request, prof),
                EventKind::LevelCompletion { level, request } => {
                    self.handle_level_completion(level, request, prof)
                }
                EventKind::Completion { tier: TierId::Disk, request } => {
                    self.handle_disk_completion(request, prof)
                }
                EventKind::Completion { tier: TierId::Ssd, .. } => {
                    unreachable!("the tiered system addresses cache levels by index")
                }
            }
        }
        self.clock = limit;
    }

    fn handle_arrival<P: PhaseSink>(&mut self, request: IoRequest, prof: &mut P) {
        let now = self.clock;
        let mut outcome = std::mem::take(&mut self.outcome_scratch);
        let mark = prof.mark();
        self.cache.access_into(&request, &mut outcome);
        prof.record(Phase::CacheMap, mark);
        let datapath_ops =
            outcome.ops().iter().filter(|op| op.origin == RequestOrigin::Application).count()
                as u32;
        let mark = prof.mark();
        self.app.register(request.id(), now, datapath_ops);
        prof.record(Phase::Tracker, mark);
        let mark = prof.mark();
        self.enqueue_outcome(request.id(), &outcome, now);
        prof.record(Phase::DeviceModel, mark);
        self.outcome_scratch = outcome;
    }

    fn enqueue_outcome(&mut self, parent: RequestId, outcome: &TieredOutcome, now: SimTime) {
        // One slot per possible cache level plus the disk at the end.
        let mut touched = [false; MAX_TIERS + 1];
        for op in outcome.ops() {
            let id = self.fresh_id();
            let derived = IoRequest::from_range(id, op.kind, op.origin, op.range)
                .with_arrival(now)
                .with_parent(parent);
            match op.target {
                TierTarget::Level(level) => {
                    touched[level] = true;
                    self.enqueue_at_level(level, derived);
                }
                TierTarget::Disk => {
                    touched[MAX_TIERS] = true;
                    self.enqueue_at_disk(derived);
                }
            }
        }
        for level in (0..self.levels.len()).filter(|&l| touched[l]) {
            self.try_dispatch_level(level);
        }
        if touched[MAX_TIERS] {
            self.try_dispatch_disk();
        }
    }

    fn enqueue_at_level(&mut self, level: usize, request: IoRequest) {
        self.iostat.record_enqueue(Tier::Cache);
        if level == 0 {
            // The blktrace-style probe watches the *hot tier's* queue — the
            // paper's I/O-cache queue, which the characterizer classifies.
            self.probe.observe_class(request.class());
        }
        let station = &mut self.levels[level];
        station.queue.enqueue(request);
        let depth = station.queue.depth();
        self.iostat.observe_queue_depth(Tier::Cache, depth);
    }

    fn enqueue_at_disk(&mut self, request: IoRequest) {
        self.iostat.record_enqueue(Tier::Disk);
        self.disk.queue.enqueue(request);
        let depth = self.disk.queue.depth();
        self.iostat.observe_queue_depth(Tier::Disk, depth);
    }

    fn try_dispatch_level(&mut self, level: usize) {
        let now = self.clock;
        loop {
            let station = &mut self.levels[level];
            if station.in_service >= station.parallelism || station.queue.is_empty() {
                break;
            }
            let mut request = match station.queue.dispatch(now) {
                Some(r) => r,
                None => break,
            };
            let service = station.model.service_time(&request);
            station.in_service += 1;
            let completion_time = now + service;
            request.mark_completed(completion_time);
            self.events.schedule(completion_time, EventKind::LevelCompletion { level, request });
        }
    }

    fn try_dispatch_disk(&mut self) {
        let now = self.clock;
        loop {
            if self.disk.in_service >= self.disk.parallelism || self.disk.queue.is_empty() {
                break;
            }
            let mut request = match self.disk.queue.dispatch(now) {
                Some(r) => r,
                None => break,
            };
            let service = self.disk.model.service_time(&request);
            self.disk.in_service += 1;
            let completion_time = now + service;
            request.mark_completed(completion_time);
            self.events
                .schedule(completion_time, EventKind::Completion { tier: TierId::Disk, request });
        }
    }

    fn handle_level_completion<P: PhaseSink>(
        &mut self,
        level: usize,
        request: IoRequest,
        prof: &mut P,
    ) {
        let now = self.clock;
        let mark = prof.mark();
        self.levels[level].in_service -= 1;
        let latency = request.latency().map(|d| d.as_micros()).unwrap_or_default();
        self.iostat.record_completion(Tier::Cache, latency);
        let counters = &mut self.counters[level];
        counters.completed += 1;
        counters.total_latency_us += latency;
        counters.max_latency_us = counters.max_latency_us.max(latency);
        prof.record(Phase::DeviceModel, mark);
        if request.origin() == RequestOrigin::Application {
            if let Some(parent) = request.parent() {
                let mark = prof.mark();
                self.app.complete_op(parent, now);
                prof.record(Phase::Tracker, mark);
            }
        }
        let mark = prof.mark();
        self.try_dispatch_level(level);
        prof.record(Phase::DeviceModel, mark);
    }

    fn handle_disk_completion<P: PhaseSink>(&mut self, request: IoRequest, prof: &mut P) {
        let now = self.clock;
        let mark = prof.mark();
        self.disk.in_service -= 1;
        let latency = request.latency().map(|d| d.as_micros()).unwrap_or_default();
        self.iostat.record_completion(Tier::Disk, latency);
        prof.record(Phase::DeviceModel, mark);
        if request.origin() == RequestOrigin::Application {
            if let Some(parent) = request.parent() {
                let mark = prof.mark();
                self.app.complete_op(parent, now);
                prof.record(Phase::Tracker, mark);
            }
        }
        let mark = prof.mark();
        self.try_dispatch_disk();
        prof.record(Phase::DeviceModel, mark);
    }

    /// Closes monitoring interval `index`, returning its report. The cache
    /// tier aggregates every level's completions; the queue depth reported
    /// is the *hot tier's* (the signal the paper's detector watches).
    pub fn end_interval(&mut self, index: u32) -> lbica_trace::monitor::IntervalReport {
        self.end_interval_with(index, &mut NoProf)
    }

    /// [`TieredStorageSystem::end_interval`] with phase attribution: the
    /// deferred tier-movement commit lands in [`Phase::TierMovement`], the
    /// measurement gathering in [`Phase::Report`].
    pub fn end_interval_with<P: PhaseSink>(
        &mut self,
        index: u32,
        prof: &mut P,
    ) -> lbica_trace::monitor::IntervalReport {
        // Fold the interval's deferred tier-movement deltas into the base
        // counters in one pass. Observationally invisible —
        // `TieredCacheModule::movement` always reports base + pending — but
        // it keeps the deferred buffer's folding cost off the per-event path
        // and bounds it to one add per level per interval.
        let mark = prof.mark();
        self.cache.commit_moves();
        prof.record(Phase::TierMovement, mark);
        let mark = prof.mark();
        let cache_depth = self.levels[0].outstanding();
        let disk_depth = self.disk.outstanding();
        let mut report = self.iostat.finish_interval(index, cache_depth, disk_depth);
        report.cache_queue_mix = self.probe.take();
        report.policy_label = self.cache.policy().label().to_string();
        prof.record(Phase::Report, mark);
        report
    }

    /// Fills `out` with one [`TierLoad`] per cache level, hot tier first —
    /// the tier vector handed to tier-aware controllers.
    pub fn tier_loads_into(&self, out: &mut Vec<TierLoad>) {
        out.clear();
        for station in &self.levels {
            out.push(TierLoad {
                queue_depth: station.outstanding(),
                avg_latency: station.avg_latency(),
            });
        }
    }

    /// The hot tier's blended average device latency (`ssdLatency`).
    pub fn cache_avg_latency(&self) -> SimDuration {
        self.levels[0].avg_latency()
    }

    /// The disk subsystem's blended average latency (`hddLatency`).
    pub fn disk_avg_latency(&self) -> SimDuration {
        self.disk.avg_latency()
    }

    /// The current write policy of the hierarchy.
    pub fn policy(&self) -> WritePolicy {
        self.cache.policy()
    }

    /// Applies the single policy knob: every level of a uniform-configured
    /// hierarchy, or the hot tier only when per-level policies were
    /// explicitly configured (see [`TieredCacheModule::set_policy`]).
    pub fn set_policy(&mut self, policy: WritePolicy) {
        self.cache.set_policy(policy);
    }

    /// Assigns per-level write policies, hot tier first (see
    /// [`TieredCacheModule::set_level_policies`]).
    ///
    /// # Panics
    ///
    /// Panics if `policies` does not hold exactly one entry per level.
    pub fn set_level_policies(&mut self, policies: &[WritePolicy]) {
        self.cache.set_level_policies(policies);
    }

    /// The per-level write policies currently in force, hot tier first.
    pub fn level_policies(&self) -> &[WritePolicy] {
        self.cache.level_policies()
    }

    /// Read-only access to the hot tier's queue (for controller contexts).
    pub fn cache_queue(&self) -> &DeviceQueue {
        self.levels[0].queue()
    }

    /// Applies a controller's bypass directive. Tail spills re-home the
    /// drained requests at a lower cache level; plain bypasses and SIB-style
    /// victim lists redirect to the disk subsystem exactly like the flat
    /// system. Returns how many requests were moved or cancelled.
    pub fn apply_bypass(&mut self, directive: &BypassDirective) -> usize {
        match directive {
            BypassDirective::None => 0,
            BypassDirective::SpillTailWrites { max_requests, target_level } => {
                self.spill_tail(*max_requests, *target_level, RequestClass::Write)
            }
            BypassDirective::SpillTailReads { max_requests, target_level } => {
                self.spill_tail(*max_requests, *target_level, RequestClass::Read)
            }
            BypassDirective::TailWrites { max_requests } => {
                let moved = self.levels[0]
                    .queue
                    .drain_tail(*max_requests, |r| r.class() == RequestClass::Write);
                self.redirect_all_to_disk(moved)
            }
            BypassDirective::Requests(ids) => {
                let moved = self.levels[0].queue.remove_by_ids(ids);
                self.redirect_all_to_disk(moved)
            }
        }
    }

    /// The spill-chain action: drain application requests of `class` off
    /// the hot tier's tail and serve them from cache level `target_level`
    /// instead, moving their block metadata (and any demotions the
    /// re-homing causes) with them. Writes re-home dirty per the target's
    /// policy (`absorb_spill`); reads keep their current state
    /// (`absorb_read_spill`).
    fn spill_tail(
        &mut self,
        max_requests: usize,
        target_level: usize,
        class: RequestClass,
    ) -> usize {
        let target = target_level.min(self.levels.len() - 1).max(1);
        let moved = self.levels[0].queue.drain_tail(max_requests, |r| r.class() == class);
        let count = moved.len();
        if count == 0 {
            return 0;
        }
        let now = self.clock;
        let mut outcome = std::mem::take(&mut self.outcome_scratch);
        for request in moved {
            outcome.clear();
            for block in request.range().block_indices() {
                match class {
                    RequestClass::Write => self.cache.absorb_spill(block, target, &mut outcome),
                    _ => self.cache.absorb_read_spill(block, target, &mut outcome),
                }
            }
            // Demotions caused by re-homing the block fan out first, then
            // the spilled request itself joins the target level's queue.
            let parent = request.parent().unwrap_or(request.id());
            self.enqueue_outcome(parent, &outcome, now);
            self.enqueue_at_level(target, request);
        }
        self.outcome_scratch = outcome;
        match class {
            RequestClass::Write => self.spilled_requests += count as u64,
            _ => self.spilled_reads += count as u64,
        }
        self.try_dispatch_level(target);
        count
    }

    fn redirect_all_to_disk(&mut self, moved: Vec<IoRequest>) -> usize {
        let count = moved.len();
        for request in moved {
            self.redirect_to_disk(request);
        }
        if count > 0 {
            self.try_dispatch_disk();
        }
        count
    }

    fn redirect_to_disk(&mut self, request: IoRequest) {
        match request.class() {
            RequestClass::Write | RequestClass::Read => {
                for block in request.range().block_indices() {
                    if request.class() == RequestClass::Write {
                        self.cache.invalidate_block(block);
                    }
                }
                self.enqueue_at_disk(request);
            }
            RequestClass::Promote => {
                for block in request.range().block_indices() {
                    self.cache.invalidate_block(block);
                }
            }
            RequestClass::Evict => {
                // Evictions carry victim data between cache levels; they
                // must stay where they were queued.
                self.levels[0].queue.enqueue(request);
            }
        }
    }

    /// Serializes the full mid-flight system state for a replay checkpoint
    /// (the tiered twin of [`crate::StorageSystem::snap_to`]; same
    /// interval-boundary contract — including the monitors' in-progress
    /// accumulators, which boundary-time bypasses may already have fed).
    pub fn snap_to(&self, w: &mut SnapWriter) {
        self.cache.snap_to(w);
        w.put_usize(self.levels.len());
        for station in &self.levels {
            station.snap_to(w);
        }
        self.disk.snap_to(w);
        for c in &self.counters {
            w.put_u64(c.completed);
            w.put_u64(c.total_latency_us);
            w.put_u64(c.max_latency_us);
        }
        self.events.snap_to(w);
        w.put_u64(self.clock.as_micros());
        self.app.snap_to(w);
        w.put_u64(self.next_id);
        w.put_u64(self.events_processed);
        w.put_u64(self.spilled_requests);
        w.put_u64(self.spilled_reads);
        self.iostat.snap_to(w);
        self.probe.snap_to(w);
    }

    /// Restores state written by [`TieredStorageSystem::snap_to`] into this
    /// config-built system.
    pub fn snap_state_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cache.snap_state_from(r)?;
        if r.get_usize()? != self.levels.len() {
            return Err(SnapError::Corrupt("station level count mismatch"));
        }
        for station in &mut self.levels {
            station.snap_state_from(r)?;
        }
        self.disk.snap_state_from(r)?;
        for c in &mut self.counters {
            c.completed = r.get_u64()?;
            c.total_latency_us = r.get_u64()?;
            c.max_latency_us = r.get_u64()?;
        }
        self.events.snap_state_from(r)?;
        self.clock = SimTime::from_micros(r.get_u64()?);
        self.app.snap_state_from(r)?;
        self.next_id = r.get_u64()?;
        self.events_processed = r.get_u64()?;
        self.spilled_requests = r.get_u64()?;
        self.spilled_reads = r.get_u64()?;
        self.iostat.snap_state_from(r)?;
        self.probe.snap_state_from(r)?;
        Ok(())
    }

    /// Number of events still pending (for drain loops at the end of a run).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Drains outstanding work in fixed 100 ms steps, bounded by
    /// `max_steps`; returns `true` if the system fully drained.
    pub fn drain(&mut self, max_steps: u32) -> bool {
        self.drain_with(max_steps, &mut NoProf)
    }

    /// [`TieredStorageSystem::drain`] with phase attribution (see
    /// [`TieredStorageSystem::run_until_with`]).
    pub fn drain_with<P: PhaseSink>(&mut self, max_steps: u32, prof: &mut P) -> bool {
        let step = SimDuration::from_millis(100);
        let mut steps = 0;
        while self.pending_events() > 0 {
            if steps >= max_steps {
                return false;
            }
            let boundary = self.now() + step;
            self.run_until_with(boundary, prof);
            steps += 1;
        }
        true
    }

    /// Cumulative (promotions, demotions) summed over all levels — cheap
    /// enough to sample once per interval so an observer can trace
    /// per-interval movement deltas.
    pub fn movement_totals(&self) -> (u64, u64) {
        (0..self.levels.len()).fold((0, 0), |(p, d), level| {
            let movement = self.cache.movement(level);
            (p + movement.promotions_in, d + movement.demotions_in)
        })
    }

    /// Snapshot of the cumulative per-level statistics — the
    /// [`TierLevelStats`] rows surfaced on the simulation report.
    pub fn tier_level_stats(&self) -> Vec<TierLevelStats> {
        (0..self.levels.len())
            .map(|level| {
                let stats = self.cache.stats(level);
                let movement = self.cache.movement(level);
                let counters = &self.counters[level];
                let queue_stats = self.levels[level].queue().stats();
                TierLevelStats {
                    level,
                    hits: stats.read_hits + stats.write_hits,
                    promotions_in: movement.promotions_in,
                    demotions_in: movement.demotions_in,
                    spills_in: movement.spills_in,
                    read_spills_in: movement.read_spills_in,
                    back_invalidations: movement.back_invalidations,
                    enqueued: queue_stats.enqueued,
                    completed: counters.completed,
                    peak_queue_depth: queue_stats.peak_depth,
                    avg_latency_us: counters
                        .total_latency_us
                        .checked_div(counters.completed)
                        .unwrap_or(0),
                    max_latency_us: counters.max_latency_us,
                    cached_blocks: self.cache.cached_blocks(level),
                    dirty_blocks: self.cache.dirty_blocks(level),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbica_storage::request::RequestKind;

    fn record(ts: u64, sector: u64, kind: RequestKind) -> TraceRecord {
        TraceRecord::new(ts, sector, 8, kind)
    }

    fn two_tier_system() -> TieredStorageSystem {
        TieredStorageSystem::new(&SimulationConfig::tiny_two_tier())
    }

    #[test]
    fn prewarmed_hot_tier_read_completes_on_the_hot_ssd_only() {
        let mut sys = two_tier_system();
        sys.schedule_record(&record(0, 0, RequestKind::Read));
        sys.run_until(SimTime::from_millis(10));
        assert_eq!(sys.app_completed(), 1);
        let report = sys.end_interval(0);
        assert_eq!(report.cache.completed, 1);
        assert_eq!(report.disk.completed, 0);
        assert_eq!(report.cache.max_latency_us, 90, "hot tier services the hit");
    }

    #[test]
    fn warm_tier_hit_is_served_and_promoted() {
        let mut sys = two_tier_system();
        // Block 600 is prewarmed into the warm tier (hot holds 0..512).
        sys.schedule_record(&record(0, 600 * 8, RequestKind::Read));
        sys.run_until(SimTime::from_millis(10));
        assert_eq!(sys.app_completed(), 1);
        let report = sys.end_interval(0);
        assert_eq!(report.disk.completed, 0, "a warm-tier hit never touches the disk");
        assert!(report.cache.completed >= 2, "warm read + hot promote");
        let stats = sys.tier_level_stats();
        assert_eq!(stats[1].hits, 1);
        assert_eq!(stats[0].promotions_in, 1);
        assert_eq!(sys.cache().resident_level(600), Some(0), "the block moved up");
    }

    #[test]
    fn full_miss_touches_disk_and_fills_hot_tier() {
        let mut sys = two_tier_system();
        sys.schedule_record(&record(0, 10_000_000, RequestKind::Read));
        sys.run_until(SimTime::from_millis(50));
        let report = sys.end_interval(0);
        assert_eq!(report.disk.completed, 1);
        assert_eq!(sys.app_completed(), 1);
        assert_eq!(sys.cache().stats(0).read_misses, 1);
    }

    #[test]
    fn spill_moves_queued_writes_to_the_warm_tier() {
        let mut sys = two_tier_system();
        for i in 0..100u64 {
            sys.schedule_record(&record(1, (i % 500) * 8, RequestKind::Write));
        }
        sys.run_until(SimTime::from_micros(1_000));
        let before_hot = sys.level(0).outstanding();
        let moved = sys
            .apply_bypass(&BypassDirective::SpillTailWrites { max_requests: 40, target_level: 1 });
        assert!(moved > 0);
        assert!(sys.level(0).outstanding() < before_hot);
        assert!(sys.level(1).outstanding() > 0, "spilled writes queue at the warm tier");
        assert_eq!(sys.disk().outstanding(), 0, "the spill chain spares the disk");
        assert_eq!(sys.spilled_requests(), moved as u64);
        let stats = sys.tier_level_stats();
        assert_eq!(stats[1].spills_in, moved as u64);
    }

    #[test]
    fn read_spill_moves_queued_reads_to_the_warm_tier() {
        let mut sys = two_tier_system();
        // Prewarmed hot tier: every read hits and queues at level 0.
        for i in 0..100u64 {
            sys.schedule_record(&record(1, (i % 500) * 8, RequestKind::Read));
        }
        sys.run_until(SimTime::from_micros(1_000));
        let before_hot = sys.level(0).outstanding();
        let moved = sys
            .apply_bypass(&BypassDirective::SpillTailReads { max_requests: 40, target_level: 1 });
        assert!(moved > 0);
        assert!(sys.level(0).outstanding() < before_hot);
        assert!(sys.level(1).outstanding() > 0, "spilled reads queue at the warm tier");
        assert_eq!(sys.disk().outstanding(), 0, "reads never fall through to the disk");
        assert_eq!(sys.spilled_reads(), moved as u64);
        assert_eq!(sys.spilled_requests(), 0, "write-spill accounting is untouched");
        let stats = sys.tier_level_stats();
        assert_eq!(stats[1].read_spills_in, moved as u64);
        assert_eq!(stats[1].spills_in, 0);
        // The drained requests still complete.
        assert!(sys.drain(600));
        assert_eq!(sys.app_completed(), 100);
    }

    #[test]
    fn per_level_policies_split_the_hierarchy() {
        let mut sys = two_tier_system();
        sys.set_level_policies(&[WritePolicy::ReadOnly, WritePolicy::WriteBack]);
        assert_eq!(sys.level_policies(), &[WritePolicy::ReadOnly, WritePolicy::WriteBack]);
        assert_eq!(sys.policy(), WritePolicy::ReadOnly, "the hot tier's policy is the headline");
        // A write owned by the hot tier (block 0 is prewarmed there)
        // bypasses; a write owned by the warm tier (block 600) is absorbed.
        sys.schedule_record(&record(0, 0, RequestKind::Write));
        sys.schedule_record(&record(1, 600 * 8, RequestKind::Write));
        sys.run_until(SimTime::from_millis(10));
        let report = sys.end_interval(0);
        assert_eq!(report.disk.completed, 1, "only the RO-owned write reaches the disk");
        assert_eq!(sys.cache().stats(0).write_bypasses, 1);
        assert_eq!(sys.cache().stats(1).write_hits, 1);
    }

    #[test]
    fn plain_tail_bypass_still_reaches_the_disk() {
        let mut sys = two_tier_system();
        for i in 0..100u64 {
            sys.schedule_record(&record(1, (i % 500) * 8, RequestKind::Write));
        }
        sys.run_until(SimTime::from_micros(1_000));
        let moved = sys.apply_bypass(&BypassDirective::TailWrites { max_requests: 40 });
        assert!(moved > 0);
        assert!(sys.disk().outstanding() > 0);
    }

    #[test]
    fn tier_loads_report_every_level() {
        let mut sys = two_tier_system();
        for i in 0..50u64 {
            sys.schedule_record(&record(1, (i % 500) * 8, RequestKind::Write));
        }
        sys.run_until(SimTime::from_micros(500));
        let mut loads = Vec::new();
        sys.tier_loads_into(&mut loads);
        assert_eq!(loads.len(), 2);
        assert!(loads[0].queue_depth > 0);
        assert!(loads[0].avg_latency > SimDuration::ZERO);
    }

    #[test]
    fn mid_flight_snapshot_resumes_identically_to_the_unsplit_run() {
        let config = SimulationConfig::tiny_two_tier();
        let mut sys = TieredStorageSystem::new(&config);
        for i in 0..200u64 {
            let kind = if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read };
            sys.schedule_record(&record(i * 5, (i % 1_500) * 8, kind));
        }
        sys.run_until(SimTime::from_micros(500));
        let _ = sys.end_interval(0);
        assert!(sys.pending_events() > 0, "the snapshot must cover in-flight work");

        let mut w = SnapWriter::new();
        sys.snap_to(&mut w);
        let bytes = w.into_bytes();
        let mut restored = TieredStorageSystem::new(&config);
        let mut r = SnapReader::new(&bytes);
        restored.snap_state_from(&mut r).unwrap();
        r.finish().unwrap();

        for s in [&mut sys, &mut restored] {
            for i in 0..50u64 {
                s.schedule_record(&record(520 + i * 3, (i % 900) * 8, RequestKind::Read));
            }
            s.run_until(SimTime::from_micros(1_000));
        }
        assert_eq!(restored.now(), sys.now());
        assert_eq!(restored.end_interval(1), sys.end_interval(1));
        assert_eq!(restored.events_processed(), sys.events_processed());
        assert_eq!(restored.app_completed(), sys.app_completed());
        assert_eq!(restored.tier_level_stats(), sys.tier_level_stats());
        assert!(restored.drain(600) && sys.drain(600));
        assert_eq!(restored.app_completed(), sys.app_completed());
        assert_eq!(restored.tier_level_stats(), sys.tier_level_stats());
    }

    #[test]
    fn conservation_all_scheduled_requests_eventually_complete() {
        let mut sys = two_tier_system();
        for i in 0..300u64 {
            sys.schedule_record(&record(
                i * 20,
                (i % 3_000) * 8,
                if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read },
            ));
        }
        sys.run_until(SimTime::from_secs(10));
        assert_eq!(sys.app_completed(), 300);
        assert_eq!(sys.pending_events(), 0);
        assert_eq!(sys.level(0).outstanding(), 0);
        assert_eq!(sys.level(1).outstanding(), 0);
        assert_eq!(sys.disk().outstanding(), 0);
    }

    #[test]
    fn drain_completes_a_finite_backlog() {
        let mut sys = two_tier_system();
        for i in 0..50u64 {
            sys.schedule_record(&record(0, (i % 500) * 8, RequestKind::Write));
        }
        assert!(sys.drain(600));
        assert_eq!(sys.app_completed(), 50);
    }

    #[test]
    fn policy_switch_affects_the_whole_hierarchy() {
        let mut sys = two_tier_system();
        sys.set_policy(WritePolicy::ReadOnly);
        sys.schedule_record(&record(0, 600 * 8, RequestKind::Write));
        sys.run_until(SimTime::from_millis(10));
        let report = sys.end_interval(0);
        assert_eq!(report.disk.completed, 1, "RO bypasses the write to the disk");
        assert_eq!(sys.cache().resident_level(600), None, "the stale warm copy is gone");
    }
}
