//! Phase-structured burst workloads.
//!
//! The paper evaluates three enterprise workloads with burst I/O — TPC-C, a
//! mail server and a web server — monitored over fixed-length intervals
//! (200, 200 and 175 intervals respectively). A [`WorkloadSpec`] models such
//! a workload as a sequence of [`BurstPhase`]s, each with its own arrival
//! rate and access pattern; burst phases drive the I/O cache beyond its
//! service rate, which is precisely the situation LBICA is designed for.
//!
//! The canned constructors ([`WorkloadSpec::tpcc`],
//! [`WorkloadSpec::mail_server`], [`WorkloadSpec::web_server`]) are tuned so
//! that the request-class mixes observed in the SSD queue during bursts
//! match the ones the paper reports in Fig. 6 (e.g. TPC-C burst ≈ 44 % R /
//! 51 % P, mail-server burst ≈ 70 % W, web-server burst ≈ 64 % W).

use serde::{Deserialize, Serialize};

use lbica_storage::block::BLOCK_SECTORS;

use crate::gen::{generate_stream, AccessPattern, ArrivalProcess, PatternSpec};
use crate::io::BinaryTraceCodec;
use crate::record::TraceRecord;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Derives a tenant's private stream seed from the cell seed and the tenant
/// ordinal alone (FNV-1a over the two coordinates with a separator, then a
/// splitmix64 finisher — the same recipe the lab uses for per-cell seeds).
/// Because neither the tenant count nor any other axis participates, tenant
/// `t`'s stream is stable when tenants are added, removed, or the matrix
/// axes are reordered.
fn tenant_seed(seed: u64, tenant: u32) -> u64 {
    let mut h = FNV_OFFSET;
    for b in seed.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h = (h ^ 0xff).wrapping_mul(FNV_PRIME);
    for b in u64::from(tenant).to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether a phase is expected to overload the I/O cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseIntensity {
    /// Arrival rate comfortably below the cache device's service rate.
    Moderate,
    /// Arrival rate at or above the cache device's service rate — the
    /// "burst accesses" of the paper.
    Burst,
}

impl PhaseIntensity {
    /// Whether this is a burst phase.
    pub const fn is_burst(self) -> bool {
        matches!(self, PhaseIntensity::Burst)
    }
}

/// Which of the paper's workloads a spec models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The TPC-C online-transaction-processing workload.
    Tpcc,
    /// The mail-server workload.
    MailServer,
    /// The web-server workload.
    WebServer,
    /// A user-defined workload.
    Custom,
}

/// One phase of a workload: a fixed number of monitoring intervals during
/// which requests arrive at `iops` following `pattern`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstPhase {
    /// Human-readable phase label (shows up in reports).
    pub label: String,
    /// How many monitoring intervals the phase lasts.
    pub intervals: u32,
    /// Arrival rate in requests per second.
    pub iops: f64,
    /// Address/direction pattern of the phase.
    pub pattern: PatternSpec,
    /// Request size in cache blocks.
    pub request_blocks: u64,
    /// Whether the phase is a burst.
    pub intensity: PhaseIntensity,
}

impl BurstPhase {
    /// Creates a phase.
    pub fn new(
        label: impl Into<String>,
        intervals: u32,
        iops: f64,
        pattern: PatternSpec,
        intensity: PhaseIntensity,
    ) -> Self {
        BurstPhase { label: label.into(), intervals, iops, pattern, request_blocks: 1, intensity }
    }

    /// Sets the request size in blocks (builder style).
    pub fn with_request_blocks(mut self, blocks: u64) -> Self {
        self.request_blocks = blocks;
        self
    }
}

/// Scaling knobs shared by the canned workloads, so the same specs can be
/// used against a full-size cache (benchmarks) or a tiny one (unit tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadScale {
    /// Capacity of the I/O cache the workload will run against, in blocks.
    /// Working-set sizes are expressed relative to this.
    pub cache_blocks: u64,
    /// Arrival rate of burst phases, requests per second.
    pub burst_iops: f64,
    /// Arrival rate of moderate phases, requests per second.
    pub base_iops: f64,
    /// Length of one monitoring interval in microseconds.
    pub interval_us: u64,
    /// Multiplier applied to every phase's interval count (1 = the paper's
    /// full interval counts).
    pub interval_scale: f64,
}

impl WorkloadScale {
    /// The scale used by the reproduction harness: a 16 Ki-block (64 MiB)
    /// cache, 100 ms monitoring intervals, 12 kIOPS bursts.
    pub const fn harness() -> Self {
        WorkloadScale {
            cache_blocks: 16_384,
            burst_iops: 12_000.0,
            base_iops: 2_000.0,
            interval_us: 100_000,
            interval_scale: 1.0,
        }
    }

    /// A much smaller scale for fast unit/integration tests. The burst rate
    /// is set well above the cache device's service rate so that burst
    /// intervals reliably overload the cache even in very short runs.
    pub const fn tiny() -> Self {
        WorkloadScale {
            cache_blocks: 512,
            burst_iops: 30_000.0,
            base_iops: 1_000.0,
            interval_us: 20_000,
            interval_scale: 0.1,
        }
    }

    /// Applies `interval_scale` to one of the paper's phase lengths
    /// (never below one interval). Public so custom workload builders can
    /// shrink with the same rule as the canned specs.
    pub fn scaled_intervals(&self, paper_intervals: u32) -> u32 {
        ((paper_intervals as f64 * self.interval_scale).round() as u32).max(1)
    }
}

impl Default for WorkloadScale {
    fn default() -> Self {
        WorkloadScale::harness()
    }
}

/// A piecewise time-of-day load curve: the workload's run is divided into
/// `slots.len()` equal spans and every monitoring interval's arrival rate is
/// multiplied by its span's factor (in permille, so curves compare exactly —
/// 1000 leaves the rate untouched, 0 silences the span entirely).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DiurnalCurve {
    slots: Vec<u32>,
}

impl DiurnalCurve {
    /// Creates a curve from per-slot multipliers in permille.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty.
    pub fn new(slots: Vec<u32>) -> Self {
        assert!(!slots.is_empty(), "a diurnal curve needs at least one slot");
        DiurnalCurve { slots }
    }

    /// A canned day/night cycle: quiet night, morning ramp, midday peak at
    /// 1.5×, evening shoulder, back to quiet.
    pub fn day_night() -> Self {
        DiurnalCurve::new(vec![250, 500, 1_000, 1_500, 1_000, 500])
    }

    /// The per-slot multipliers in permille.
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }

    /// The multiplier (permille) applied to interval `index` of a workload
    /// spanning `total_intervals` intervals.
    pub fn factor_permille(&self, index: u32, total_intervals: u32) -> u32 {
        if total_intervals == 0 {
            return 1_000;
        }
        let slot = (u64::from(index) * self.slots.len() as u64) / u64::from(total_intervals);
        self.slots[(slot as usize).min(self.slots.len() - 1)]
    }
}

/// N interleaved tenant streams sharing one storage stack: tenant `t` runs
/// `templates[t % templates.len()]` with a coordinate-derived private seed
/// and an address footprint offset by `t * tenant_blocks` blocks, and the
/// per-tenant streams are merged into one arrival stream by timestamp
/// (stably, so ties keep tenant order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantMix {
    count: u32,
    tenant_blocks: u64,
    templates: Vec<WorkloadSpec>,
}

impl TenantMix {
    /// Number of tenants.
    pub const fn count(&self) -> u32 {
        self.count
    }

    /// Address-space stride between consecutive tenants, in blocks.
    pub const fn tenant_blocks(&self) -> u64 {
        self.tenant_blocks
    }

    /// The per-tenant workload templates, cycled over tenant ordinals.
    pub fn templates(&self) -> &[WorkloadSpec] {
        &self.templates
    }
}

/// Error from [`WorkloadSpec::try_replay`]: the captured trace spans more
/// monitoring intervals than the `u32` interval counter can hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpanError {
    /// Number of intervals the trace would need.
    pub intervals: u64,
}

impl std::fmt::Display for TraceSpanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace spans {} intervals, more than the interval counter holds", self.intervals)
    }
}

impl std::error::Error for TraceSpanError {}

/// A captured trace carried by a replay workload: records sorted by
/// timestamp plus the number of monitoring intervals the trace spans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ReplayTrace {
    records: Vec<TraceRecord>,
    intervals: u32,
}

/// A complete phase-structured workload — or, when built from a captured
/// trace via [`WorkloadSpec::replay`], a deterministic replay that feeds
/// the recorded arrivals through the same interval loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    name: String,
    kind: WorkloadKind,
    interval_us: u64,
    phases: Vec<BurstPhase>,
    base_block: u64,
    replay: Option<ReplayTrace>,
    diurnal: Option<DiurnalCurve>,
    tenants: Option<TenantMix>,
}

impl WorkloadSpec {
    /// Creates an empty workload; add phases with [`WorkloadSpec::push_phase`].
    pub fn new(name: impl Into<String>, kind: WorkloadKind, interval_us: u64) -> Self {
        assert!(interval_us > 0, "interval length must be positive");
        WorkloadSpec {
            name: name.into(),
            kind,
            interval_us,
            phases: Vec::new(),
            base_block: 0,
            replay: None,
            diurnal: None,
            tenants: None,
        }
    }

    /// Builds a workload that *replays* a captured trace instead of
    /// generating synthetic arrivals: every monitoring interval feeds the
    /// recorded requests whose timestamps fall inside it, in timestamp
    /// order, ignoring the stream seed (replays are inherently
    /// deterministic — the same trace gives bit-identical runs at any
    /// worker count).
    ///
    /// # Panics
    ///
    /// Panics if `interval_us` is zero or the trace span overflows the
    /// interval counter (use [`WorkloadSpec::try_replay`] to get a typed
    /// error instead).
    pub fn replay(name: impl Into<String>, interval_us: u64, records: Vec<TraceRecord>) -> Self {
        WorkloadSpec::try_replay(name, interval_us, records)
            .unwrap_or_else(|e| panic!("trace span fits the interval counter: {e}"))
    }

    /// [`WorkloadSpec::replay`], but a trace whose span overflows the `u32`
    /// interval counter (e.g. a hostile import with a `u64::MAX` timestamp)
    /// is rejected with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TraceSpanError`] when the last record's timestamp implies
    /// more than `u32::MAX` monitoring intervals.
    ///
    /// # Panics
    ///
    /// Panics if `interval_us` is zero.
    pub fn try_replay(
        name: impl Into<String>,
        interval_us: u64,
        mut records: Vec<TraceRecord>,
    ) -> Result<Self, TraceSpanError> {
        assert!(interval_us > 0, "interval length must be positive");
        records.sort_by_key(|r| r.timestamp_us);
        let intervals = match records.last() {
            Some(last) => {
                let span = last.timestamp_us / interval_us + 1;
                u32::try_from(span).map_err(|_| TraceSpanError { intervals: span })?
            }
            None => 0,
        };
        Ok(WorkloadSpec {
            name: name.into(),
            kind: WorkloadKind::Custom,
            interval_us,
            phases: Vec::new(),
            base_block: 0,
            replay: Some(ReplayTrace { records, intervals }),
            diurnal: None,
            tenants: None,
        })
    }

    /// Builds an N-tenant interleaved workload: tenant `t` runs
    /// `templates[t % templates.len()]` with a private coordinate-derived
    /// seed, offset by `t * tenant_blocks` blocks, and the streams merge by
    /// timestamp. The merged stream is byte-stable per tenant: adding or
    /// removing tenants never perturbs the surviving tenants' records.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, `templates` is empty, or any template is
    /// a replay / multi-tenant spec or disagrees on the interval length.
    pub fn multi_tenant(
        name: impl Into<String>,
        count: u32,
        tenant_blocks: u64,
        templates: Vec<WorkloadSpec>,
    ) -> Self {
        assert!(count > 0, "a tenant mix needs at least one tenant");
        assert!(!templates.is_empty(), "a tenant mix needs at least one template");
        let interval_us = templates[0].interval_us;
        for t in &templates {
            assert!(!t.is_replay(), "tenant templates must be synthetic workloads");
            assert!(t.tenants.is_none(), "tenant mixes do not nest");
            assert_eq!(t.interval_us, interval_us, "tenant templates share one interval length");
        }
        WorkloadSpec {
            name: name.into(),
            kind: WorkloadKind::Custom,
            interval_us,
            phases: Vec::new(),
            base_block: 0,
            replay: None,
            diurnal: None,
            tenants: Some(TenantMix { count, tenant_blocks, templates }),
        }
    }

    /// [`WorkloadSpec::replay`] from a [`BinaryTraceCodec`]-encoded buffer —
    /// the bridge from captured trace files to scenario-matrix cells.
    ///
    /// # Errors
    ///
    /// Propagates the codec's decoding errors (truncated or malformed
    /// buffers).
    pub fn replay_from_binary(
        name: impl Into<String>,
        interval_us: u64,
        data: bytes::Bytes,
    ) -> std::io::Result<Self> {
        let records = BinaryTraceCodec.decode(data)?;
        Ok(WorkloadSpec::replay(name, interval_us, records))
    }

    /// Whether this workload replays a captured trace.
    pub fn is_replay(&self) -> bool {
        self.replay.is_some()
    }

    /// The captured records of a replay workload (empty for synthetic
    /// workloads).
    pub fn replay_records(&self) -> &[TraceRecord] {
        self.replay.as_ref().map_or(&[], |r| r.records.as_slice())
    }

    /// Appends a phase (builder style).
    pub fn push_phase(mut self, phase: BurstPhase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Offsets the whole workload's footprint on the device (builder style).
    pub fn with_base_block(mut self, base_block: u64) -> Self {
        self.base_block = base_block;
        self
    }

    /// Renames the workload (builder style). Matrix axes key cells, seeds
    /// and aggregation rows by name, so a derived variant (e.g. a canned
    /// workload reshaped by a diurnal curve) must take a distinct name
    /// before joining an axis that also carries the original.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Reshapes the workload's arrival rates through a piecewise load curve
    /// (builder style). The curve scales every synthetic phase's IOPS by the
    /// interval's slot factor; on a multi-tenant spec it modulates all
    /// tenants together (composing with any per-template curve).
    ///
    /// # Panics
    ///
    /// Panics on replay workloads — a captured trace has fixed arrivals.
    pub fn with_diurnal(mut self, curve: DiurnalCurve) -> Self {
        assert!(!self.is_replay(), "diurnal curves apply to synthetic workloads only");
        self.diurnal = Some(curve);
        self
    }

    /// The diurnal curve, if one is attached.
    pub fn diurnal(&self) -> Option<&DiurnalCurve> {
        self.diurnal.as_ref()
    }

    /// The tenant mix of a multi-tenant workload.
    pub fn tenants(&self) -> Option<&TenantMix> {
        self.tenants.as_ref()
    }

    /// Number of interleaved tenants (1 for single-stream workloads).
    pub fn tenant_count(&self) -> u32 {
        self.tenants.as_ref().map_or(1, |m| m.count)
    }

    /// The workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which canned workload this is.
    pub const fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Length of one monitoring interval in microseconds.
    pub const fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// The workload's phases, in order.
    pub fn phases(&self) -> &[BurstPhase] {
        &self.phases
    }

    /// Total number of monitoring intervals: the sum over all phases, or
    /// the captured trace's span for a replay workload.
    pub fn total_intervals(&self) -> u32 {
        if let Some(replay) = &self.replay {
            return replay.intervals;
        }
        if let Some(mix) = &self.tenants {
            return mix.templates.iter().map(WorkloadSpec::total_intervals).max().unwrap_or(0);
        }
        self.phases.iter().map(|p| p.intervals).sum()
    }

    /// Total simulated duration in microseconds.
    pub fn total_duration_us(&self) -> u64 {
        self.total_intervals() as u64 * self.interval_us
    }

    /// The phase covering monitoring interval `index`, together with the
    /// phase's ordinal, or `None` past the end of the workload.
    pub fn phase_for_interval(&self, index: u32) -> Option<(usize, &BurstPhase)> {
        let mut start = 0;
        for (i, phase) in self.phases.iter().enumerate() {
            if index < start + phase.intervals {
                return Some((i, phase));
            }
            start += phase.intervals;
        }
        None
    }

    /// Whether interval `index` falls in a burst phase (for a multi-tenant
    /// workload: in a burst phase of *any* tenant's template).
    pub fn is_burst_interval(&self, index: u32) -> bool {
        if let Some(mix) = &self.tenants {
            return mix.templates.iter().any(|t| t.is_burst_interval(index));
        }
        self.phase_for_interval(index).map(|(_, p)| p.intensity.is_burst()).unwrap_or(false)
    }

    /// The diurnal multiplier (permille) this spec applies to interval
    /// `index`: 1000 when no curve is attached.
    fn interval_factor_permille(&self, index: u32) -> u32 {
        match &self.diurnal {
            Some(curve) => curve.factor_permille(index, self.total_intervals()),
            None => 1_000,
        }
    }

    /// Generates the open-loop request stream for monitoring interval
    /// `index`, deterministically for a given `seed`. Replay workloads
    /// return the captured records falling inside the interval window (the
    /// seed is ignored — a replay is the same stream for every seed);
    /// multi-tenant workloads merge every tenant's stream by timestamp.
    pub fn generate_interval(&self, index: u32, seed: u64) -> Vec<TraceRecord> {
        if let Some(replay) = &self.replay {
            let lo = index as u64 * self.interval_us;
            let hi = lo + self.interval_us;
            let start = replay.records.partition_point(|r| r.timestamp_us < lo);
            let end = replay.records.partition_point(|r| r.timestamp_us < hi);
            return replay.records[start..end].to_vec();
        }
        let permille = u64::from(self.interval_factor_permille(index));
        if let Some(mix) = &self.tenants {
            let mut out = Vec::new();
            for tenant in 0..mix.count {
                out.extend(self.tenant_interval_scaled(tenant, index, seed, permille));
            }
            // Stable sort: equal timestamps keep tenant order, so the merge
            // is a pure function of the per-tenant streams.
            out.sort_by_key(|r| r.timestamp_us);
            return out;
        }
        self.synthetic_interval(index, seed, permille)
    }

    /// Generates tenant `tenant`'s contribution to monitoring interval
    /// `index` — exactly the records [`WorkloadSpec::generate_interval`]
    /// merges for that tenant, address offset included. This is the hook
    /// per-tenant accounting builds on.
    ///
    /// # Panics
    ///
    /// Panics unless this is a multi-tenant workload and `tenant` is in
    /// range.
    pub fn tenant_interval(&self, tenant: u32, index: u32, seed: u64) -> Vec<TraceRecord> {
        let permille = u64::from(self.interval_factor_permille(index));
        self.tenant_interval_scaled(tenant, index, seed, permille)
    }

    fn tenant_interval_scaled(
        &self,
        tenant: u32,
        index: u32,
        seed: u64,
        permille: u64,
    ) -> Vec<TraceRecord> {
        let mix = self.tenants.as_ref().expect("tenant streams require a multi-tenant workload");
        assert!(tenant < mix.count, "tenant ordinal out of range");
        let template = &mix.templates[tenant as usize % mix.templates.len()];
        let composed = permille * u64::from(template.interval_factor_permille(index)) / 1_000;
        let mut records = template.synthetic_interval(index, tenant_seed(seed, tenant), composed);
        let offset = u64::from(tenant) * mix.tenant_blocks * BLOCK_SECTORS;
        for r in &mut records {
            r.sector += offset;
        }
        records
    }

    /// The synthetic phase-driven generation path, with the arrival rate
    /// scaled by `permille` (1000 = unscaled; 0 = a silenced interval).
    fn synthetic_interval(&self, index: u32, seed: u64, permille: u64) -> Vec<TraceRecord> {
        let Some((phase_idx, phase)) = self.phase_for_interval(index) else {
            return Vec::new();
        };
        if permille == 0 {
            return Vec::new();
        }
        let start_us = index as u64 * self.interval_us;
        let stream_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index as u64)
            .wrapping_add((phase_idx as u64) << 32);
        let iops = phase.iops * (permille as f64 / 1_000.0);
        let mut pattern =
            AccessPattern::new(phase.pattern, self.base_block, phase.request_blocks, stream_seed);
        let mut arrivals = ArrivalProcess::new(iops, stream_seed ^ 0xA5A5_5A5A);
        generate_stream(&mut pattern, &mut arrivals, start_us, self.interval_us)
    }

    /// Generates the full trace for the workload.
    pub fn generate_all(&self, seed: u64) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for idx in 0..self.total_intervals() {
            out.extend(self.generate_interval(idx, seed));
        }
        out
    }

    /// The TPC-C-like workload (paper Fig. 4a/5a/6a, 200 intervals):
    /// hotspot OLTP traffic with long random-read bursts whose misses flood
    /// the cache with promotes (R ≈ 44 %, P ≈ 51 % in the burst of
    /// interval 3).
    pub fn tpcc() -> Self {
        WorkloadSpec::tpcc_scaled(WorkloadScale::default())
    }

    /// [`WorkloadSpec::tpcc`] at an explicit scale.
    ///
    /// Burst arrival rates are tuned per workload so that, under the plain
    /// write-back cache, the *derived* SSD load (application hits plus the
    /// promotes and evictions the cache generates) sits just above the cache
    /// device's service rate: a random-read burst roughly doubles its
    /// arrival rate on the SSD (one promote per miss), while write-heavy
    /// bursts nearly triple it (dirty evictions), hence the different
    /// multipliers below.
    pub fn tpcc_scaled(scale: WorkloadScale) -> Self {
        let cb = scale.cache_blocks;
        let burst_iops = scale.burst_iops * 1.1;
        WorkloadSpec::new("tpcc", WorkloadKind::Tpcc, scale.interval_us)
            .push_phase(BurstPhase::new(
                "warmup",
                scale.scaled_intervals(3),
                scale.base_iops,
                PatternSpec::Hotspot {
                    read_fraction: 0.85,
                    working_set_blocks: cb,
                    hot_fraction: 0.2,
                    hot_probability: 0.8,
                },
                PhaseIntensity::Moderate,
            ))
            .push_phase(BurstPhase::new(
                "burst-random-read-1",
                scale.scaled_intervals(57),
                burst_iops,
                PatternSpec::RandomRead { working_set_blocks: cb * 2 },
                PhaseIntensity::Burst,
            ))
            .push_phase(BurstPhase::new(
                "steady-oltp",
                scale.scaled_intervals(40),
                scale.base_iops,
                PatternSpec::Hotspot {
                    read_fraction: 0.9,
                    working_set_blocks: cb,
                    hot_fraction: 0.2,
                    hot_probability: 0.85,
                },
                PhaseIntensity::Moderate,
            ))
            .push_phase(BurstPhase::new(
                "burst-random-read-2",
                scale.scaled_intervals(50),
                burst_iops,
                PatternSpec::RandomRead { working_set_blocks: cb * 2 },
                PhaseIntensity::Burst,
            ))
            .push_phase(BurstPhase::new(
                "cooldown",
                scale.scaled_intervals(50),
                scale.base_iops,
                PatternSpec::Hotspot {
                    read_fraction: 0.9,
                    working_set_blocks: cb,
                    hot_fraction: 0.2,
                    hot_probability: 0.85,
                },
                PhaseIntensity::Moderate,
            ))
    }

    /// The mail-server workload (paper Fig. 4b/5b/6b, 200 intervals): a
    /// long write-heavy mixed burst (RO assigned at interval 23), a short
    /// random-read burst (WO at interval 128) and a write-intensive burst
    /// (WB at interval 134).
    pub fn mail_server() -> Self {
        WorkloadSpec::mail_server_scaled(WorkloadScale::default())
    }

    /// [`WorkloadSpec::mail_server`] at an explicit scale.
    pub fn mail_server_scaled(scale: WorkloadScale) -> Self {
        let cb = scale.cache_blocks;
        // Write-heavy bursts generate roughly one dirty eviction per write
        // once the cache is saturated, so their arrival rates are scaled
        // down to keep the derived SSD load just above the service rate.
        let mixed_burst_iops = scale.burst_iops * 0.5;
        let scan_burst_iops = scale.burst_iops * 1.1;
        let write_burst_iops = scale.burst_iops * 0.45;
        WorkloadSpec::new("mail-server", WorkloadKind::MailServer, scale.interval_us)
            .push_phase(BurstPhase::new(
                "steady-delivery",
                scale.scaled_intervals(23),
                scale.base_iops,
                PatternSpec::Mixed { read_fraction: 0.5, working_set_blocks: cb },
                PhaseIntensity::Moderate,
            ))
            .push_phase(BurstPhase::new(
                "burst-mixed-write-heavy",
                scale.scaled_intervals(105),
                mixed_burst_iops,
                PatternSpec::Hotspot {
                    read_fraction: 0.22,
                    working_set_blocks: cb + cb / 2,
                    hot_fraction: 0.3,
                    hot_probability: 0.75,
                },
                PhaseIntensity::Burst,
            ))
            .push_phase(BurstPhase::new(
                "burst-mailbox-scan",
                scale.scaled_intervals(6),
                scan_burst_iops,
                PatternSpec::RandomRead { working_set_blocks: cb * 2 },
                PhaseIntensity::Burst,
            ))
            .push_phase(BurstPhase::new(
                "burst-write-intensive",
                scale.scaled_intervals(30),
                write_burst_iops,
                PatternSpec::RandomWrite { working_set_blocks: cb * 2 },
                PhaseIntensity::Burst,
            ))
            .push_phase(BurstPhase::new(
                "cooldown",
                scale.scaled_intervals(36),
                scale.base_iops,
                PatternSpec::Mixed { read_fraction: 0.5, working_set_blocks: cb },
                PhaseIntensity::Moderate,
            ))
    }

    /// The web-server workload (paper Fig. 4c/5c/6c, 175 intervals): a
    /// mixed read/write burst right at the start (RO assigned at interval 1)
    /// followed by a long moderate tail.
    pub fn web_server() -> Self {
        WorkloadSpec::web_server_scaled(WorkloadScale::default())
    }

    /// [`WorkloadSpec::web_server`] at an explicit scale.
    pub fn web_server_scaled(scale: WorkloadScale) -> Self {
        let cb = scale.cache_blocks;
        let burst_iops = scale.burst_iops * 0.55;
        WorkloadSpec::new("web-server", WorkloadKind::WebServer, scale.interval_us)
            .push_phase(BurstPhase::new(
                "burst-mixed",
                scale.scaled_intervals(40),
                burst_iops,
                PatternSpec::Hotspot {
                    read_fraction: 0.28,
                    working_set_blocks: cb + cb / 2,
                    hot_fraction: 0.25,
                    hot_probability: 0.7,
                },
                PhaseIntensity::Burst,
            ))
            .push_phase(BurstPhase::new(
                "steady-serving",
                scale.scaled_intervals(135),
                scale.base_iops,
                PatternSpec::Hotspot {
                    read_fraction: 0.75,
                    working_set_blocks: cb,
                    hot_fraction: 0.15,
                    hot_probability: 0.85,
                },
                PhaseIntensity::Moderate,
            ))
    }

    /// A parameterized synthetic workload for scenario sweeps: a moderate
    /// warm-up, one long mixed burst with the given read fraction, and a
    /// moderate cool-down (120 paper intervals total). Sweeping
    /// `read_fraction` from 0 to 1 moves the burst across the paper's
    /// workload groups (write-intensive → read-intensive), exercising
    /// controller behaviours the three canned workloads never hit.
    ///
    /// # Panics
    ///
    /// Panics if `read_fraction` is outside `[0, 1]`.
    pub fn synthetic_scaled(
        name: impl Into<String>,
        scale: WorkloadScale,
        read_fraction: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction must be within [0, 1], got {read_fraction}"
        );
        let cb = scale.cache_blocks;
        // Read-heavy bursts roughly double their SSD load (one promote per
        // miss) while write-heavy bursts nearly triple it (dirty
        // evictions); interpolate the arrival rate between the two regimes
        // so the burst always sits just above the cache's service rate.
        let burst_iops = scale.burst_iops * (0.45 + 0.65 * read_fraction);
        WorkloadSpec::new(name, WorkloadKind::Custom, scale.interval_us)
            .push_phase(BurstPhase::new(
                "warmup",
                scale.scaled_intervals(20),
                scale.base_iops,
                PatternSpec::Mixed { read_fraction: 0.6, working_set_blocks: cb },
                PhaseIntensity::Moderate,
            ))
            .push_phase(BurstPhase::new(
                "burst-mixed",
                scale.scaled_intervals(60),
                burst_iops,
                PatternSpec::Mixed { read_fraction, working_set_blocks: cb * 2 },
                PhaseIntensity::Burst,
            ))
            .push_phase(BurstPhase::new(
                "cooldown",
                scale.scaled_intervals(40),
                scale.base_iops,
                PatternSpec::Mixed { read_fraction: 0.6, working_set_blocks: cb },
                PhaseIntensity::Moderate,
            ))
    }

    /// All three canned workloads at the given scale, in the order the
    /// paper plots them.
    pub fn paper_suite(scale: WorkloadScale) -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::tpcc_scaled(scale),
            WorkloadSpec::mail_server_scaled(scale),
            WorkloadSpec::web_server_scaled(scale),
        ]
    }

    /// A Zipf-popularity workload for heavy-tail sweeps: a moderate warm-up,
    /// one long read-heavy burst whose block popularity follows
    /// `Zipf(skew_permille / 1000)` over twice the cache, and a cool-down.
    /// Sweeping the skew moves the burst from uniform-random (0) to strongly
    /// concentrated (≥ 1000), which monotonically improves cache hit rates.
    pub fn zipfian_scaled(
        name: impl Into<String>,
        scale: WorkloadScale,
        skew_permille: u32,
    ) -> Self {
        let cb = scale.cache_blocks;
        let zipf = |working_set_blocks: u64| PatternSpec::Zipfian {
            read_fraction: 0.8,
            working_set_blocks,
            skew_permille,
        };
        WorkloadSpec::new(name, WorkloadKind::Custom, scale.interval_us)
            .push_phase(BurstPhase::new(
                "warmup",
                scale.scaled_intervals(20),
                scale.base_iops,
                zipf(cb),
                PhaseIntensity::Moderate,
            ))
            .push_phase(BurstPhase::new(
                "burst-zipf",
                scale.scaled_intervals(60),
                scale.burst_iops,
                zipf(cb * 2),
                PhaseIntensity::Burst,
            ))
            .push_phase(BurstPhase::new(
                "cooldown",
                scale.scaled_intervals(40),
                scale.base_iops,
                zipf(cb),
                PhaseIntensity::Moderate,
            ))
    }

    /// The paper's three workloads interleaved as `tenants` independent
    /// client streams — the "millions of users" scenario in miniature. Each
    /// tenant cycles through TPC-C / mail-server / web-server templates
    /// whose arrival rates are divided by the tenant count, so the combined
    /// offered load matches a single-stream run of the same scale while the
    /// address space splits into disjoint per-tenant regions.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero.
    pub fn paper_mt_scaled(scale: WorkloadScale, tenants: u32) -> Self {
        assert!(tenants > 0, "a tenant mix needs at least one tenant");
        let per_tenant = WorkloadScale {
            burst_iops: scale.burst_iops / f64::from(tenants),
            base_iops: scale.base_iops / f64::from(tenants),
            ..scale
        };
        WorkloadSpec::multi_tenant(
            format!("paper-mt{tenants}"),
            tenants,
            scale.cache_blocks * 4,
            WorkloadSpec::paper_suite(per_tenant),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_interval_counts_match() {
        assert_eq!(WorkloadSpec::tpcc().total_intervals(), 200);
        assert_eq!(WorkloadSpec::mail_server().total_intervals(), 200);
        assert_eq!(WorkloadSpec::web_server().total_intervals(), 175);
    }

    #[test]
    fn phase_lookup_covers_all_intervals() {
        let spec = WorkloadSpec::mail_server();
        let total = spec.total_intervals();
        for idx in 0..total {
            assert!(spec.phase_for_interval(idx).is_some(), "interval {idx} uncovered");
        }
        assert!(spec.phase_for_interval(total).is_none());
    }

    #[test]
    fn mail_server_burst_structure_matches_fig6b() {
        let spec = WorkloadSpec::mail_server();
        assert!(!spec.is_burst_interval(10));
        assert!(spec.is_burst_interval(23));
        assert!(spec.is_burst_interval(100));
        assert!(spec.is_burst_interval(129));
        assert!(spec.is_burst_interval(140));
        assert!(!spec.is_burst_interval(180));
        // The phase starting at interval 128 is the mailbox-scan (random read).
        let (_, phase) = spec.phase_for_interval(130).unwrap();
        assert!(matches!(phase.pattern, PatternSpec::RandomRead { .. }));
        // And at 134+ the write-intensive burst begins.
        let (_, phase) = spec.phase_for_interval(140).unwrap();
        assert!(matches!(phase.pattern, PatternSpec::RandomWrite { .. }));
    }

    #[test]
    fn generated_interval_is_deterministic_and_in_window() {
        let spec = WorkloadSpec::tpcc();
        let a = spec.generate_interval(5, 42);
        let b = spec.generate_interval(5, 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let lo = 5 * spec.interval_us();
        let hi = 6 * spec.interval_us();
        assert!(a.iter().all(|r| r.timestamp_us >= lo && r.timestamp_us < hi));
        let c = spec.generate_interval(5, 43);
        assert_ne!(a, c, "different seeds give different streams");
    }

    #[test]
    fn burst_intervals_carry_more_requests_than_moderate_ones() {
        let spec = WorkloadSpec::tpcc();
        let moderate = spec.generate_interval(0, 7).len();
        let burst = spec.generate_interval(10, 7).len();
        assert!(burst > 2 * moderate, "burst {burst} vs moderate {moderate}");
    }

    #[test]
    fn out_of_range_interval_generates_nothing() {
        let spec = WorkloadSpec::web_server();
        assert!(spec.generate_interval(10_000, 1).is_empty());
    }

    #[test]
    fn tiny_scale_shrinks_everything() {
        let spec = WorkloadSpec::tpcc_scaled(WorkloadScale::tiny());
        assert!(spec.total_intervals() < 30);
        assert!(spec.total_duration_us() < 1_000_000);
    }

    #[test]
    fn paper_suite_contains_three_workloads_in_order() {
        let suite = WorkloadSpec::paper_suite(WorkloadScale::tiny());
        let kinds: Vec<WorkloadKind> = suite.iter().map(|w| w.kind()).collect();
        assert_eq!(
            kinds,
            vec![WorkloadKind::Tpcc, WorkloadKind::MailServer, WorkloadKind::WebServer]
        );
    }

    #[test]
    fn custom_workload_builder_works() {
        let spec = WorkloadSpec::new("mine", WorkloadKind::Custom, 50_000)
            .with_base_block(1_000_000)
            .push_phase(BurstPhase::new(
                "only",
                4,
                1_000.0,
                PatternSpec::SequentialRead { length_blocks: 100 },
                PhaseIntensity::Moderate,
            ));
        assert_eq!(spec.total_intervals(), 4);
        assert_eq!(spec.name(), "mine");
        let recs = spec.generate_interval(0, 1);
        assert!(recs.iter().all(|r| r.sector >= 1_000_000 * 8));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_length_panics() {
        let _ = WorkloadSpec::new("bad", WorkloadKind::Custom, 0);
    }

    #[test]
    fn synthetic_workload_scales_and_sweeps_its_read_fraction() {
        let scale = WorkloadScale::tiny();
        let writes = WorkloadSpec::synthetic_scaled("syn-w", scale, 0.0);
        let reads = WorkloadSpec::synthetic_scaled("syn-r", scale, 1.0);
        assert_eq!(writes.kind(), WorkloadKind::Custom);
        assert_eq!(writes.total_intervals(), reads.total_intervals());
        assert!(writes.phases().iter().any(|p| p.intensity.is_burst()));
        // A higher read fraction allows a higher burst arrival rate.
        let burst_iops = |spec: &WorkloadSpec| {
            spec.phases().iter().find(|p| p.intensity.is_burst()).unwrap().iops
        };
        assert!(burst_iops(&reads) > burst_iops(&writes));
        // The generated stream is non-empty and deterministic.
        let burst_interval = (0..writes.total_intervals())
            .find(|i| writes.is_burst_interval(*i))
            .expect("synthetic workloads have a burst");
        let a = writes.generate_interval(burst_interval, 5);
        assert!(!a.is_empty());
        assert_eq!(a, writes.generate_interval(burst_interval, 5));
    }

    #[test]
    fn replay_workload_feeds_back_the_captured_stream() {
        use lbica_storage::request::RequestKind;
        // Deliberately unsorted capture spanning three 1 ms intervals.
        let records = vec![
            TraceRecord::new(2_500, 160, 8, RequestKind::Write),
            TraceRecord::new(100, 0, 8, RequestKind::Read),
            TraceRecord::new(1_200, 80, 16, RequestKind::Write),
            TraceRecord::new(999, 40, 8, RequestKind::Read),
        ];
        let spec = WorkloadSpec::replay("capture", 1_000, records);
        assert!(spec.is_replay());
        assert_eq!(spec.total_intervals(), 3);
        assert_eq!(spec.replay_records().len(), 4);
        // Interval 0 holds the two sub-millisecond records, sorted.
        let i0 = spec.generate_interval(0, 42);
        assert_eq!(i0.len(), 2);
        assert!(i0[0].timestamp_us <= i0[1].timestamp_us);
        assert_eq!(spec.generate_interval(1, 42).len(), 1);
        assert_eq!(spec.generate_interval(2, 42).len(), 1);
        assert!(spec.generate_interval(3, 42).is_empty());
        // The seed does not matter: replays are the same stream always.
        assert_eq!(spec.generate_all(1), spec.generate_all(99));
        assert_eq!(spec.generate_all(1).len(), 4);
        // Burst/phase machinery reports the replay has no phases.
        assert!(!spec.is_burst_interval(0));
        assert!(spec.phase_for_interval(0).is_none());
    }

    #[test]
    fn empty_replay_has_no_intervals() {
        let spec = WorkloadSpec::replay("empty", 1_000, Vec::new());
        assert_eq!(spec.total_intervals(), 0);
        assert!(spec.generate_interval(0, 1).is_empty());
    }

    #[test]
    fn replay_from_binary_round_trips_through_the_codec() {
        use crate::io::BinaryTraceCodec;
        use lbica_storage::request::RequestKind;
        let records = vec![
            TraceRecord::new(10, 8, 8, RequestKind::Read),
            TraceRecord::new(20, 16, 8, RequestKind::Write),
        ];
        let encoded = BinaryTraceCodec.encode(&records);
        let spec = WorkloadSpec::replay_from_binary("bin", 1_000, encoded).unwrap();
        assert_eq!(spec.replay_records(), records.as_slice());
        // Malformed buffers propagate the codec error.
        let bad = bytes::Bytes::from(vec![1u8, 2, 3]);
        assert!(WorkloadSpec::replay_from_binary("bad", 1_000, bad).is_err());
    }

    #[test]
    #[should_panic(expected = "read fraction")]
    fn synthetic_workload_rejects_bad_read_fraction() {
        let _ = WorkloadSpec::synthetic_scaled("bad", WorkloadScale::tiny(), 1.5);
    }

    #[test]
    fn scaled_intervals_is_public_and_floors_at_one() {
        let scale = WorkloadScale::tiny();
        assert_eq!(scale.scaled_intervals(1), 1);
        assert_eq!(scale.scaled_intervals(200), 20);
    }

    #[test]
    fn diurnal_curve_maps_intervals_to_slots() {
        let curve = DiurnalCurve::new(vec![100, 1_000, 2_000]);
        assert_eq!(curve.factor_permille(0, 9), 100);
        assert_eq!(curve.factor_permille(2, 9), 100);
        assert_eq!(curve.factor_permille(3, 9), 1_000);
        assert_eq!(curve.factor_permille(8, 9), 2_000);
        // Degenerate totals fall back to the identity factor.
        assert_eq!(curve.factor_permille(0, 0), 1_000);
    }

    #[test]
    fn diurnal_curve_reshapes_arrival_volume() {
        let scale = WorkloadScale::tiny();
        let flat = WorkloadSpec::synthetic_scaled("flat", scale, 0.6);
        let shaped = WorkloadSpec::synthetic_scaled("shaped", scale, 0.6)
            .with_diurnal(DiurnalCurve::new(vec![0, 1_000, 2_000]));
        let total = shaped.total_intervals();
        let third = total / 3;
        // The silenced first third generates nothing; the middle third is
        // untouched (factor 1000 multiplies by exactly 1.0); the last third
        // roughly doubles.
        assert!(shaped.generate_interval(0, 7).is_empty());
        assert_eq!(shaped.generate_interval(third + 1, 7), flat.generate_interval(third + 1, 7));
        let flat_last = flat.generate_interval(total - 1, 7).len();
        let shaped_last = shaped.generate_interval(total - 1, 7).len();
        assert!(shaped_last > flat_last * 3 / 2, "doubled slot: {shaped_last} vs flat {flat_last}");
    }

    #[test]
    fn identity_diurnal_curve_changes_nothing() {
        let scale = WorkloadScale::tiny();
        let plain = WorkloadSpec::tpcc_scaled(scale);
        let shaped = WorkloadSpec::tpcc_scaled(scale).with_diurnal(DiurnalCurve::new(vec![1_000]));
        for idx in 0..plain.total_intervals() {
            assert_eq!(plain.generate_interval(idx, 11), shaped.generate_interval(idx, 11));
        }
    }

    #[test]
    #[should_panic(expected = "synthetic workloads only")]
    fn diurnal_on_replay_panics() {
        let _ =
            WorkloadSpec::replay("cap", 1_000, Vec::new()).with_diurnal(DiurnalCurve::day_night());
    }

    fn tiny_mt(tenants: u32) -> WorkloadSpec {
        WorkloadSpec::paper_mt_scaled(WorkloadScale::tiny(), tenants)
    }

    #[test]
    fn multi_tenant_merges_per_tenant_streams_stably() {
        let spec = tiny_mt(3);
        assert_eq!(spec.tenant_count(), 3);
        let merged = spec.generate_interval(2, 9);
        let mut manual: Vec<TraceRecord> =
            (0..3).flat_map(|t| spec.tenant_interval(t, 2, 9)).collect();
        manual.sort_by_key(|r| r.timestamp_us);
        assert_eq!(merged, manual);
        assert!(!merged.is_empty());
        assert!(merged.windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }

    #[test]
    fn tenant_streams_are_stable_under_tenant_count() {
        // For a fixed template set, tenant 1's stream must be byte-identical
        // whether the mix has 2 or 6 tenants: seeds derive from the cell
        // seed and the tenant ordinal only. (`paper_mt_scaled` is excluded —
        // it deliberately rescales per-tenant load with the count.)
        let templates = WorkloadSpec::paper_suite(WorkloadScale::tiny());
        let small = WorkloadSpec::multi_tenant("mt2", 2, 2_048, templates.clone());
        let large = WorkloadSpec::multi_tenant("mt6", 6, 2_048, templates);
        for idx in 0..4 {
            assert_eq!(small.tenant_interval(1, idx, 77), large.tenant_interval(1, idx, 77));
        }
    }

    #[test]
    fn tenants_occupy_disjoint_address_regions() {
        let spec = tiny_mt(4);
        let stride = spec.tenants().unwrap().tenant_blocks() * 8;
        for t in 0..4 {
            let lo = u64::from(t) * stride;
            let hi = lo + stride;
            for r in spec.tenant_interval(t, 1, 5) {
                assert!(
                    r.sector >= lo && r.sector < hi,
                    "tenant {t} sector {} outside [{lo}, {hi})",
                    r.sector
                );
            }
        }
    }

    #[test]
    fn multi_tenant_intervals_span_the_longest_template() {
        let spec = tiny_mt(6);
        let longest = WorkloadSpec::paper_suite(WorkloadScale::tiny())
            .iter()
            .map(WorkloadSpec::total_intervals)
            .max()
            .unwrap();
        assert_eq!(spec.total_intervals(), longest);
        assert!(spec.is_burst_interval(4), "some template bursts early");
    }

    #[test]
    #[should_panic(expected = "synthetic workloads")]
    fn multi_tenant_rejects_replay_templates() {
        let replay = WorkloadSpec::replay("cap", 20_000, Vec::new());
        let _ = WorkloadSpec::multi_tenant("bad", 2, 1_024, vec![replay]);
    }

    #[test]
    fn try_replay_rejects_overflowing_trace_spans() {
        use lbica_storage::request::RequestKind;
        let records = vec![TraceRecord::new(u64::MAX, 0, 8, RequestKind::Read)];
        let err = WorkloadSpec::try_replay("huge", 1_000, records).unwrap_err();
        assert!(err.intervals > u64::from(u32::MAX));
        assert!(err.to_string().contains("interval counter"));
    }
}
