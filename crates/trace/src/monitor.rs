//! `iostat`- and `blktrace`-like monitors.
//!
//! LBICA's two information channels on the physical testbed are
//!
//! * `iostat` — per-device queue sizes and service times, sampled once per
//!   monitoring interval, feeding the bottleneck detector (Eq. 1), and
//! * `blktrace` — the list (and hence class mix) of requests waiting in the
//!   I/O cache queue, feeding the workload characterizer.
//!
//! [`IostatCollector`] and [`BlktraceProbe`] reproduce those channels by
//! sampling the simulator's device queues. The per-interval
//! [`IntervalReport`]s they produce are also exactly the series plotted in
//! Figures 4–6.

use serde::{Deserialize, Serialize};

use lbica_storage::histogram::LatencyHistogram;
use lbica_storage::queue::{DeviceQueue, QueueSnapshot};
use lbica_storage::request::RequestClass;
use lbica_storage::snap::{SnapError, SnapReader, SnapWriter};
use lbica_storage::time::SimDuration;

/// The two tiers of the storage hierarchy, as the monitors see them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// The SSD I/O cache.
    Cache,
    /// The disk subsystem.
    Disk,
}

/// Per-tier, per-interval statistics — one point of the paper's load plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TierReport {
    /// Queue depth at the end of the interval (`ssdQSize` / `hddQSize`).
    pub queue_depth: usize,
    /// Largest queue depth observed during the interval.
    pub peak_queue_depth: usize,
    /// Requests enqueued at this tier during the interval.
    pub enqueued: u64,
    /// Requests completed at this tier during the interval.
    pub completed: u64,
    /// Maximum end-to-end latency (queue + service) among requests completed
    /// in the interval, in microseconds — the y-axis of Figures 4 and 5.
    pub max_latency_us: u64,
    /// Mean end-to-end latency among requests completed in the interval.
    pub avg_latency_us: u64,
    /// Sum of latencies (used to aggregate across intervals).
    pub total_latency_us: u64,
    /// Median end-to-end latency (µs, log-bucketed upper bound).
    pub p50_latency_us: u64,
    /// 95th-percentile end-to-end latency (µs, log-bucketed upper bound).
    pub p95_latency_us: u64,
    /// 99th-percentile end-to-end latency (µs, log-bucketed upper bound).
    pub p99_latency_us: u64,
}

impl TierReport {
    /// Estimated maximum queue time per Eq. 1: queue depth × average device
    /// latency.
    pub fn queue_time(&self, avg_device_latency: SimDuration) -> SimDuration {
        avg_device_latency.saturating_mul(self.queue_depth as u64)
    }

    /// Serializes the report for a replay checkpoint.
    pub fn snap_to(&self, w: &mut SnapWriter) {
        w.put_usize(self.queue_depth);
        w.put_usize(self.peak_queue_depth);
        w.put_u64(self.enqueued);
        w.put_u64(self.completed);
        w.put_u64(self.max_latency_us);
        w.put_u64(self.avg_latency_us);
        w.put_u64(self.total_latency_us);
        w.put_u64(self.p50_latency_us);
        w.put_u64(self.p95_latency_us);
        w.put_u64(self.p99_latency_us);
    }

    /// Restores a report serialized by [`TierReport::snap_to`].
    pub fn snap_from(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TierReport {
            queue_depth: r.get_usize()?,
            peak_queue_depth: r.get_usize()?,
            enqueued: r.get_u64()?,
            completed: r.get_u64()?,
            max_latency_us: r.get_u64()?,
            avg_latency_us: r.get_u64()?,
            total_latency_us: r.get_u64()?,
            p50_latency_us: r.get_u64()?,
            p95_latency_us: r.get_u64()?,
            p99_latency_us: r.get_u64()?,
        })
    }
}

/// Everything measured during one monitoring interval.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IntervalReport {
    /// Interval index (the x-axis of Figures 4–6).
    pub index: u32,
    /// I/O cache tier statistics.
    pub cache: TierReport,
    /// Disk subsystem tier statistics.
    pub disk: TierReport,
    /// Aggregated class mix observed in the I/O cache queue during the
    /// interval (the `blktrace` channel).
    pub cache_queue_mix: QueueSnapshot,
    /// Label of the write policy in force during the interval (filled in by
    /// the controller harness; `WB` for the baseline).
    pub policy_label: String,
    /// Whether the controller flagged this interval as a burst/bottleneck.
    pub burst_detected: bool,
}

impl IntervalReport {
    /// Serializes the full interval measurement for a replay checkpoint.
    pub fn snap_to(&self, w: &mut SnapWriter) {
        w.put_u32(self.index);
        self.cache.snap_to(w);
        self.disk.snap_to(w);
        self.cache_queue_mix.snap_to(w);
        w.put_str(&self.policy_label);
        w.put_bool(self.burst_detected);
    }

    /// Restores a report serialized by [`IntervalReport::snap_to`].
    pub fn snap_from(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(IntervalReport {
            index: r.get_u32()?,
            cache: TierReport::snap_from(r)?,
            disk: TierReport::snap_from(r)?,
            cache_queue_mix: QueueSnapshot::snap_from(r)?,
            policy_label: r.get_str()?,
            burst_detected: r.get_bool()?,
        })
    }
}

/// Accumulates per-interval `iostat`-style statistics for both tiers.
///
/// ```
/// use lbica_trace::monitor::{IostatCollector, Tier};
///
/// let mut iostat = IostatCollector::new();
/// iostat.record_enqueue(Tier::Cache);
/// iostat.record_completion(Tier::Cache, 120);
/// let report = iostat.finish_interval(0, 3, 1);
/// assert_eq!(report.cache.completed, 1);
/// assert_eq!(report.cache.max_latency_us, 120);
/// assert_eq!(report.cache.queue_depth, 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IostatCollector {
    cache: TierAccumulator,
    disk: TierAccumulator,
    history: Vec<IntervalReport>,
}

/// Per-interval accumulator backed by a [`LatencyHistogram`], so interval
/// reports carry tail percentiles without storing per-request samples.
#[derive(Debug, Clone, Default)]
struct TierAccumulator {
    enqueued: u64,
    latency: LatencyHistogram,
    peak_queue_depth: usize,
}

impl TierAccumulator {
    fn snap_to(&self, w: &mut SnapWriter) {
        w.put_u64(self.enqueued);
        w.put_usize(self.peak_queue_depth);
        self.latency.snap_to(w);
    }

    fn snap_state_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.enqueued = r.get_u64()?;
        self.peak_queue_depth = r.get_usize()?;
        self.latency = lbica_storage::histogram::LatencyHistogram::snap_from(r)?;
        Ok(())
    }

    fn finish(&mut self, queue_depth: usize) -> TierReport {
        let report = TierReport {
            queue_depth,
            peak_queue_depth: self.peak_queue_depth.max(queue_depth),
            enqueued: self.enqueued,
            completed: self.latency.count(),
            max_latency_us: self.latency.max().as_micros(),
            avg_latency_us: self.latency.mean().as_micros(),
            total_latency_us: self.latency.total_us(),
            p50_latency_us: self.latency.percentile(50.0).as_micros(),
            p95_latency_us: self.latency.percentile(95.0).as_micros(),
            p99_latency_us: self.latency.percentile(99.0).as_micros(),
        };
        self.enqueued = 0;
        self.peak_queue_depth = 0;
        self.latency.reset();
        report
    }
}

impl IostatCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        IostatCollector::default()
    }

    fn tier_mut(&mut self, tier: Tier) -> &mut TierAccumulator {
        match tier {
            Tier::Cache => &mut self.cache,
            Tier::Disk => &mut self.disk,
        }
    }

    /// Records that a request was enqueued at `tier`.
    pub fn record_enqueue(&mut self, tier: Tier) {
        self.tier_mut(tier).enqueued += 1;
    }

    /// Records a completion at `tier` with the given end-to-end latency.
    pub fn record_completion(&mut self, tier: Tier, latency_us: u64) {
        self.tier_mut(tier).latency.record_us(latency_us);
    }

    /// Records an instantaneous queue-depth observation at `tier`.
    pub fn observe_queue_depth(&mut self, tier: Tier, depth: usize) {
        let acc = self.tier_mut(tier);
        acc.peak_queue_depth = acc.peak_queue_depth.max(depth);
    }

    /// Closes the current interval: produces its report (with the supplied
    /// end-of-interval queue depths), appends it to the history and resets
    /// the accumulators.
    pub fn finish_interval(
        &mut self,
        index: u32,
        cache_queue_depth: usize,
        disk_queue_depth: usize,
    ) -> IntervalReport {
        let report = IntervalReport {
            index,
            cache: self.cache.finish(cache_queue_depth),
            disk: self.disk.finish(disk_queue_depth),
            cache_queue_mix: QueueSnapshot::default(),
            policy_label: String::new(),
            burst_detected: false,
        };
        self.history.push(report.clone());
        report
    }

    /// Clears both per-interval accumulators and the report history while
    /// keeping the history Vec (and the histograms' bucket arrays)
    /// allocated. Observationally identical to a fresh collector afterwards.
    pub fn reset(&mut self) {
        self.cache.enqueued = 0;
        self.cache.peak_queue_depth = 0;
        self.cache.latency.reset();
        self.disk.enqueued = 0;
        self.disk.peak_queue_depth = 0;
        self.disk.latency.reset();
        self.history.clear();
    }

    /// Serializes the *in-progress* interval accumulators for a replay
    /// checkpoint — not the report history, which the checkpoint carries as
    /// finished interval reports itself. The accumulators are usually empty
    /// at an interval boundary, but a boundary-time controller action (e.g.
    /// a bypass moving queued requests to the disk subsystem) may already
    /// have fed the *next* interval's counters, so a checkpoint cannot
    /// assume them fresh.
    pub fn snap_to(&self, w: &mut SnapWriter) {
        self.cache.snap_to(w);
        self.disk.snap_to(w);
    }

    /// Restores accumulators written by [`IostatCollector::snap_to`]. The
    /// history is left untouched.
    ///
    /// # Errors
    ///
    /// Propagates truncation/corruption as [`SnapError`].
    pub fn snap_state_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cache.snap_state_from(r)?;
        self.disk.snap_state_from(r)?;
        Ok(())
    }

    /// All interval reports produced so far.
    pub fn history(&self) -> &[IntervalReport] {
        &self.history
    }

    /// Consumes the collector and returns its history.
    pub fn into_history(self) -> Vec<IntervalReport> {
        self.history
    }
}

/// Samples the class mix of the I/O cache queue over a monitoring interval,
/// the way periodic `blktrace` captures would.
#[derive(Debug, Clone, Default)]
pub struct BlktraceProbe {
    accumulated: QueueSnapshot,
    samples: u32,
}

impl BlktraceProbe {
    /// Creates an empty probe.
    pub fn new() -> Self {
        BlktraceProbe::default()
    }

    /// Adds one observation of the queue's current contents.
    pub fn observe(&mut self, queue: &DeviceQueue) {
        self.accumulated.merge(&queue.snapshot());
        self.samples += 1;
    }

    /// Adds a pre-computed snapshot (e.g. counted at enqueue time).
    pub fn observe_snapshot(&mut self, snapshot: &QueueSnapshot) {
        self.accumulated.merge(snapshot);
        self.samples += 1;
    }

    /// Adds a single-request observation by class — the enqueue-time hot
    /// path, equivalent to observing a one-entry snapshot without building
    /// one.
    pub fn observe_class(&mut self, class: RequestClass) {
        self.accumulated.record(class);
        self.samples += 1;
    }

    /// Number of observations accumulated.
    pub const fn samples(&self) -> u32 {
        self.samples
    }

    /// Clears the probe back to its freshly constructed state (same effect
    /// as discarding [`BlktraceProbe::take`]'s result).
    pub fn reset(&mut self) {
        self.accumulated = QueueSnapshot::default();
        self.samples = 0;
    }

    /// Serializes the in-progress observation state for a replay
    /// checkpoint (same caveat as [`IostatCollector::snap_to`]: boundary
    /// actions may have fed the next interval already).
    pub fn snap_to(&self, w: &mut SnapWriter) {
        w.put_usize(self.accumulated.reads);
        w.put_usize(self.accumulated.writes);
        w.put_usize(self.accumulated.promotes);
        w.put_usize(self.accumulated.evicts);
        w.put_u32(self.samples);
    }

    /// Restores state written by [`BlktraceProbe::snap_to`].
    ///
    /// # Errors
    ///
    /// Propagates truncation/corruption as [`SnapError`].
    pub fn snap_state_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.accumulated.reads = r.get_usize()?;
        self.accumulated.writes = r.get_usize()?;
        self.accumulated.promotes = r.get_usize()?;
        self.accumulated.evicts = r.get_usize()?;
        self.samples = r.get_u32()?;
        Ok(())
    }

    /// Returns the accumulated mix and resets the probe for the next
    /// interval.
    pub fn take(&mut self) -> QueueSnapshot {
        let out = self.accumulated;
        self.accumulated = QueueSnapshot::default();
        self.samples = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbica_storage::request::{IoRequest, RequestKind, RequestOrigin};
    use lbica_storage::time::SimTime;

    #[test]
    fn iostat_aggregates_and_resets_per_interval() {
        let mut io = IostatCollector::new();
        io.record_enqueue(Tier::Cache);
        io.record_enqueue(Tier::Cache);
        io.record_completion(Tier::Cache, 100);
        io.record_completion(Tier::Cache, 300);
        io.record_completion(Tier::Disk, 50);
        io.observe_queue_depth(Tier::Cache, 9);

        let r0 = io.finish_interval(0, 4, 1);
        assert_eq!(r0.cache.enqueued, 2);
        assert_eq!(r0.cache.completed, 2);
        assert_eq!(r0.cache.max_latency_us, 300);
        assert_eq!(r0.cache.avg_latency_us, 200);
        assert_eq!(r0.cache.peak_queue_depth, 9);
        assert_eq!(r0.cache.queue_depth, 4);
        assert_eq!(r0.disk.completed, 1);

        // Next interval starts from scratch.
        let r1 = io.finish_interval(1, 0, 0);
        assert_eq!(r1.cache.completed, 0);
        assert_eq!(r1.cache.max_latency_us, 0);
        assert_eq!(io.history().len(), 2);
    }

    #[test]
    fn interval_reports_carry_tail_percentiles() {
        let mut io = IostatCollector::new();
        for us in 1..=100u64 {
            io.record_completion(Tier::Cache, us * 100);
        }
        let r = io.finish_interval(0, 0, 0);
        assert!(r.cache.p50_latency_us >= 4_000 && r.cache.p50_latency_us <= 6_500);
        assert!(r.cache.p95_latency_us >= r.cache.p50_latency_us);
        assert!(r.cache.p99_latency_us >= r.cache.p95_latency_us);
        assert!(r.cache.p99_latency_us <= r.cache.max_latency_us);
        assert_eq!(r.cache.max_latency_us, 10_000);
        // Reset applies to the percentile columns too.
        let empty = io.finish_interval(1, 0, 0);
        assert_eq!(empty.cache.p99_latency_us, 0);
    }

    #[test]
    fn tier_report_queue_time_follows_eq1() {
        let report = TierReport { queue_depth: 12, ..TierReport::default() };
        let qt = report.queue_time(SimDuration::from_micros(80));
        assert_eq!(qt.as_micros(), 960);
    }

    #[test]
    fn blktrace_probe_accumulates_queue_mix() {
        let mut q = DeviceQueue::without_merging("ssd");
        q.enqueue(
            IoRequest::new(1, RequestKind::Read, RequestOrigin::Application, 0, 8)
                .with_arrival(SimTime::ZERO),
        );
        q.enqueue(
            IoRequest::new(2, RequestKind::Write, RequestOrigin::Promote, 100, 8)
                .with_arrival(SimTime::ZERO),
        );

        let mut probe = BlktraceProbe::new();
        probe.observe(&q);
        probe.observe(&q);
        assert_eq!(probe.samples(), 2);
        let mix = probe.take();
        assert_eq!(mix.reads, 2);
        assert_eq!(mix.promotes, 2);
        assert_eq!(probe.samples(), 0);
        assert_eq!(probe.take().total(), 0);
    }

    #[test]
    fn empty_interval_report_is_all_zero() {
        let mut io = IostatCollector::new();
        let r = io.finish_interval(7, 0, 0);
        assert_eq!(r.index, 7);
        assert_eq!(r.cache, TierReport::default());
        assert_eq!(r.disk, TierReport::default());
    }
}
