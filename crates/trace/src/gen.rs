//! Synthetic access-pattern and arrival-process generators.
//!
//! A [`PatternSpec`] describes *where* a workload reads and writes (random,
//! sequential, hotspot-skewed, mixed); an [`ArrivalProcess`] describes
//! *when* requests arrive (an open-loop Poisson-like stream at a target
//! IOPS). [`AccessPattern`] is the stateful generator built from a spec.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use lbica_storage::block::BLOCK_SECTORS;
use lbica_storage::request::RequestKind;

use crate::record::TraceRecord;

/// Declarative description of an address/direction pattern.
///
/// All footprints are expressed in cache blocks (4 KiB units); requests are
/// generated block-aligned, `request_blocks` blocks long.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PatternSpec {
    /// Uniform random reads over a working set.
    RandomRead {
        /// Working-set size in blocks.
        working_set_blocks: u64,
    },
    /// Uniform random writes over a working set.
    RandomWrite {
        /// Working-set size in blocks.
        working_set_blocks: u64,
    },
    /// A sequential read stream that wraps around `length_blocks`.
    SequentialRead {
        /// Length of the sequential region in blocks.
        length_blocks: u64,
    },
    /// A sequential write stream that wraps around `length_blocks`.
    SequentialWrite {
        /// Length of the sequential region in blocks.
        length_blocks: u64,
    },
    /// A mix of uniform random reads and writes.
    Mixed {
        /// Fraction of requests that are reads, in `[0, 1]`.
        read_fraction: f64,
        /// Working-set size in blocks.
        working_set_blocks: u64,
    },
    /// A hotspot-skewed mix: a fraction of the working set ("the hot set")
    /// receives most of the accesses, approximating the skewed popularity
    /// of OLTP / mail-store workloads.
    Hotspot {
        /// Fraction of requests that are reads, in `[0, 1]`.
        read_fraction: f64,
        /// Working-set size in blocks.
        working_set_blocks: u64,
        /// Fraction of the working set that is hot, in `(0, 1]`.
        hot_fraction: f64,
        /// Probability that an access goes to the hot set, in `[0, 1]`.
        hot_probability: f64,
    },
    /// Zipf-distributed block popularity: block `k` (rank 0 is the hottest)
    /// is accessed with probability proportional to `1 / (k + 1)^s`, the
    /// heavy-tailed popularity observed in content stores and block caches.
    ///
    /// The skew exponent `s` is carried as an integer in permille
    /// (`skew_permille = 1000` means the classic `s = 1.0`) so specs stay
    /// exactly comparable across platforms; the cumulative table is built
    /// once per generator in a fixed fold order and the per-access draw is
    /// integer-only.
    Zipfian {
        /// Fraction of requests that are reads, in `[0, 1]`.
        read_fraction: f64,
        /// Working-set size in blocks; rank-to-block mapping is the identity.
        working_set_blocks: u64,
        /// Skew exponent `s` in permille (e.g. 800 → s = 0.8, 1200 → s = 1.2).
        skew_permille: u32,
    },
}

impl PatternSpec {
    /// The working-set (or stream) footprint in blocks.
    pub fn footprint_blocks(&self) -> u64 {
        match *self {
            PatternSpec::RandomRead { working_set_blocks }
            | PatternSpec::RandomWrite { working_set_blocks }
            | PatternSpec::Mixed { working_set_blocks, .. }
            | PatternSpec::Hotspot { working_set_blocks, .. }
            | PatternSpec::Zipfian { working_set_blocks, .. } => working_set_blocks,
            PatternSpec::SequentialRead { length_blocks }
            | PatternSpec::SequentialWrite { length_blocks } => length_blocks,
        }
    }

    /// Fraction of generated requests expected to be reads.
    pub fn expected_read_fraction(&self) -> f64 {
        match *self {
            PatternSpec::RandomRead { .. } | PatternSpec::SequentialRead { .. } => 1.0,
            PatternSpec::RandomWrite { .. } | PatternSpec::SequentialWrite { .. } => 0.0,
            PatternSpec::Mixed { read_fraction, .. }
            | PatternSpec::Hotspot { read_fraction, .. }
            | PatternSpec::Zipfian { read_fraction, .. } => read_fraction.clamp(0.0, 1.0),
        }
    }
}

/// A stateful generator of `(sector, sectors, kind)` triples.
///
/// ```
/// use lbica_trace::gen::{AccessPattern, PatternSpec};
///
/// let mut pattern = AccessPattern::new(
///     PatternSpec::RandomRead { working_set_blocks: 1024 },
///     /* base_block */ 0,
///     /* request_blocks */ 1,
///     /* seed */ 7,
/// );
/// let (sector, sectors, kind) = pattern.next_access();
/// assert!(sectors == 8 && kind.is_read());
/// assert!(sector < 1024 * 8);
/// ```
#[derive(Debug, Clone)]
pub struct AccessPattern {
    spec: PatternSpec,
    base_block: u64,
    request_blocks: u64,
    cursor: u64,
    rng: StdRng,
    /// Cumulative popularity thresholds for [`PatternSpec::Zipfian`], one
    /// `u64` per rank; empty for every other spec. `zipf_cdf[k]` is the
    /// largest draw that selects rank `k`, and the final entry is forced to
    /// `u64::MAX`, so the per-access draw is a pure integer
    /// `partition_point` with no float comparisons.
    zipf_cdf: Vec<u64>,
}

/// Builds the cumulative Zipf table: entry `k` holds the (scaled) cumulative
/// probability of ranks `0..=k`. Floats appear only here, in a fixed
/// sequential fold order, so the table is a deterministic function of
/// `(working_set_blocks, skew_permille)`.
fn build_zipf_cdf(working_set_blocks: u64, skew_permille: u32) -> Vec<u64> {
    let n = usize::try_from(working_set_blocks).expect("zipfian working set fits in memory");
    let s = f64::from(skew_permille) / 1000.0;
    let mut weights = Vec::with_capacity(n);
    let mut total = 0.0_f64;
    for rank in 0..n {
        let w = (rank as f64 + 1.0).powf(-s);
        total += w;
        weights.push(total);
    }
    let mut cdf = Vec::with_capacity(n);
    for cum in weights {
        let scaled = (cum / total) * (u64::MAX as f64);
        cdf.push(scaled as u64);
    }
    // Guarantee full coverage of the draw space regardless of rounding.
    *cdf.last_mut().expect("non-empty footprint") = u64::MAX;
    cdf
}

impl AccessPattern {
    /// Creates a generator.
    ///
    /// `base_block` offsets the whole footprint on the device so that
    /// different phases / workloads can address disjoint regions.
    ///
    /// # Panics
    ///
    /// Panics if `request_blocks` is zero or the spec's footprint is zero.
    pub fn new(spec: PatternSpec, base_block: u64, request_blocks: u64, seed: u64) -> Self {
        assert!(request_blocks > 0, "requests must span at least one block");
        assert!(spec.footprint_blocks() > 0, "pattern footprint must be non-empty");
        let zipf_cdf = match spec {
            PatternSpec::Zipfian { working_set_blocks, skew_permille, .. } => {
                build_zipf_cdf(working_set_blocks, skew_permille)
            }
            _ => Vec::new(),
        };
        AccessPattern {
            spec,
            base_block,
            request_blocks,
            cursor: 0,
            rng: StdRng::seed_from_u64(seed),
            zipf_cdf,
        }
    }

    /// The spec this generator was built from.
    pub const fn spec(&self) -> &PatternSpec {
        &self.spec
    }

    fn pick_block(&mut self) -> (u64, RequestKind) {
        match self.spec {
            PatternSpec::RandomRead { working_set_blocks } => {
                (self.rng.gen_range(0..working_set_blocks), RequestKind::Read)
            }
            PatternSpec::RandomWrite { working_set_blocks } => {
                (self.rng.gen_range(0..working_set_blocks), RequestKind::Write)
            }
            PatternSpec::SequentialRead { length_blocks } => {
                let block = self.cursor % length_blocks;
                self.cursor += self.request_blocks;
                (block, RequestKind::Read)
            }
            PatternSpec::SequentialWrite { length_blocks } => {
                let block = self.cursor % length_blocks;
                self.cursor += self.request_blocks;
                (block, RequestKind::Write)
            }
            PatternSpec::Mixed { read_fraction, working_set_blocks } => {
                let kind = if self.rng.gen_bool(read_fraction.clamp(0.0, 1.0)) {
                    RequestKind::Read
                } else {
                    RequestKind::Write
                };
                (self.rng.gen_range(0..working_set_blocks), kind)
            }
            PatternSpec::Hotspot {
                read_fraction,
                working_set_blocks,
                hot_fraction,
                hot_probability,
            } => {
                let kind = if self.rng.gen_bool(read_fraction.clamp(0.0, 1.0)) {
                    RequestKind::Read
                } else {
                    RequestKind::Write
                };
                let hot_blocks =
                    ((working_set_blocks as f64) * hot_fraction.clamp(0.0, 1.0)).max(1.0) as u64;
                let block = if self.rng.gen_bool(hot_probability.clamp(0.0, 1.0)) {
                    self.rng.gen_range(0..hot_blocks)
                } else if hot_blocks < working_set_blocks {
                    self.rng.gen_range(hot_blocks..working_set_blocks)
                } else {
                    self.rng.gen_range(0..working_set_blocks)
                };
                (block, kind)
            }
            PatternSpec::Zipfian { read_fraction, .. } => {
                let kind = if self.rng.gen_bool(read_fraction.clamp(0.0, 1.0)) {
                    RequestKind::Read
                } else {
                    RequestKind::Write
                };
                let draw: u64 = self.rng.next_u64();
                let rank = self.zipf_cdf.partition_point(|&cum| cum < draw);
                (rank as u64, kind)
            }
        }
    }

    /// Generates the next access as `(start_sector, sectors, kind)`.
    pub fn next_access(&mut self) -> (u64, u64, RequestKind) {
        let (block, kind) = self.pick_block();
        let sector = (self.base_block + block) * BLOCK_SECTORS;
        (sector, self.request_blocks * BLOCK_SECTORS, kind)
    }
}

/// An open-loop arrival process with exponential inter-arrival times at a
/// target rate (requests per second).
///
/// ```
/// use lbica_trace::gen::ArrivalProcess;
/// let mut arrivals = ArrivalProcess::new(10_000.0, 3);
/// let gap = arrivals.next_gap_us();
/// assert!(gap >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    rate_per_us: f64,
    rng: StdRng,
}

impl ArrivalProcess {
    /// Creates an arrival process at `iops` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `iops` is not finite and positive.
    pub fn new(iops: f64, seed: u64) -> Self {
        assert!(iops.is_finite() && iops > 0.0, "arrival rate must be positive");
        ArrivalProcess { rate_per_us: iops / 1e6, rng: StdRng::seed_from_u64(seed) }
    }

    /// Samples the next inter-arrival gap in microseconds (at least 1).
    pub fn next_gap_us(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = -u.ln() / self.rate_per_us;
        gap.max(1.0).round() as u64
    }
}

/// Generates an open-loop request stream of `pattern` accesses arriving at
/// `iops` for `duration_us` microseconds starting at `start_us`.
pub fn generate_stream(
    pattern: &mut AccessPattern,
    arrivals: &mut ArrivalProcess,
    start_us: u64,
    duration_us: u64,
) -> Vec<TraceRecord> {
    let mut records = Vec::new();
    let end = start_us + duration_us;
    let mut t = start_us + arrivals.next_gap_us();
    while t < end {
        let (sector, sectors, kind) = pattern.next_access();
        records.push(TraceRecord::new(t, sector, sectors, kind));
        t += arrivals.next_gap_us();
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_read_stays_in_working_set_and_is_read_only() {
        let mut p =
            AccessPattern::new(PatternSpec::RandomRead { working_set_blocks: 100 }, 1000, 1, 1);
        for _ in 0..500 {
            let (sector, sectors, kind) = p.next_access();
            assert!(kind.is_read());
            assert_eq!(sectors, BLOCK_SECTORS);
            let block = sector / BLOCK_SECTORS;
            assert!((1000..1100).contains(&block));
        }
    }

    #[test]
    fn sequential_read_advances_and_wraps() {
        let mut p = AccessPattern::new(PatternSpec::SequentialRead { length_blocks: 4 }, 0, 1, 1);
        let blocks: Vec<u64> = (0..6).map(|_| p.next_access().0 / BLOCK_SECTORS).collect();
        assert_eq!(blocks, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn mixed_respects_read_fraction_approximately() {
        let mut p = AccessPattern::new(
            PatternSpec::Mixed { read_fraction: 0.7, working_set_blocks: 1000 },
            0,
            1,
            42,
        );
        let reads = (0..10_000).filter(|_| p.next_access().2.is_read()).count() as f64 / 10_000.0;
        assert!((reads - 0.7).abs() < 0.03, "observed read fraction {reads}");
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let mut p = AccessPattern::new(
            PatternSpec::Hotspot {
                read_fraction: 1.0,
                working_set_blocks: 10_000,
                hot_fraction: 0.1,
                hot_probability: 0.9,
            },
            0,
            1,
            7,
        );
        let hot_hits = (0..10_000).filter(|_| p.next_access().0 / BLOCK_SECTORS < 1_000).count()
            as f64
            / 10_000.0;
        assert!(hot_hits > 0.85, "hot-set share {hot_hits}");
    }

    #[test]
    fn zipfian_stays_in_working_set_and_rank_zero_dominates() {
        let mut p = AccessPattern::new(
            PatternSpec::Zipfian {
                read_fraction: 1.0,
                working_set_blocks: 1_000,
                skew_permille: 1_000,
            },
            0,
            1,
            13,
        );
        let mut counts = vec![0u64; 1_000];
        for _ in 0..50_000 {
            let (sector, _, kind) = p.next_access();
            assert!(kind.is_read());
            let block = (sector / BLOCK_SECTORS) as usize;
            assert!(block < 1_000);
            counts[block] += 1;
        }
        // At s = 1 over 1000 ranks, rank 0 holds ~13% of the mass and each
        // rank strictly dominates the next in expectation.
        assert!(counts[0] > counts[1] && counts[1] > counts[4] && counts[4] > counts[99]);
        assert!(counts[0] as f64 / 50_000.0 > 0.08, "rank-0 share {}", counts[0]);
    }

    #[test]
    fn zipfian_skew_zero_is_roughly_uniform() {
        let mut p = AccessPattern::new(
            PatternSpec::Zipfian { read_fraction: 1.0, working_set_blocks: 10, skew_permille: 0 },
            0,
            1,
            29,
        );
        let mut counts = vec![0u64; 10];
        for _ in 0..20_000 {
            counts[(p.next_access().0 / BLOCK_SECTORS) as usize] += 1;
        }
        for &c in &counts {
            let share = c as f64 / 20_000.0;
            assert!((share - 0.1).abs() < 0.02, "share {share}");
        }
    }

    #[test]
    fn zipfian_is_deterministic_per_seed() {
        let make = || {
            let mut p = AccessPattern::new(
                PatternSpec::Zipfian {
                    read_fraction: 0.6,
                    working_set_blocks: 512,
                    skew_permille: 1_200,
                },
                0,
                1,
                77,
            );
            (0..256).map(|_| p.next_access()).collect::<Vec<_>>()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn expected_read_fraction_matches_specs() {
        assert_eq!(PatternSpec::RandomRead { working_set_blocks: 1 }.expected_read_fraction(), 1.0);
        assert_eq!(PatternSpec::SequentialWrite { length_blocks: 1 }.expected_read_fraction(), 0.0);
        assert_eq!(
            PatternSpec::Mixed { read_fraction: 0.3, working_set_blocks: 1 }
                .expected_read_fraction(),
            0.3
        );
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_request_blocks_panics() {
        let _ = AccessPattern::new(PatternSpec::RandomRead { working_set_blocks: 10 }, 0, 0, 1);
    }

    #[test]
    fn arrival_rate_roughly_matches_iops() {
        let mut a = ArrivalProcess::new(10_000.0, 11);
        let total: u64 = (0..10_000).map(|_| a.next_gap_us()).sum();
        let avg = total as f64 / 10_000.0;
        // Mean gap should be ~100 µs for 10k IOPS.
        assert!((avg - 100.0).abs() < 10.0, "avg gap {avg}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = ArrivalProcess::new(0.0, 1);
    }

    #[test]
    fn stream_timestamps_are_within_window_and_sorted() {
        let mut p = AccessPattern::new(PatternSpec::RandomRead { working_set_blocks: 64 }, 0, 1, 5);
        let mut a = ArrivalProcess::new(5_000.0, 5);
        let recs = generate_stream(&mut p, &mut a, 1_000_000, 100_000);
        assert!(!recs.is_empty());
        let mut prev = 0;
        for r in &recs {
            assert!(r.timestamp_us >= 1_000_000 && r.timestamp_us < 1_100_000);
            assert!(r.timestamp_us >= prev);
            prev = r.timestamp_us;
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let make = || {
            let mut p = AccessPattern::new(
                PatternSpec::Mixed { read_fraction: 0.5, working_set_blocks: 1000 },
                0,
                1,
                99,
            );
            let mut a = ArrivalProcess::new(8_000.0, 99);
            generate_stream(&mut p, &mut a, 0, 50_000)
        };
        assert_eq!(make(), make());
    }
}
