//! Trace readers and writers.
//!
//! Two encodings are provided:
//!
//! * a human-readable text format (one [`TraceRecord`] per line), and
//! * a compact binary format ([`BinaryTraceCodec`]) using fixed-width
//!   little-endian fields, convenient for large synthetic traces.

use std::io::{self, BufRead, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use lbica_storage::request::RequestKind;

use crate::record::TraceRecord;

/// Writes records to `writer`, one text line per record.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_text_trace<W: Write>(mut writer: W, records: &[TraceRecord]) -> io::Result<()> {
    for rec in records {
        writeln!(writer, "{}", rec.to_line())?;
    }
    Ok(())
}

/// Reads a text trace produced by [`write_text_trace`]. Blank lines and
/// lines starting with `#` are ignored.
///
/// # Errors
///
/// Returns an [`io::Error`] with kind `InvalidData` on malformed lines, or
/// any underlying I/O error.
pub fn read_text_trace<R: BufRead>(reader: R) -> io::Result<Vec<TraceRecord>> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let rec = TraceRecord::parse_line(trimmed).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", idx + 1))
        })?;
        out.push(rec);
    }
    Ok(out)
}

/// Why one line of an imported text trace was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportLineError {
    /// A required field is absent.
    MissingField(&'static str),
    /// A numeric field failed to parse as an unsigned integer.
    InvalidNumber(&'static str),
    /// The record covers zero sectors.
    ZeroLength,
    /// The record's length exceeds the binary format's 32-bit field, so it
    /// could never be encoded by [`BinaryTraceCodec`].
    LengthTooLarge,
    /// `sector + sectors` overflows the 64-bit address space (e.g. a hostile
    /// `u64::MAX` offset).
    RangeOverflow,
    /// The direction field is neither a read nor a write marker.
    UnknownDirection,
    /// The line carries extra fields after the direction.
    TrailingFields,
}

impl std::fmt::Display for ImportLineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportLineError::MissingField(field) => write!(f, "missing field `{field}`"),
            ImportLineError::InvalidNumber(field) => {
                write!(f, "field `{field}` is not an unsigned integer")
            }
            ImportLineError::ZeroLength => write!(f, "record covers zero sectors"),
            ImportLineError::LengthTooLarge => {
                write!(f, "record length exceeds the binary format's 32-bit field")
            }
            ImportLineError::RangeOverflow => {
                write!(f, "sector range overflows the 64-bit address space")
            }
            ImportLineError::UnknownDirection => {
                write!(f, "direction is neither a read nor a write marker")
            }
            ImportLineError::TrailingFields => write!(f, "unexpected fields after the direction"),
        }
    }
}

/// Typed error from [`import_text_trace`]: either an underlying reader
/// failure or a malformed line with its 1-based line number.
#[derive(Debug)]
pub enum ImportError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line was malformed.
    Line {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong with it.
        kind: ImportLineError,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "trace import failed: {e}"),
            ImportError::Line { line, kind } => write!(f, "line {line}: {kind}"),
        }
    }
}

impl std::error::Error for ImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImportError::Io(e) => Some(e),
            ImportError::Line { .. } => None,
        }
    }
}

impl From<ImportError> for io::Error {
    fn from(err: ImportError) -> Self {
        match err {
            ImportError::Io(e) => e,
            line @ ImportError::Line { .. } => {
                io::Error::new(io::ErrorKind::InvalidData, line.to_string())
            }
        }
    }
}

fn parse_import_field(
    fields: &[&str],
    index: usize,
    name: &'static str,
) -> Result<u64, ImportLineError> {
    let raw = fields.get(index).ok_or(ImportLineError::MissingField(name))?;
    raw.parse::<u64>().map_err(|_| ImportLineError::InvalidNumber(name))
}

fn parse_import_line(fields: &[&str]) -> Result<TraceRecord, ImportLineError> {
    let timestamp_us = parse_import_field(fields, 0, "timestamp_us")?;
    let sector = parse_import_field(fields, 1, "sector")?;
    let sectors = parse_import_field(fields, 2, "sectors")?;
    let direction = fields.get(3).ok_or(ImportLineError::MissingField("direction"))?;
    if fields.len() > 4 {
        return Err(ImportLineError::TrailingFields);
    }
    if sectors == 0 {
        return Err(ImportLineError::ZeroLength);
    }
    if sectors > u64::from(u32::MAX) {
        return Err(ImportLineError::LengthTooLarge);
    }
    if sector.checked_add(sectors).is_none() {
        return Err(ImportLineError::RangeOverflow);
    }
    let kind = match direction.to_ascii_lowercase().as_str() {
        "r" | "read" | "0" => RequestKind::Read,
        "w" | "write" | "1" => RequestKind::Write,
        _ => return Err(ImportLineError::UnknownDirection),
    };
    Ok(TraceRecord::new(timestamp_us, sector, sectors, kind))
}

/// Imports an external text trace — the bridge from real-world captures into
/// the scenario matrix.
///
/// Two line formats are accepted, with the same four columns
/// `timestamp_us  sector  sectors  direction`:
///
/// * whitespace-separated (blktrace-style): `1200 4096 8 W`
/// * comma-separated (CSV): `1200,4096,8,W`, with an optional header line
///   (`timestamp_us,sector,sectors,direction`) that is skipped when it is
///   the first data-bearing line.
///
/// Directions accept `R`/`W` (any case), `read`/`write`, and the binary
/// codec's `0`/`1`. Blank lines and `#` comments are ignored. Records that
/// could never survive the binary path — zero length, lengths above the
/// codec's 32-bit field, sector ranges overflowing `u64` — are rejected up
/// front with the offending line number, so `import → encode → replay`
/// never panics on hostile input.
///
/// # Errors
///
/// Returns [`ImportError::Line`] for the first malformed line (1-based), or
/// [`ImportError::Io`] if the reader itself fails.
pub fn import_text_trace<R: BufRead>(reader: R) -> Result<Vec<TraceRecord>, ImportError> {
    let mut out = Vec::new();
    let mut seen_data_line = false;
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(ImportError::Io)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let csv = trimmed.contains(',');
        let fields: Vec<&str> = if csv {
            trimmed.split(',').map(str::trim).collect()
        } else {
            trimmed.split_whitespace().collect()
        };
        // A leading CSV header (alphabetic first column) is tolerated once.
        if !seen_data_line
            && csv
            && fields.first().is_some_and(|f| f.chars().next().is_some_and(char::is_alphabetic))
        {
            seen_data_line = true;
            continue;
        }
        seen_data_line = true;
        let record =
            parse_import_line(&fields).map_err(|kind| ImportError::Line { line: idx + 1, kind })?;
        out.push(record);
    }
    Ok(out)
}

/// [`import_text_trace`] straight into the binary format: the imported
/// records, sorted by timestamp, encoded with [`BinaryTraceCodec`].
///
/// # Errors
///
/// Propagates [`import_text_trace`]'s errors.
pub fn import_text_to_binary<R: BufRead>(reader: R) -> Result<Bytes, ImportError> {
    let mut records = import_text_trace(reader)?;
    records.sort_by_key(|r| r.timestamp_us);
    Ok(BinaryTraceCodec.encode(&records))
}

/// Fixed-width binary codec: 8-byte timestamp, 8-byte sector, 4-byte length
/// and 1-byte direction per record, little-endian.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinaryTraceCodec;

impl BinaryTraceCodec {
    /// Bytes per encoded record.
    pub const RECORD_BYTES: usize = 8 + 8 + 4 + 1;

    /// Encodes records into a byte buffer.
    ///
    /// # Panics
    ///
    /// Panics if a record's length exceeds the format's 32-bit field
    /// (`u32::MAX` sectors — two terabytes per request; real traces top out
    /// at a few thousand).
    pub fn encode(&self, records: &[TraceRecord]) -> Bytes {
        let mut buf = BytesMut::with_capacity(records.len() * Self::RECORD_BYTES);
        for rec in records {
            assert!(
                rec.sectors <= u32::MAX as u64,
                "record length {} sectors exceeds the binary format's 32-bit field",
                rec.sectors
            );
            buf.put_u64_le(rec.timestamp_us);
            buf.put_u64_le(rec.sector);
            buf.put_u32_le(rec.sectors as u32);
            buf.put_u8(if rec.kind.is_read() { 0 } else { 1 });
        }
        buf.freeze()
    }

    /// Decodes a buffer produced by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the buffer length is not a whole number of
    /// records or a record is malformed (zero length, unknown direction
    /// byte), and `UnexpectedEof` when a record is cut short — decoding
    /// never panics, whatever the input.
    pub fn decode(&self, mut data: Bytes) -> io::Result<Vec<TraceRecord>> {
        if !data.len().is_multiple_of(Self::RECORD_BYTES) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "binary trace length is not a multiple of the record size",
            ));
        }
        let mut out = Vec::with_capacity(data.len() / Self::RECORD_BYTES);
        while data.has_remaining() {
            // Defence in depth: the length check above makes a short record
            // impossible, but a truncated read must surface as an error —
            // never as a panic inside the buffer accessors.
            if data.remaining() < Self::RECORD_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "binary trace record is truncated",
                ));
            }
            let ts = data.get_u64_le();
            let sector = data.get_u64_le();
            let sectors = data.get_u32_le() as u64;
            let dir = data.get_u8();
            if sectors == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "binary trace record has zero length",
                ));
            }
            let kind = match dir {
                0 => RequestKind::Read,
                1 => RequestKind::Write,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("binary trace record has unknown direction byte {other}"),
                    ));
                }
            };
            out.push(TraceRecord::new(ts, sector, sectors, kind));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(0, 0, 8, RequestKind::Read),
            TraceRecord::new(100, 4096, 16, RequestKind::Write),
            TraceRecord::new(250, 81920, 256, RequestKind::Read),
        ]
    }

    #[test]
    fn text_round_trip() {
        let mut buf = Vec::new();
        write_text_trace(&mut buf, &sample()).unwrap();
        let parsed = read_text_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed, sample());
    }

    #[test]
    fn text_reader_skips_comments_and_blanks() {
        let text = "# header\n\n0 0 8 R\n  \n100 4096 16 W\n";
        let parsed = read_text_trace(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn text_reader_reports_line_numbers() {
        let text = "0 0 8 R\nbogus line\n";
        let err = read_text_trace(text.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn binary_round_trip() {
        let codec = BinaryTraceCodec;
        let encoded = codec.encode(&sample());
        assert_eq!(encoded.len(), 3 * BinaryTraceCodec::RECORD_BYTES);
        let decoded = codec.decode(encoded).unwrap();
        assert_eq!(decoded, sample());
    }

    #[test]
    fn binary_decoder_rejects_truncated_buffers() {
        let codec = BinaryTraceCodec;
        let mut encoded = codec.encode(&sample()).to_vec();
        encoded.pop();
        assert!(codec.decode(Bytes::from(encoded)).is_err());
    }

    #[test]
    fn binary_decoder_rejects_unknown_direction_bytes() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(8);
        buf.put_u8(7); // neither read (0) nor write (1)
        let err = BinaryTraceCodec.decode(buf.freeze()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("direction"));
    }

    #[test]
    fn binary_codec_round_trips_extreme_field_values() {
        let extremes = vec![
            TraceRecord::new(u64::MAX, u64::MAX, u32::MAX as u64, RequestKind::Write),
            TraceRecord::new(0, 0, 1, RequestKind::Read),
        ];
        let decoded = BinaryTraceCodec.decode(BinaryTraceCodec.encode(&extremes)).unwrap();
        assert_eq!(decoded, extremes);
        // The empty trace round-trips to an empty buffer.
        let empty = BinaryTraceCodec.encode(&[]);
        assert!(empty.is_empty());
        assert!(BinaryTraceCodec.decode(empty).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "32-bit field")]
    fn binary_encoder_rejects_oversized_lengths() {
        let too_big = vec![TraceRecord::new(0, 0, u32::MAX as u64 + 1, RequestKind::Read)];
        let _ = BinaryTraceCodec.encode(&too_big);
    }

    #[test]
    fn import_accepts_whitespace_and_csv_with_header() {
        let text = "# capture\n0 0 8 R\n100 4096 16 w\n";
        let ws = import_text_trace(text.as_bytes()).unwrap();
        assert_eq!(ws.len(), 2);
        assert!(ws[0].kind.is_read() && !ws[1].kind.is_read());
        let csv = "timestamp_us,sector,sectors,direction\n0,0,8,R\n100,4096,16,WRITE\n";
        assert_eq!(import_text_trace(csv.as_bytes()).unwrap(), ws);
        // The binary codec's 0/1 markers work too.
        let digits = import_text_trace("0 0 8 0\n100 4096 16 1\n".as_bytes()).unwrap();
        assert_eq!(digits, ws);
    }

    #[test]
    fn import_rejects_each_malformed_shape_with_line_numbers() {
        let cases: &[(&str, ImportLineError)] = &[
            ("0 0 8", ImportLineError::MissingField("direction")),
            ("0 0", ImportLineError::MissingField("sectors")),
            ("zero 0 8 R", ImportLineError::InvalidNumber("timestamp_us")),
            ("0 -4 8 R", ImportLineError::InvalidNumber("sector")),
            ("0 0 0 R", ImportLineError::ZeroLength),
            ("0 0 4294967296 R", ImportLineError::LengthTooLarge),
            ("0 18446744073709551615 8 R", ImportLineError::RangeOverflow),
            ("0 0 8 X", ImportLineError::UnknownDirection),
            ("0 0 8 R extra", ImportLineError::TrailingFields),
        ];
        for (line, expected) in cases {
            let input = format!("0 0 8 R\n{line}\n");
            match import_text_trace(input.as_bytes()) {
                Err(ImportError::Line { line: 2, kind }) => {
                    assert_eq!(kind, *expected, "for input {line:?}");
                }
                other => panic!("input {line:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn import_header_is_only_tolerated_first() {
        let text = "0,0,8,R\ntimestamp_us,sector,sectors,direction\n";
        let err = import_text_trace(text.as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            ImportError::Line { line: 2, kind: ImportLineError::InvalidNumber("timestamp_us") }
        ));
    }

    #[test]
    fn import_to_binary_sorts_and_round_trips() {
        let text = "200 16 8 W\n100 0 8 R\n";
        let encoded = import_text_to_binary(text.as_bytes()).unwrap();
        let decoded = BinaryTraceCodec.decode(encoded).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].timestamp_us, 100);
        assert_eq!(decoded[1].timestamp_us, 200);
    }

    #[test]
    fn import_error_converts_to_io_error() {
        let err = import_text_trace("bogus\n".as_bytes()).unwrap_err();
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("line 1"));
    }

    #[test]
    fn binary_decoder_rejects_zero_length_records() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        buf.put_u8(0);
        assert!(BinaryTraceCodec.decode(buf.freeze()).is_err());
    }
}
