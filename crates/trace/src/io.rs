//! Trace readers and writers.
//!
//! Two encodings are provided:
//!
//! * a human-readable text format (one [`TraceRecord`] per line), and
//! * a compact binary format ([`BinaryTraceCodec`]) using fixed-width
//!   little-endian fields, convenient for large synthetic traces.

use std::io::{self, BufRead, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use lbica_storage::request::RequestKind;

use crate::record::TraceRecord;

/// Writes records to `writer`, one text line per record.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_text_trace<W: Write>(mut writer: W, records: &[TraceRecord]) -> io::Result<()> {
    for rec in records {
        writeln!(writer, "{}", rec.to_line())?;
    }
    Ok(())
}

/// Reads a text trace produced by [`write_text_trace`]. Blank lines and
/// lines starting with `#` are ignored.
///
/// # Errors
///
/// Returns an [`io::Error`] with kind `InvalidData` on malformed lines, or
/// any underlying I/O error.
pub fn read_text_trace<R: BufRead>(reader: R) -> io::Result<Vec<TraceRecord>> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let rec = TraceRecord::parse_line(trimmed).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", idx + 1))
        })?;
        out.push(rec);
    }
    Ok(out)
}

/// Fixed-width binary codec: 8-byte timestamp, 8-byte sector, 4-byte length
/// and 1-byte direction per record, little-endian.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinaryTraceCodec;

impl BinaryTraceCodec {
    /// Bytes per encoded record.
    pub const RECORD_BYTES: usize = 8 + 8 + 4 + 1;

    /// Encodes records into a byte buffer.
    ///
    /// # Panics
    ///
    /// Panics if a record's length exceeds the format's 32-bit field
    /// (`u32::MAX` sectors — two terabytes per request; real traces top out
    /// at a few thousand).
    pub fn encode(&self, records: &[TraceRecord]) -> Bytes {
        let mut buf = BytesMut::with_capacity(records.len() * Self::RECORD_BYTES);
        for rec in records {
            assert!(
                rec.sectors <= u32::MAX as u64,
                "record length {} sectors exceeds the binary format's 32-bit field",
                rec.sectors
            );
            buf.put_u64_le(rec.timestamp_us);
            buf.put_u64_le(rec.sector);
            buf.put_u32_le(rec.sectors as u32);
            buf.put_u8(if rec.kind.is_read() { 0 } else { 1 });
        }
        buf.freeze()
    }

    /// Decodes a buffer produced by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the buffer length is not a whole number of
    /// records or a record is malformed (zero length, unknown direction
    /// byte), and `UnexpectedEof` when a record is cut short — decoding
    /// never panics, whatever the input.
    pub fn decode(&self, mut data: Bytes) -> io::Result<Vec<TraceRecord>> {
        if !data.len().is_multiple_of(Self::RECORD_BYTES) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "binary trace length is not a multiple of the record size",
            ));
        }
        let mut out = Vec::with_capacity(data.len() / Self::RECORD_BYTES);
        while data.has_remaining() {
            // Defence in depth: the length check above makes a short record
            // impossible, but a truncated read must surface as an error —
            // never as a panic inside the buffer accessors.
            if data.remaining() < Self::RECORD_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "binary trace record is truncated",
                ));
            }
            let ts = data.get_u64_le();
            let sector = data.get_u64_le();
            let sectors = data.get_u32_le() as u64;
            let dir = data.get_u8();
            if sectors == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "binary trace record has zero length",
                ));
            }
            let kind = match dir {
                0 => RequestKind::Read,
                1 => RequestKind::Write,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("binary trace record has unknown direction byte {other}"),
                    ));
                }
            };
            out.push(TraceRecord::new(ts, sector, sectors, kind));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(0, 0, 8, RequestKind::Read),
            TraceRecord::new(100, 4096, 16, RequestKind::Write),
            TraceRecord::new(250, 81920, 256, RequestKind::Read),
        ]
    }

    #[test]
    fn text_round_trip() {
        let mut buf = Vec::new();
        write_text_trace(&mut buf, &sample()).unwrap();
        let parsed = read_text_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed, sample());
    }

    #[test]
    fn text_reader_skips_comments_and_blanks() {
        let text = "# header\n\n0 0 8 R\n  \n100 4096 16 W\n";
        let parsed = read_text_trace(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn text_reader_reports_line_numbers() {
        let text = "0 0 8 R\nbogus line\n";
        let err = read_text_trace(text.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn binary_round_trip() {
        let codec = BinaryTraceCodec;
        let encoded = codec.encode(&sample());
        assert_eq!(encoded.len(), 3 * BinaryTraceCodec::RECORD_BYTES);
        let decoded = codec.decode(encoded).unwrap();
        assert_eq!(decoded, sample());
    }

    #[test]
    fn binary_decoder_rejects_truncated_buffers() {
        let codec = BinaryTraceCodec;
        let mut encoded = codec.encode(&sample()).to_vec();
        encoded.pop();
        assert!(codec.decode(Bytes::from(encoded)).is_err());
    }

    #[test]
    fn binary_decoder_rejects_unknown_direction_bytes() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(8);
        buf.put_u8(7); // neither read (0) nor write (1)
        let err = BinaryTraceCodec.decode(buf.freeze()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("direction"));
    }

    #[test]
    fn binary_codec_round_trips_extreme_field_values() {
        let extremes = vec![
            TraceRecord::new(u64::MAX, u64::MAX, u32::MAX as u64, RequestKind::Write),
            TraceRecord::new(0, 0, 1, RequestKind::Read),
        ];
        let decoded = BinaryTraceCodec.decode(BinaryTraceCodec.encode(&extremes)).unwrap();
        assert_eq!(decoded, extremes);
        // The empty trace round-trips to an empty buffer.
        let empty = BinaryTraceCodec.encode(&[]);
        assert!(empty.is_empty());
        assert!(BinaryTraceCodec.decode(empty).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "32-bit field")]
    fn binary_encoder_rejects_oversized_lengths() {
        let too_big = vec![TraceRecord::new(0, 0, u32::MAX as u64 + 1, RequestKind::Read)];
        let _ = BinaryTraceCodec.encode(&too_big);
    }

    #[test]
    fn binary_decoder_rejects_zero_length_records() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        buf.put_u8(0);
        assert!(BinaryTraceCodec.decode(buf.freeze()).is_err());
    }
}
