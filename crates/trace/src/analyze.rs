//! Offline trace analysis.
//!
//! The paper characterizes the *running* workload from the in-queue request
//! mix; a storage engineer preparing a deployment instead analyzes captured
//! traces offline. [`TraceAnalysis`] computes the standard block-trace
//! statistics — read/write ratio, request-size distribution, sequentiality,
//! footprint (unique blocks touched), arrival rate — both for a whole trace
//! and per monitoring interval, which is also how the canned workload
//! generators in [`crate::workload`] were validated against the mixes the
//! paper reports.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use lbica_storage::block::BLOCK_SECTORS;

use crate::record::TraceRecord;

/// Aggregate statistics of a block trace (or a slice of one).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceAnalysis {
    /// Number of requests analyzed.
    pub requests: u64,
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Total sectors transferred.
    pub total_sectors: u64,
    /// Number of requests whose start sector equals the previous request's
    /// end sector (detected sequential successors).
    pub sequential_successors: u64,
    /// Number of distinct cache blocks touched (the footprint).
    pub footprint_blocks: u64,
    /// Timestamp of the first request, µs.
    pub first_timestamp_us: u64,
    /// Timestamp of the last request, µs.
    pub last_timestamp_us: u64,
    /// Smallest request size seen, in sectors.
    pub min_request_sectors: u64,
    /// Largest request size seen, in sectors.
    pub max_request_sectors: u64,
}

impl TraceAnalysis {
    /// Analyzes a trace. Records need not be sorted; sequentiality is
    /// evaluated in the order given (the capture order).
    pub fn of(records: &[TraceRecord]) -> Self {
        let mut analysis =
            TraceAnalysis { min_request_sectors: u64::MAX, ..TraceAnalysis::default() };
        let mut footprint = BTreeSet::new();
        let mut prev_end: Option<u64> = None;
        let mut first = u64::MAX;
        let mut last = 0u64;

        for record in records {
            analysis.requests += 1;
            if record.kind.is_read() {
                analysis.reads += 1;
            } else {
                analysis.writes += 1;
            }
            analysis.total_sectors += record.sectors;
            analysis.min_request_sectors = analysis.min_request_sectors.min(record.sectors);
            analysis.max_request_sectors = analysis.max_request_sectors.max(record.sectors);
            first = first.min(record.timestamp_us);
            last = last.max(record.timestamp_us);

            if prev_end == Some(record.sector) {
                analysis.sequential_successors += 1;
            }
            prev_end = Some(record.sector + record.sectors);

            let first_block = record.sector / BLOCK_SECTORS;
            let last_block = (record.sector + record.sectors - 1) / BLOCK_SECTORS;
            for block in first_block..=last_block {
                footprint.insert(block);
            }
        }

        if analysis.requests == 0 {
            analysis.min_request_sectors = 0;
        } else {
            analysis.first_timestamp_us = first;
            analysis.last_timestamp_us = last;
        }
        analysis.footprint_blocks = footprint.len() as u64;
        analysis
    }

    /// Fraction of requests that are reads, in `[0, 1]`.
    pub fn read_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.reads as f64 / self.requests as f64
        }
    }

    /// Fraction of requests that continue the previous request's address
    /// range, in `[0, 1]` — a standard sequentiality measure.
    pub fn sequentiality(&self) -> f64 {
        if self.requests <= 1 {
            0.0
        } else {
            self.sequential_successors as f64 / (self.requests - 1) as f64
        }
    }

    /// Mean request size in sectors.
    pub fn avg_request_sectors(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_sectors as f64 / self.requests as f64
        }
    }

    /// Footprint in bytes (distinct blocks × block size).
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_blocks * BLOCK_SECTORS * lbica_storage::block::SECTOR_SIZE
    }

    /// Average arrival rate over the captured span, requests per second.
    pub fn avg_iops(&self) -> f64 {
        let span_us = self.last_timestamp_us.saturating_sub(self.first_timestamp_us);
        if span_us == 0 {
            0.0
        } else {
            self.requests as f64 / (span_us as f64 / 1e6)
        }
    }

    /// Whether the trace looks like a read-mostly workload (≥ 80 % reads).
    pub fn is_read_mostly(&self) -> bool {
        self.read_fraction() >= 0.8
    }

    /// Whether the trace looks sequential (≥ 50 % sequential successors).
    pub fn is_sequential(&self) -> bool {
        self.sequentiality() >= 0.5
    }
}

/// Splits a trace into fixed-length intervals and analyzes each separately,
/// mirroring the paper's per-interval monitoring.
pub fn analyze_intervals(records: &[TraceRecord], interval_us: u64) -> Vec<TraceAnalysis> {
    assert!(interval_us > 0, "interval length must be positive");
    if records.is_empty() {
        return Vec::new();
    }
    let last = records.iter().map(|r| r.timestamp_us).max().unwrap_or(0);
    let intervals = (last / interval_us + 1) as usize;
    let mut buckets: Vec<Vec<TraceRecord>> = vec![Vec::new(); intervals];
    for record in records {
        buckets[(record.timestamp_us / interval_us) as usize].push(*record);
    }
    buckets.iter().map(|bucket| TraceAnalysis::of(bucket)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{AccessPattern, ArrivalProcess, PatternSpec};
    use lbica_storage::request::RequestKind;

    #[test]
    fn empty_trace_is_all_zero() {
        let a = TraceAnalysis::of(&[]);
        assert_eq!(a.requests, 0);
        assert_eq!(a.read_fraction(), 0.0);
        assert_eq!(a.sequentiality(), 0.0);
        assert_eq!(a.avg_iops(), 0.0);
        assert_eq!(a.min_request_sectors, 0);
    }

    #[test]
    fn counts_and_ratios_are_exact() {
        let records = vec![
            TraceRecord::new(0, 0, 8, RequestKind::Read),
            TraceRecord::new(100, 8, 8, RequestKind::Read),
            TraceRecord::new(200, 1_000, 16, RequestKind::Write),
            TraceRecord::new(1_000_000, 2_000, 8, RequestKind::Read),
        ];
        let a = TraceAnalysis::of(&records);
        assert_eq!(a.requests, 4);
        assert_eq!(a.reads, 3);
        assert_eq!(a.writes, 1);
        assert!((a.read_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(a.total_sectors, 40);
        assert_eq!(a.min_request_sectors, 8);
        assert_eq!(a.max_request_sectors, 16);
        assert!((a.avg_request_sectors() - 10.0).abs() < 1e-12);
        // Exactly one sequential successor (the second request).
        assert_eq!(a.sequential_successors, 1);
        assert!((a.sequentiality() - 1.0 / 3.0).abs() < 1e-12);
        // Footprint: blocks 0,1 (first two), 125,126 (third), 250 (fourth).
        assert_eq!(a.footprint_blocks, 5);
        assert_eq!(a.footprint_bytes(), 5 * 4096);
        // 4 requests over 1 second.
        assert!((a.avg_iops() - 4.0).abs() < 0.1);
    }

    #[test]
    fn sequential_stream_is_detected_as_sequential() {
        let records: Vec<TraceRecord> =
            (0..100).map(|i| TraceRecord::new(i * 10, i * 8, 8, RequestKind::Read)).collect();
        let a = TraceAnalysis::of(&records);
        assert!(a.is_sequential());
        assert!(a.is_read_mostly());
        assert!((a.sequentiality() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_generator_output_is_not_sequential() {
        let mut pattern =
            AccessPattern::new(PatternSpec::RandomRead { working_set_blocks: 100_000 }, 0, 1, 3);
        let mut arrivals = ArrivalProcess::new(10_000.0, 3);
        let records = crate::gen::generate_stream(&mut pattern, &mut arrivals, 0, 200_000);
        let a = TraceAnalysis::of(&records);
        assert!(!a.is_sequential(), "sequentiality {}", a.sequentiality());
        assert!(a.is_read_mostly());
    }

    #[test]
    fn generator_read_fraction_survives_analysis() {
        let mut pattern = AccessPattern::new(
            PatternSpec::Mixed { read_fraction: 0.3, working_set_blocks: 10_000 },
            0,
            1,
            11,
        );
        let mut arrivals = ArrivalProcess::new(20_000.0, 11);
        let records = crate::gen::generate_stream(&mut pattern, &mut arrivals, 0, 500_000);
        let a = TraceAnalysis::of(&records);
        assert!((a.read_fraction() - 0.3).abs() < 0.05, "read fraction {}", a.read_fraction());
        // Arrival rate is recovered within 10%.
        assert!((a.avg_iops() - 20_000.0).abs() < 2_000.0, "iops {}", a.avg_iops());
    }

    #[test]
    fn interval_analysis_splits_by_timestamp() {
        let records = vec![
            TraceRecord::new(0, 0, 8, RequestKind::Read),
            TraceRecord::new(50, 8, 8, RequestKind::Write),
            TraceRecord::new(150, 16, 8, RequestKind::Read),
        ];
        let per_interval = analyze_intervals(&records, 100);
        assert_eq!(per_interval.len(), 2);
        assert_eq!(per_interval[0].requests, 2);
        assert_eq!(per_interval[1].requests, 1);
        assert!(analyze_intervals(&[], 100).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_length_panics() {
        let _ = analyze_intervals(&[TraceRecord::new(0, 0, 8, RequestKind::Read)], 0);
    }
}
