//! `blktrace`-style trace records.

use std::fmt;

use serde::{Deserialize, Serialize};

use lbica_storage::request::{IoRequest, RequestId, RequestKind, RequestOrigin};
use lbica_storage::time::SimTime;

/// One logged block-layer request, in the spirit of a `blktrace` queue
/// event: a timestamp, an LBA, a length in sectors and a direction.
///
/// ```
/// use lbica_trace::record::TraceRecord;
/// use lbica_storage::request::RequestKind;
///
/// let rec = TraceRecord::new(1_000, 2048, 8, RequestKind::Read);
/// assert_eq!(rec.to_line(), "1000 2048 8 R");
/// assert_eq!(TraceRecord::parse_line(&rec.to_line()).unwrap(), rec);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Arrival timestamp in microseconds since trace start.
    pub timestamp_us: u64,
    /// Starting sector.
    pub sector: u64,
    /// Length in sectors.
    pub sectors: u64,
    /// Read or write.
    pub kind: RequestKind,
}

impl TraceRecord {
    /// Creates a record.
    pub fn new(timestamp_us: u64, sector: u64, sectors: u64, kind: RequestKind) -> Self {
        TraceRecord { timestamp_us, sector, sectors, kind }
    }

    /// Converts the record into an application [`IoRequest`] with the given
    /// id.
    pub fn to_request(&self, id: RequestId) -> IoRequest {
        IoRequest::new(id, self.kind, RequestOrigin::Application, self.sector, self.sectors)
            .with_arrival(SimTime::from_micros(self.timestamp_us))
    }

    /// Serialises the record to the single-line text format
    /// `"<ts_us> <sector> <sectors> <R|W>"`.
    pub fn to_line(&self) -> String {
        format!(
            "{} {} {} {}",
            self.timestamp_us,
            self.sector,
            self.sectors,
            if self.kind.is_read() { 'R' } else { 'W' }
        )
    }

    /// Parses a record from the text format produced by [`Self::to_line`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseRecordError`] describing the offending field when
    /// the line is malformed.
    pub fn parse_line(line: &str) -> Result<Self, ParseRecordError> {
        let mut parts = line.split_whitespace();
        let ts = parts
            .next()
            .ok_or_else(|| ParseRecordError::missing("timestamp"))?
            .parse::<u64>()
            .map_err(|_| ParseRecordError::invalid("timestamp"))?;
        let sector = parts
            .next()
            .ok_or_else(|| ParseRecordError::missing("sector"))?
            .parse::<u64>()
            .map_err(|_| ParseRecordError::invalid("sector"))?;
        let sectors = parts
            .next()
            .ok_or_else(|| ParseRecordError::missing("length"))?
            .parse::<u64>()
            .map_err(|_| ParseRecordError::invalid("length"))?;
        if sectors == 0 {
            return Err(ParseRecordError::invalid("length"));
        }
        let kind = match parts.next() {
            Some("R") | Some("r") => RequestKind::Read,
            Some("W") | Some("w") => RequestKind::Write,
            Some(_) => return Err(ParseRecordError::invalid("direction")),
            None => return Err(ParseRecordError::missing("direction")),
        };
        if parts.next().is_some() {
            return Err(ParseRecordError::invalid("trailing fields"));
        }
        Ok(TraceRecord::new(ts, sector, sectors, kind))
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// Error returned when a trace line cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRecordError {
    field: &'static str,
    missing: bool,
}

impl ParseRecordError {
    fn missing(field: &'static str) -> Self {
        ParseRecordError { field, missing: true }
    }

    fn invalid(field: &'static str) -> Self {
        ParseRecordError { field, missing: false }
    }
}

impl fmt::Display for ParseRecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.missing {
            write!(f, "missing {} field in trace line", self.field)
        } else {
            write!(f, "invalid {} field in trace line", self.field)
        }
    }
}

impl std::error::Error for ParseRecordError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_round_trip() {
        let rec = TraceRecord::new(123, 4096, 16, RequestKind::Write);
        assert_eq!(rec.to_line(), "123 4096 16 W");
        assert_eq!(TraceRecord::parse_line("123 4096 16 W").unwrap(), rec);
        assert_eq!(TraceRecord::parse_line("123 4096 16 w").unwrap(), rec);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TraceRecord::parse_line("").is_err());
        assert!(TraceRecord::parse_line("1 2 3").is_err());
        assert!(TraceRecord::parse_line("1 2 3 X").is_err());
        assert!(TraceRecord::parse_line("a 2 3 R").is_err());
        assert!(TraceRecord::parse_line("1 2 0 R").is_err());
        assert!(TraceRecord::parse_line("1 2 3 R extra").is_err());
        let err = TraceRecord::parse_line("1 2 3").unwrap_err();
        assert!(err.to_string().contains("direction"));
    }

    #[test]
    fn to_request_preserves_fields() {
        let rec = TraceRecord::new(500, 64, 8, RequestKind::Read);
        let req = rec.to_request(77);
        assert_eq!(req.id(), 77);
        assert_eq!(req.kind(), RequestKind::Read);
        assert_eq!(req.origin(), RequestOrigin::Application);
        assert_eq!(req.range().start().sector(), 64);
        assert_eq!(req.range().sectors(), 8);
        assert_eq!(req.arrival().as_micros(), 500);
    }
}
