//! Workload generation, block-trace tooling and I/O monitors.
//!
//! The paper drives its physical testbed with burst-heavy enterprise
//! workloads (TPC-C, a mail server, a web server) and observes the system
//! with two kernel tools: `iostat` (per-device queue sizes and service
//! times, used by LBICA's bottleneck detector) and `blktrace` (the types of
//! the requests currently sitting in a queue, used by the workload
//! characterizer). This crate reproduces all three ingredients in
//! simulation:
//!
//! * [`record`] / [`io`] — `blktrace`-style [`TraceRecord`]s plus text and
//!   binary readers/writers so traces can be captured, stored and replayed.
//! * [`gen`] — composable address-pattern generators (random, sequential,
//!   Zipfian, mixed) and an arrival process for open-loop request streams.
//! * [`workload`] — [`WorkloadSpec`]: a phase-structured description of a
//!   burst workload, with canned specs for the paper's three workloads.
//! * [`monitor`] — [`IostatCollector`] and [`BlktraceProbe`]: the per-interval
//!   measurement channels LBICA consumes.
//!
//! # Example
//!
//! ```
//! use lbica_trace::workload::WorkloadSpec;
//!
//! let spec = WorkloadSpec::tpcc();
//! assert_eq!(spec.name(), "tpcc");
//! // The spec knows how many monitoring intervals the paper plots for it.
//! assert_eq!(spec.total_intervals(), 200);
//! let records = spec.generate_interval(3, 42);
//! assert!(!records.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod gen;
pub mod io;
pub mod monitor;
pub mod record;
pub mod workload;

pub use analyze::{analyze_intervals, TraceAnalysis};
pub use gen::{AccessPattern, ArrivalProcess, PatternSpec};
pub use io::{
    import_text_to_binary, import_text_trace, read_text_trace, write_text_trace, BinaryTraceCodec,
    ImportError, ImportLineError,
};
pub use monitor::{BlktraceProbe, IntervalReport, IostatCollector, TierReport};
pub use record::TraceRecord;
pub use workload::{
    BurstPhase, DiurnalCurve, PhaseIntensity, TenantMix, TraceSpanError, WorkloadKind,
    WorkloadScale, WorkloadSpec,
};
