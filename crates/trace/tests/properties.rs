//! Property-based tests of the workload generators, monitors and trace
//! analysis.

use bytes::Bytes;
use proptest::prelude::*;

use lbica_storage::block::BLOCK_SECTORS;
use lbica_storage::request::RequestKind;
use lbica_trace::analyze::{analyze_intervals, TraceAnalysis};
use lbica_trace::gen::{generate_stream, AccessPattern, ArrivalProcess, PatternSpec};
use lbica_trace::io::BinaryTraceCodec;
use lbica_trace::monitor::{IostatCollector, Tier};
use lbica_trace::record::TraceRecord;
use lbica_trace::workload::{BurstPhase, PhaseIntensity, WorkloadKind, WorkloadSpec};

fn arb_pattern() -> impl Strategy<Value = PatternSpec> {
    prop_oneof![
        (1u64..10_000).prop_map(|ws| PatternSpec::RandomRead { working_set_blocks: ws }),
        (1u64..10_000).prop_map(|ws| PatternSpec::RandomWrite { working_set_blocks: ws }),
        (1u64..10_000).prop_map(|len| PatternSpec::SequentialRead { length_blocks: len }),
        (1u64..10_000).prop_map(|len| PatternSpec::SequentialWrite { length_blocks: len }),
        (0.0f64..=1.0, 1u64..10_000)
            .prop_map(|(rf, ws)| PatternSpec::Mixed { read_fraction: rf, working_set_blocks: ws }),
        (0.0f64..=1.0, 1u64..10_000, 0.01f64..=1.0, 0.0f64..=1.0).prop_map(|(rf, ws, hf, hp)| {
            PatternSpec::Hotspot {
                read_fraction: rf,
                working_set_blocks: ws,
                hot_fraction: hf,
                hot_probability: hp,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_pattern_stays_inside_its_footprint(
        pattern in arb_pattern(),
        base in 0u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let mut gen = AccessPattern::new(pattern, base, 1, seed);
        let footprint = pattern.footprint_blocks();
        for _ in 0..200 {
            let (sector, sectors, _kind) = gen.next_access();
            prop_assert_eq!(sectors, BLOCK_SECTORS);
            let block = sector / BLOCK_SECTORS;
            prop_assert!(block >= base, "block {} below base {}", block, base);
            prop_assert!(
                block < base + footprint,
                "block {} beyond footprint {}+{}",
                block,
                base,
                footprint
            );
        }
    }

    #[test]
    fn pure_patterns_have_pure_directions(seed in any::<u64>(), ws in 1u64..5_000) {
        let mut reads = AccessPattern::new(PatternSpec::RandomRead { working_set_blocks: ws }, 0, 1, seed);
        let mut writes = AccessPattern::new(PatternSpec::RandomWrite { working_set_blocks: ws }, 0, 1, seed);
        for _ in 0..100 {
            prop_assert_eq!(reads.next_access().2, RequestKind::Read);
            prop_assert_eq!(writes.next_access().2, RequestKind::Write);
        }
    }

    #[test]
    fn generated_streams_are_sorted_and_deterministic(
        iops in 100.0f64..50_000.0,
        duration in 1_000u64..200_000,
        seed in any::<u64>(),
    ) {
        let make = || {
            let mut p = AccessPattern::new(
                PatternSpec::Mixed { read_fraction: 0.5, working_set_blocks: 4_096 },
                0,
                1,
                seed,
            );
            let mut a = ArrivalProcess::new(iops, seed ^ 1);
            generate_stream(&mut p, &mut a, 0, duration)
        };
        let stream = make();
        prop_assert_eq!(&stream, &make());
        let mut prev = 0u64;
        for r in &stream {
            prop_assert!(r.timestamp_us < duration);
            prop_assert!(r.timestamp_us >= prev);
            prev = r.timestamp_us;
        }
    }

    #[test]
    fn workload_interval_lookup_is_a_partition(
        intervals in proptest::collection::vec(1u32..20, 1..6),
        seed in any::<u64>(),
    ) {
        let mut spec = WorkloadSpec::new("prop", WorkloadKind::Custom, 10_000);
        for (i, n) in intervals.iter().enumerate() {
            spec = spec.push_phase(BurstPhase::new(
                format!("phase-{i}"),
                *n,
                1_000.0,
                PatternSpec::RandomRead { working_set_blocks: 100 },
                if i % 2 == 0 { PhaseIntensity::Moderate } else { PhaseIntensity::Burst },
            ));
        }
        let total: u32 = intervals.iter().sum();
        prop_assert_eq!(spec.total_intervals(), total);
        // Every interval maps to exactly one phase, in order.
        let mut last_phase = 0usize;
        for idx in 0..total {
            let (phase_idx, _) = spec.phase_for_interval(idx).expect("covered");
            prop_assert!(phase_idx >= last_phase);
            last_phase = phase_idx;
        }
        prop_assert!(spec.phase_for_interval(total).is_none());
        // Generation past the end yields nothing; inside the range the
        // timestamps stay within the interval window.
        prop_assert!(spec.generate_interval(total + 1, seed).is_empty());
        let records = spec.generate_interval(0, seed);
        for r in &records {
            prop_assert!(r.timestamp_us < spec.interval_us());
        }
    }

    #[test]
    fn analysis_totals_match_the_trace(
        records in proptest::collection::vec(
            (0u64..1_000_000, 0u64..100_000, 1u64..64, any::<bool>()),
            0..200,
        ),
    ) {
        let trace: Vec<TraceRecord> = records
            .iter()
            .map(|(ts, sector, len, read)| {
                TraceRecord::new(
                    *ts,
                    *sector,
                    *len,
                    if *read { RequestKind::Read } else { RequestKind::Write },
                )
            })
            .collect();
        let analysis = TraceAnalysis::of(&trace);
        prop_assert_eq!(analysis.requests as usize, trace.len());
        prop_assert_eq!(analysis.reads + analysis.writes, analysis.requests);
        prop_assert_eq!(
            analysis.total_sectors,
            trace.iter().map(|r| r.sectors).sum::<u64>()
        );
        prop_assert!(analysis.read_fraction() >= 0.0 && analysis.read_fraction() <= 1.0);
        prop_assert!(analysis.sequentiality() >= 0.0 && analysis.sequentiality() <= 1.0);

        // Splitting into intervals conserves the request count.
        let per_interval = analyze_intervals(&trace, 50_000);
        let split_total: u64 = per_interval.iter().map(|a| a.requests).sum();
        prop_assert_eq!(split_total, analysis.requests);
    }

    #[test]
    fn binary_codec_round_trips_extreme_values(
        records in proptest::collection::vec(
            // Full-range timestamps and sector addresses, full 32-bit
            // lengths — the fields the wire format must carry losslessly.
            (
                prop_oneof![Just(0u64), Just(u64::MAX), any::<u64>()],
                prop_oneof![Just(0u64), Just(u64::MAX), any::<u64>()],
                prop_oneof![Just(1u64), Just(u32::MAX as u64), 1u64..100_000],
                any::<bool>(),
            ),
            0..64,
        ),
    ) {
        // Covers the zero-length (empty) trace: the vec strategy starts
        // at zero elements.
        let trace: Vec<TraceRecord> = records
            .iter()
            .map(|(ts, sector, len, read)| {
                TraceRecord::new(
                    *ts,
                    *sector,
                    *len,
                    if *read { RequestKind::Read } else { RequestKind::Write },
                )
            })
            .collect();
        let codec = BinaryTraceCodec;
        let encoded = codec.encode(&trace);
        prop_assert_eq!(encoded.len(), trace.len() * BinaryTraceCodec::RECORD_BYTES);
        let decoded = codec.decode(encoded).expect("well-formed buffer decodes");
        prop_assert_eq!(decoded, trace);
    }

    #[test]
    fn binary_decoder_never_panics_on_arbitrary_bytes(
        raw in proptest::collection::vec(any::<u64>(), 0..200),
        cut in 0usize..64,
    ) {
        // Arbitrary buffers of arbitrary (including truncated) lengths:
        // decode must return Ok or Err, never panic.
        let mut bytes: Vec<u8> = raw.iter().flat_map(|w| w.to_le_bytes()).collect();
        bytes.truncate(bytes.len().saturating_sub(cut));
        let _ = BinaryTraceCodec.decode(Bytes::from(bytes));
    }

    #[test]
    fn replay_workloads_partition_their_trace_across_intervals(
        records in proptest::collection::vec(
            (0u64..500_000, 0u64..100_000, 1u64..64, any::<bool>()),
            0..150,
        ),
        interval_us in 1_000u64..100_000,
    ) {
        let trace: Vec<TraceRecord> = records
            .iter()
            .map(|(ts, sector, len, read)| {
                TraceRecord::new(
                    *ts,
                    *sector,
                    *len,
                    if *read { RequestKind::Read } else { RequestKind::Write },
                )
            })
            .collect();
        let spec = WorkloadSpec::replay("prop-replay", interval_us, trace.clone());
        // Concatenating every interval recovers the whole capture, sorted.
        let mut replayed = Vec::new();
        for idx in 0..spec.total_intervals() {
            let chunk = spec.generate_interval(idx, 7);
            for r in &chunk {
                let lo = idx as u64 * interval_us;
                prop_assert!(r.timestamp_us >= lo && r.timestamp_us < lo + interval_us);
            }
            replayed.extend(chunk);
        }
        prop_assert_eq!(replayed.len(), trace.len());
        let mut sorted = trace;
        sorted.sort_by_key(|r| r.timestamp_us);
        prop_assert_eq!(replayed, sorted);
    }

    #[test]
    fn zipfian_rank_frequency_is_monotone_and_sharpens_with_skew(seed in any::<u64>()) {
        let blocks = 16u64;
        let draws = 20_000;
        let mut top_counts = Vec::new();
        for skew in [0u32, 600, 1200] {
            let mut gen = AccessPattern::new(
                PatternSpec::Zipfian {
                    read_fraction: 1.0,
                    working_set_blocks: blocks,
                    skew_permille: skew,
                },
                0,
                1,
                seed,
            );
            let mut counts = vec![0u64; blocks as usize];
            for _ in 0..draws {
                let (sector, _, _) = gen.next_access();
                counts[(sector / BLOCK_SECTORS) as usize] += 1;
            }
            // Rank-frequency monotonicity, smoothed over quartiles of the
            // rank order so sampling noise between adjacent cold ranks
            // cannot flake: each hotter quartile draws at least as much as
            // the next. (At skew 0 the distribution is uniform, so the
            // quartiles are statistically indistinguishable — skip it.)
            if skew > 0 {
                let quartiles: Vec<u64> =
                    counts.chunks(4).map(|c| c.iter().sum()).collect();
                for pair in quartiles.windows(2) {
                    prop_assert!(
                        pair[0] >= pair[1],
                        "skew {} quartiles not monotone: {:?}",
                        skew,
                        quartiles
                    );
                }
            }
            top_counts.push(counts[0]);
        }
        // Raising the skew concentrates more draws on the hottest block:
        // expected shares are ~6% / ~14% / ~38%, far beyond noise at 20k
        // draws.
        prop_assert!(
            top_counts[0] < top_counts[1] && top_counts[1] < top_counts[2],
            "top-rank counts not increasing in skew: {:?}",
            top_counts
        );
    }

    #[test]
    fn text_importer_never_panics_on_arbitrary_bytes(
        raw in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        use lbica_trace::io::{import_text_trace, import_text_to_binary};
        // Hostile input contract: any byte soup yields Ok or a typed
        // ImportError — never a panic, never an abort.
        let _ = import_text_trace(raw.as_slice());
        let _ = import_text_to_binary(raw.as_slice());
    }

    #[test]
    fn imported_text_round_trips_to_binary_and_replay(
        rows in proptest::collection::vec(
            (0u64..1_000_000, 0u64..1_000_000, 1u64..100_000, any::<bool>()),
            0..100,
        ),
    ) {
        use std::fmt::Write as _;
        use lbica_trace::io::{import_text_trace, import_text_to_binary};
        let expected: Vec<TraceRecord> = rows
            .iter()
            .map(|(ts, sector, len, read)| {
                TraceRecord::new(
                    *ts,
                    *sector,
                    *len,
                    if *read { RequestKind::Read } else { RequestKind::Write },
                )
            })
            .collect();
        let mut text = String::from("# timestamp_us sector sectors direction\n");
        for r in &expected {
            let dir = if r.kind.is_read() { "R" } else { "W" };
            let _ = writeln!(text, "{} {} {} {}", r.timestamp_us, r.sector, r.sectors, dir);
        }
        let imported = import_text_trace(text.as_bytes()).expect("well-formed lines import");
        prop_assert_eq!(&imported, &expected);

        // text → binary → decode arrives time-sorted (stable, so equal
        // timestamps keep their capture order) and lossless.
        let encoded = import_text_to_binary(text.as_bytes()).expect("import encodes");
        let decoded = BinaryTraceCodec.decode(encoded).expect("fresh encoding decodes");
        let mut sorted = expected.clone();
        sorted.sort_by_key(|r| r.timestamp_us);
        prop_assert_eq!(&decoded, &sorted);

        // … and a replay workload over the import partitions the whole
        // capture back out across its intervals.
        let spec = WorkloadSpec::replay("import-prop", 50_000, decoded);
        let replayed: Vec<TraceRecord> = (0..spec.total_intervals())
            .flat_map(|idx| spec.generate_interval(idx, 3))
            .collect();
        prop_assert_eq!(replayed, sorted);
    }

    #[test]
    fn iostat_collector_aggregates_are_consistent(
        latencies in proptest::collection::vec(1u64..100_000, 1..200),
    ) {
        let mut iostat = IostatCollector::new();
        for &l in &latencies {
            iostat.record_enqueue(Tier::Cache);
            iostat.record_completion(Tier::Cache, l);
        }
        let report = iostat.finish_interval(0, 0, 0);
        prop_assert_eq!(report.cache.completed as usize, latencies.len());
        prop_assert_eq!(report.cache.max_latency_us, *latencies.iter().max().unwrap());
        let mean = latencies.iter().sum::<u64>() / latencies.len() as u64;
        prop_assert_eq!(report.cache.avg_latency_us, mean);
        prop_assert!(report.cache.avg_latency_us <= report.cache.max_latency_us);
    }
}
