//! Model-based equivalence tests for the flat [`SetAssociativeMap`].
//!
//! The production map is a packed slot arena with intrusive recency links;
//! the reference model below is a deliberately naive `BTreeMap`-backed
//! reimplementation of the same set-associative + LRU/FIFO semantics.
//! Driving both with identical random operation sequences and asserting
//! identical observable outcomes pins the arena rewrite to the original
//! behaviour far more tightly than example-based tests can.

use std::collections::BTreeMap;

use proptest::prelude::*;

use lbica_cache::{InsertOutcome, ReplacementKind, SetAssociativeMap, SlotState};

/// One set of the reference model: a block→state map plus an explicit
/// recency order (coldest first), bounded by the associativity.
#[derive(Debug, Default)]
struct ModelSet {
    slots: BTreeMap<u64, SlotState>,
    /// Blocks from coldest (front) to hottest (back).
    order: Vec<u64>,
}

/// A naive reference implementation of the set-associative map.
#[derive(Debug)]
struct ModelCache {
    sets: Vec<ModelSet>,
    associativity: usize,
    replacement: ReplacementKind,
}

impl ModelCache {
    fn new(num_sets: usize, associativity: usize, replacement: ReplacementKind) -> Self {
        ModelCache {
            sets: (0..num_sets).map(|_| ModelSet::default()).collect(),
            associativity,
            replacement,
        }
    }

    fn set_for(&mut self, block: u64) -> &mut ModelSet {
        let idx = (block % self.sets.len() as u64) as usize;
        &mut self.sets[idx]
    }

    fn len(&self) -> usize {
        self.sets.iter().map(|s| s.slots.len()).sum()
    }

    fn dirty(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.slots.values())
            .filter(|state| **state == SlotState::Dirty)
            .count()
    }

    fn state(&mut self, block: u64) -> Option<SlotState> {
        self.set_for(block).slots.get(&block).copied()
    }

    fn touch(&mut self, block: u64) -> bool {
        let lru = self.replacement == ReplacementKind::Lru;
        let set = self.set_for(block);
        if !set.slots.contains_key(&block) {
            return false;
        }
        if lru {
            set.order.retain(|b| *b != block);
            set.order.push(block);
        }
        true
    }

    fn insert(&mut self, block: u64, state: SlotState) -> InsertOutcome {
        let associativity = self.associativity;
        let lru = self.replacement == ReplacementKind::Lru;
        let set = self.set_for(block);

        if let Some(existing) = set.slots.get_mut(&block) {
            if *existing == SlotState::Clean && state == SlotState::Dirty {
                *existing = SlotState::Dirty;
            }
            if lru {
                set.order.retain(|b| *b != block);
                set.order.push(block);
            }
            return InsertOutcome::AlreadyPresent;
        }

        if set.slots.len() < associativity {
            set.slots.insert(block, state);
            set.order.push(block);
            return InsertOutcome::Inserted;
        }

        let victim = set.order.remove(0);
        let victim_state = set.slots.remove(&victim).expect("victim is resident");
        set.slots.insert(block, state);
        set.order.push(block);
        match victim_state {
            SlotState::Dirty => InsertOutcome::EvictedDirty { victim },
            SlotState::Clean => InsertOutcome::EvictedClean { victim },
        }
    }

    fn mark_dirty(&mut self, block: u64) -> bool {
        match self.set_for(block).slots.get_mut(&block) {
            Some(state) => {
                *state = SlotState::Dirty;
                true
            }
            None => false,
        }
    }

    fn mark_clean(&mut self, block: u64) -> bool {
        match self.set_for(block).slots.get_mut(&block) {
            Some(state) => {
                *state = SlotState::Clean;
                true
            }
            None => false,
        }
    }

    fn invalidate(&mut self, block: u64) -> Option<SlotState> {
        let set = self.set_for(block);
        let state = set.slots.remove(&block)?;
        set.order.retain(|b| *b != block);
        Some(state)
    }
}

/// The operations the fuzzer drives both implementations with.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, SlotState),
    Touch(u64),
    MarkDirty(u64),
    MarkClean(u64),
    Invalidate(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..5, 0u64..96, any::<bool>()).prop_map(|(which, block, dirty)| match which {
        0 => Op::Insert(block, if dirty { SlotState::Dirty } else { SlotState::Clean }),
        1 => Op::Touch(block),
        2 => Op::MarkDirty(block),
        3 => Op::MarkClean(block),
        _ => Op::Invalidate(block),
    })
}

fn arb_replacement() -> impl Strategy<Value = ReplacementKind> {
    prop_oneof![Just(ReplacementKind::Lru), Just(ReplacementKind::Fifo)]
}

/// Geometries covering the pow2 bitmask fast path and the modulo fallback.
fn arb_geometry() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![
        Just((8usize, 2usize)), // power-of-two sets
        Just((7, 2)),           // prime set count (modulo path)
        Just((4, 4)),
        Just((6, 3)),
        Just((1, 8)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn flat_map_matches_the_btreemap_reference_model(
        (num_sets, associativity) in arb_geometry(),
        replacement in arb_replacement(),
        ops in proptest::collection::vec(arb_op(), 1..400),
    ) {
        let mut real = SetAssociativeMap::new(num_sets, associativity, replacement);
        let mut model = ModelCache::new(num_sets, associativity, replacement);

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert(block, state) => {
                    let a = real.insert(block, state);
                    let b = model.insert(block, state);
                    prop_assert_eq!(a, b, "insert({}, {:?}) diverged at step {}", block, state, step);
                }
                Op::Touch(block) => {
                    prop_assert_eq!(real.touch(block), model.touch(block), "touch({}) at {}", block, step);
                }
                Op::MarkDirty(block) => {
                    prop_assert_eq!(real.mark_dirty(block), model.mark_dirty(block), "mark_dirty({}) at {}", block, step);
                }
                Op::MarkClean(block) => {
                    prop_assert_eq!(real.mark_clean(block), model.mark_clean(block), "mark_clean({}) at {}", block, step);
                }
                Op::Invalidate(block) => {
                    prop_assert_eq!(real.invalidate(block), model.invalidate(block), "invalidate({}) at {}", block, step);
                }
            }

            // After every op: occupancy, dirty accounting and per-block
            // state agree exactly.
            prop_assert_eq!(real.len(), model.len(), "len diverged at step {}", step);
            prop_assert_eq!(real.dirty_blocks(), model.dirty(), "dirty diverged at step {}", step);
            for block in 0u64..96 {
                prop_assert_eq!(
                    real.state(block),
                    model.state(block),
                    "state({}) diverged at step {}", block, step
                );
            }
        }

        // The dirty candidates must enumerate exactly the model's dirty
        // blocks (the arena guarantees set-then-way order; the model has no
        // way order, so compare as sets).
        let mut real_dirty = real.dirty_candidates(usize::MAX);
        real_dirty.sort_unstable();
        let mut model_dirty: Vec<u64> = (0..96u64)
            .filter(|b| model.state(*b) == Some(SlotState::Dirty))
            .collect();
        model_dirty.sort_unstable();
        prop_assert_eq!(real_dirty, model_dirty);
    }
}
