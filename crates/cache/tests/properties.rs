//! Property-based tests of the cache module's invariants under every write
//! policy.

use proptest::prelude::*;

use lbica_cache::{
    CacheConfig, CacheModule, ReplacementKind, SetAssociativeMap, SlotState, TargetDevice,
    WritePolicy,
};
use lbica_storage::request::{IoRequest, RequestClass, RequestKind, RequestOrigin};

fn arb_policy() -> impl Strategy<Value = WritePolicy> {
    prop_oneof![
        Just(WritePolicy::WriteBack),
        Just(WritePolicy::WriteThrough),
        Just(WritePolicy::ReadOnly),
        Just(WritePolicy::WriteOnly),
    ]
}

fn small_config(policy: WritePolicy) -> CacheConfig {
    CacheConfig {
        num_sets: 8,
        associativity: 2,
        replacement: ReplacementKind::Lru,
        initial_policy: policy,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn set_assoc_map_occupancy_and_dirty_counts_are_consistent(
        ops in proptest::collection::vec((0u64..128, any::<bool>(), any::<bool>()), 1..400),
    ) {
        let mut map = SetAssociativeMap::new(8, 2, ReplacementKind::Lru);
        for (block, dirty, invalidate) in ops {
            if invalidate {
                map.invalidate(block);
            } else {
                map.insert(block, if dirty { SlotState::Dirty } else { SlotState::Clean });
            }
            prop_assert!(map.len() <= map.capacity_blocks());
            prop_assert!(map.dirty_blocks() <= map.len());
            // Recount dirty blocks from scratch: must match the counter.
            let recount = map
                .blocks()
                .filter(|b| map.state(*b) == Some(SlotState::Dirty))
                .count();
            prop_assert_eq!(recount, map.dirty_blocks());
        }
    }

    #[test]
    fn every_application_access_produces_a_consistent_outcome(
        policy in arb_policy(),
        accesses in proptest::collection::vec((0u64..64, any::<bool>()), 1..300),
    ) {
        let mut cache = CacheModule::new(small_config(policy));
        for (i, (block, is_read)) in accesses.iter().enumerate() {
            let kind = if *is_read { RequestKind::Read } else { RequestKind::Write };
            let req = IoRequest::new(i as u64, kind, RequestOrigin::Application, block * 8, 8);
            let outcome = cache.access(&req);

            // Invariant 1: something always serves the application's data.
            let app_ops: Vec<_> = outcome
                .ops()
                .iter()
                .filter(|op| op.origin == RequestOrigin::Application)
                .collect();
            prop_assert!(!app_ops.is_empty(), "no datapath op for {kind:?} under {policy}");

            // Invariant 2: the application-facing op directions match the request.
            for op in &app_ops {
                prop_assert_eq!(op.kind, kind);
            }

            // Invariant 3: promotes only appear for policies that promote,
            // and only target the SSD.
            for op in outcome.ops() {
                if op.class() == RequestClass::Promote {
                    prop_assert!(policy.promotes_read_misses());
                    prop_assert_eq!(op.target, TargetDevice::Ssd);
                    prop_assert_eq!(op.kind, RequestKind::Write);
                }
            }

            // Invariant 4: writes reach the disk if and only if the policy
            // writes through or bypasses them.
            if kind == RequestKind::Write {
                let disk_write = outcome.ops().iter().any(|op| {
                    op.target == TargetDevice::Hdd && op.origin == RequestOrigin::Application
                });
                prop_assert_eq!(disk_write, policy.writes_through() || !policy.buffers_writes());
            }

            // Invariant 5: occupancy and dirty bounds hold at every step.
            prop_assert!(cache.cached_blocks() <= cache.capacity_blocks());
            if !policy.leaves_dirty_blocks() {
                prop_assert_eq!(cache.dirty_blocks(), 0);
            }
        }
    }

    #[test]
    fn flushing_everything_always_leaves_a_clean_cache(
        writes in proptest::collection::vec(0u64..64, 1..200),
    ) {
        let mut cache = CacheModule::new(small_config(WritePolicy::WriteBack));
        for (i, block) in writes.iter().enumerate() {
            let req = IoRequest::new(
                i as u64,
                RequestKind::Write,
                RequestOrigin::Application,
                block * 8,
                8,
            );
            cache.access(&req);
        }
        let dirty_before = cache.dirty_blocks();
        let ops = cache.flush_dirty(usize::MAX);
        prop_assert_eq!(ops.len(), dirty_before * 2);
        prop_assert_eq!(cache.dirty_blocks(), 0);
        // Every flush op pair is an SSD read plus a disk write.
        let ssd_reads =
            ops.iter().filter(|op| op.target == TargetDevice::Ssd && op.kind == RequestKind::Read).count();
        let disk_writes =
            ops.iter().filter(|op| op.target == TargetDevice::Hdd && op.kind == RequestKind::Write).count();
        prop_assert_eq!(ssd_reads, dirty_before);
        prop_assert_eq!(disk_writes, dirty_before);
    }

    #[test]
    fn hit_ratio_is_always_a_probability(
        policy in arb_policy(),
        accesses in proptest::collection::vec((0u64..32, any::<bool>()), 0..200),
    ) {
        let mut cache = CacheModule::new(small_config(policy));
        for (i, (block, is_read)) in accesses.iter().enumerate() {
            let kind = if *is_read { RequestKind::Read } else { RequestKind::Write };
            cache.access(&IoRequest::new(i as u64, kind, RequestOrigin::Application, block * 8, 8));
        }
        let stats = cache.stats();
        prop_assert!((0.0..=1.0).contains(&stats.hit_ratio()));
        prop_assert!((0.0..=1.0).contains(&stats.read_hit_ratio()));
        prop_assert_eq!(stats.reads() + stats.writes(), accesses.len() as u64);
    }
}
