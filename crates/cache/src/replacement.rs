//! Replacement policies for cache sets.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which victim-selection policy a cache set uses.
///
/// EnhanceIO supports FIFO and LRU; the paper does not depend on the choice,
/// so both are provided and LRU is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReplacementKind {
    /// Evict the least-recently-used slot.
    #[default]
    Lru,
    /// Evict slots in insertion order.
    Fifo,
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementKind::Lru => write!(f, "lru"),
            ReplacementKind::Fifo => write!(f, "fifo"),
        }
    }
}

/// Per-set recency bookkeeping used to pick eviction victims.
///
/// Stores way indices ordered from coldest (front) to hottest (back). Under
/// FIFO, `touch` on an existing way is a no-op; under LRU it moves the way to
/// the hot end.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecencyList {
    order: Vec<usize>,
    kind: ReplacementKind,
}

impl RecencyList {
    /// Creates an empty list with the given policy.
    pub fn new(kind: ReplacementKind) -> Self {
        RecencyList { order: Vec::new(), kind }
    }

    /// Number of tracked ways.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no ways are tracked.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Records an access to `way`: inserts it if new, and under LRU promotes
    /// it to most-recently-used.
    pub fn touch(&mut self, way: usize) {
        match self.order.iter().position(|&w| w == way) {
            Some(pos) => {
                if self.kind == ReplacementKind::Lru {
                    self.order.remove(pos);
                    self.order.push(way);
                }
            }
            None => self.order.push(way),
        }
    }

    /// Removes `way` from the tracking list (slot invalidated).
    pub fn remove(&mut self, way: usize) {
        self.order.retain(|&w| w != way);
    }

    /// The coldest way — the eviction victim — without removing it.
    pub fn victim(&self) -> Option<usize> {
        self.order.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_promotes_touched_ways() {
        let mut l = RecencyList::new(ReplacementKind::Lru);
        l.touch(0);
        l.touch(1);
        l.touch(2);
        assert_eq!(l.victim(), Some(0));
        l.touch(0); // 0 becomes hottest
        assert_eq!(l.victim(), Some(1));
    }

    #[test]
    fn fifo_ignores_reaccess() {
        let mut l = RecencyList::new(ReplacementKind::Fifo);
        l.touch(0);
        l.touch(1);
        l.touch(0);
        assert_eq!(l.victim(), Some(0));
    }

    #[test]
    fn remove_drops_way() {
        let mut l = RecencyList::new(ReplacementKind::Lru);
        l.touch(3);
        l.touch(4);
        l.remove(3);
        assert_eq!(l.victim(), Some(4));
        assert_eq!(l.len(), 1);
        l.remove(4);
        assert!(l.is_empty());
        assert_eq!(l.victim(), None);
    }

    #[test]
    fn display_labels() {
        assert_eq!(ReplacementKind::Lru.to_string(), "lru");
        assert_eq!(ReplacementKind::Fifo.to_string(), "fifo");
        assert_eq!(ReplacementKind::default(), ReplacementKind::Lru);
    }
}
