//! Replacement policies for cache sets.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which victim-selection policy a cache set uses.
///
/// EnhanceIO supports FIFO and LRU; the paper does not depend on the choice,
/// so both are provided and LRU is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReplacementKind {
    /// Evict the least-recently-used slot.
    #[default]
    Lru,
    /// Evict slots in insertion order.
    Fifo,
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementKind::Lru => write!(f, "lru"),
            ReplacementKind::Fifo => write!(f, "fifo"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_labels() {
        assert_eq!(ReplacementKind::Lru.to_string(), "lru");
        assert_eq!(ReplacementKind::Fifo.to_string(), "fifo");
        assert_eq!(ReplacementKind::default(), ReplacementKind::Lru);
    }
}
