//! Cache write policies.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The four cache write policies the paper assigns (Section III-C).
///
/// | Policy | Reads | Writes | Promotes read misses? |
/// |---|---|---|---|
/// | `WriteBack` | served by cache on hit | buffered in cache (dirty) | yes |
/// | `WriteThrough` | served by cache on hit | written to cache **and** disk | yes |
/// | `ReadOnly` | served by cache on hit | bypassed to disk (cached copy invalidated) | yes |
/// | `WriteOnly` | served by cache on hit | buffered in cache (dirty) | **no** |
///
/// LBICA's load balancer maps workload groups onto policies:
/// Group 1 (random read) → `WriteOnly`, Group 2 (mixed read/write) →
/// `ReadOnly`, Groups 3 and 4 → `WriteBack`.
///
/// ```
/// use lbica_cache::WritePolicy;
/// assert!(WritePolicy::WriteBack.buffers_writes());
/// assert!(!WritePolicy::ReadOnly.buffers_writes());
/// assert!(!WritePolicy::WriteOnly.promotes_read_misses());
/// assert_eq!("RO".parse::<WritePolicy>().unwrap(), WritePolicy::ReadOnly);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Write-back: reads and writes are cached; dirty data is written back
    /// lazily. The enterprise default and the paper's baseline policy.
    #[default]
    WriteBack,
    /// Write-through: writes go to both the cache and the disk subsystem
    /// synchronously; reads are cached. The policy SIB assumes.
    WriteThrough,
    /// Read-only: only reads are cached; writes bypass the cache entirely
    /// (and invalidate any cached copy).
    ReadOnly,
    /// Write-only: writes are buffered in the cache, reads are served on a
    /// hit, but read misses are *not* promoted.
    WriteOnly,
}

impl WritePolicy {
    /// All policies in a stable order.
    pub const ALL: [WritePolicy; 4] = [
        WritePolicy::WriteBack,
        WritePolicy::WriteThrough,
        WritePolicy::ReadOnly,
        WritePolicy::WriteOnly,
    ];

    /// Whether application writes are absorbed by the cache device.
    pub const fn buffers_writes(self) -> bool {
        matches!(self, WritePolicy::WriteBack | WritePolicy::WriteThrough | WritePolicy::WriteOnly)
    }

    /// Whether application writes additionally reach the disk subsystem
    /// synchronously.
    pub const fn writes_through(self) -> bool {
        matches!(self, WritePolicy::WriteThrough | WritePolicy::ReadOnly)
    }

    /// Whether buffered writes leave dirty blocks that must eventually be
    /// written back.
    pub const fn leaves_dirty_blocks(self) -> bool {
        matches!(self, WritePolicy::WriteBack | WritePolicy::WriteOnly)
    }

    /// Whether a read miss installs (promotes) the missed block in the
    /// cache.
    pub const fn promotes_read_misses(self) -> bool {
        matches!(self, WritePolicy::WriteBack | WritePolicy::WriteThrough | WritePolicy::ReadOnly)
    }

    /// The short label the paper uses (WB / WT / RO / WO).
    pub const fn label(self) -> &'static str {
        match self {
            WritePolicy::WriteBack => "WB",
            WritePolicy::WriteThrough => "WT",
            WritePolicy::ReadOnly => "RO",
            WritePolicy::WriteOnly => "WO",
        }
    }
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`WritePolicy`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown write policy `{}` (expected WB, WT, RO or WO)", self.0)
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for WritePolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "WB" | "WRITEBACK" | "WRITE-BACK" => Ok(WritePolicy::WriteBack),
            "WT" | "WRITETHROUGH" | "WRITE-THROUGH" => Ok(WritePolicy::WriteThrough),
            "RO" | "READONLY" | "READ-ONLY" => Ok(WritePolicy::ReadOnly),
            "WO" | "WRITEONLY" | "WRITE-ONLY" => Ok(WritePolicy::WriteOnly),
            other => Err(ParsePolicyError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_truth_table_matches_paper() {
        use WritePolicy::*;
        // buffers_writes, writes_through, dirty, promotes
        let expect = [
            (WriteBack, true, false, true, true),
            (WriteThrough, true, true, false, true),
            (ReadOnly, false, true, false, true),
            (WriteOnly, true, false, true, false),
        ];
        for (p, buf, through, dirty, promote) in expect {
            assert_eq!(p.buffers_writes(), buf, "{p} buffers_writes");
            assert_eq!(p.writes_through(), through, "{p} writes_through");
            assert_eq!(p.leaves_dirty_blocks(), dirty, "{p} leaves_dirty_blocks");
            assert_eq!(p.promotes_read_misses(), promote, "{p} promotes_read_misses");
        }
    }

    #[test]
    fn labels_and_default() {
        assert_eq!(WritePolicy::default(), WritePolicy::WriteBack);
        let labels: Vec<&str> = WritePolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["WB", "WT", "RO", "WO"]);
    }

    #[test]
    fn parse_round_trips_all_labels() {
        for p in WritePolicy::ALL {
            assert_eq!(p.label().parse::<WritePolicy>().unwrap(), p);
            assert_eq!(p.to_string().parse::<WritePolicy>().unwrap(), p);
        }
        assert_eq!("write-back".parse::<WritePolicy>().unwrap(), WritePolicy::WriteBack);
        assert!("XX".parse::<WritePolicy>().is_err());
        let err = "XX".parse::<WritePolicy>().unwrap_err();
        assert!(err.to_string().contains("XX"));
    }
}
