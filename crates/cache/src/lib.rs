//! An EnhanceIO-like SSD block cache with runtime-switchable write policies.
//!
//! The paper implements its I/O cache with the EnhanceIO kernel module: a
//! *datapath* cache through which every application request passes. The
//! cache decides, per request, which derived operations hit the SSD (the
//! cache device) and which hit the HDD (the disk subsystem), and the mix of
//! those derived operations — application **R**ead / **W**rite plus cache
//! **P**romote / **E**vict — is exactly what LBICA's workload characterizer
//! observes in the SSD queue.
//!
//! This crate provides:
//!
//! * [`WritePolicy`] — the four policies the paper switches between:
//!   write-back (WB), write-through (WT), read-only (RO) and write-only (WO);
//! * [`SetAssociativeMap`] — the block-to-cache-slot mapping with LRU or
//!   FIFO replacement and dirty-bit tracking;
//! * [`CacheModule`] — the datapath cache itself: feed it an application
//!   [`lbica_storage::request::IoRequest`] and it returns a [`CacheOutcome`]
//!   listing the derived device operations, honouring whichever policy is
//!   currently assigned;
//! * [`CacheStats`] — hit/miss/promote/evict accounting.
//!
//! # Example
//!
//! ```
//! use lbica_cache::{CacheConfig, CacheModule, WritePolicy};
//! use lbica_storage::request::{IoRequest, RequestKind, RequestOrigin};
//!
//! let mut cache = CacheModule::new(CacheConfig::small_test());
//! let read = IoRequest::new(1, RequestKind::Read, RequestOrigin::Application, 0, 8);
//! let miss = cache.access(&read);
//! assert!(!miss.read_hit());
//! // A write-back cache promotes the missed data into the SSD.
//! assert!(miss.ssd_ops().iter().any(|op| op.origin == RequestOrigin::Promote));
//!
//! cache.set_policy(WritePolicy::WriteOnly);
//! let read2 = IoRequest::new(2, RequestKind::Read, RequestOrigin::Application, 512, 8);
//! let miss2 = cache.access(&read2);
//! // Under WO, read misses are *not* promoted — that is how LBICA sheds load.
//! assert!(miss2.ssd_ops().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flusher;
pub mod module;
pub mod outcome;
pub mod policy;
pub mod replacement;
pub mod set_assoc;
pub mod stats;

pub use flusher::{FlushPolicy, Flusher};
pub use module::{CacheConfig, CacheModule};
pub use outcome::{CacheOutcome, DerivedOp, TargetDevice};
pub use policy::WritePolicy;
pub use replacement::ReplacementKind;
pub use set_assoc::{InsertOutcome, SetAssociativeMap, SlotState};
pub use stats::CacheStats;
