//! The datapath cache module.

use serde::{Deserialize, Serialize};

use lbica_storage::block::{BlockRange, Lba, BLOCK_SECTORS};
use lbica_storage::request::{IoRequest, RequestKind, RequestOrigin};
use lbica_storage::snap::{SnapError, SnapReader, SnapWriter};

use crate::outcome::{CacheOutcome, DerivedOp, TargetDevice};
use crate::policy::WritePolicy;
use crate::replacement::ReplacementKind;
use crate::set_assoc::{InsertOutcome, SetAssociativeMap, SlotState};
use crate::stats::CacheStats;

/// Configuration of a [`CacheModule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets in the set-associative map.
    pub num_sets: usize,
    /// Ways per set.
    pub associativity: usize,
    /// Victim-selection policy within a set.
    pub replacement: ReplacementKind,
    /// The write policy the cache starts with (the paper starts every
    /// experiment in write-back).
    pub initial_policy: WritePolicy,
}

impl CacheConfig {
    /// A cache sized like the paper's testbed relative to the workload
    /// footprint: large enough that random-read working sets mostly fit.
    pub const fn enterprise() -> Self {
        CacheConfig {
            num_sets: 8_192,
            associativity: 16,
            replacement: ReplacementKind::Lru,
            initial_policy: WritePolicy::WriteBack,
        }
    }

    /// A tiny cache for unit tests (8 sets × 2 ways = 16 blocks).
    pub const fn small_test() -> Self {
        CacheConfig {
            num_sets: 8,
            associativity: 2,
            replacement: ReplacementKind::Lru,
            initial_policy: WritePolicy::WriteBack,
        }
    }

    /// Total capacity in cache blocks.
    pub const fn capacity_blocks(&self) -> usize {
        self.num_sets * self.associativity
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::enterprise()
    }
}

/// An EnhanceIO-like datapath SSD cache.
///
/// Every application request is pushed through [`CacheModule::access`],
/// which consults the block map and the current [`WritePolicy`] and returns
/// the derived SSD/HDD operations. The controller (LBICA, SIB or the WB
/// baseline) may change the policy at any interval boundary via
/// [`CacheModule::set_policy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheModule {
    config: CacheConfig,
    map: SetAssociativeMap,
    policy: WritePolicy,
    stats: CacheStats,
    /// Reused victim buffer for `flush_dirty`; always left empty between
    /// calls, so it never affects equality or serialization semantics.
    #[serde(skip)]
    flush_scratch: Vec<u64>,
}

impl CacheModule {
    /// Creates a cache module from a configuration.
    pub fn new(config: CacheConfig) -> Self {
        CacheModule {
            map: SetAssociativeMap::new(config.num_sets, config.associativity, config.replacement),
            policy: config.initial_policy,
            config,
            stats: CacheStats::default(),
            flush_scratch: Vec::new(),
        }
    }

    /// The configuration this module was built from.
    pub const fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The currently assigned write policy.
    pub const fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// Assigns a new write policy. Takes effect for subsequent accesses;
    /// already-dirty blocks remain dirty and are still flushed/evicted
    /// correctly under the new policy.
    pub fn set_policy(&mut self, policy: WritePolicy) {
        self.policy = policy;
    }

    /// Cumulative statistics.
    pub const fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of dirty blocks currently held.
    pub fn dirty_blocks(&self) -> usize {
        self.map.dirty_blocks()
    }

    /// Number of blocks currently cached.
    pub fn cached_blocks(&self) -> usize {
        self.map.len()
    }

    /// Total block capacity.
    pub fn capacity_blocks(&self) -> usize {
        self.map.capacity_blocks()
    }

    fn block_range(block: u64) -> BlockRange {
        BlockRange::new(Lba::new(block * BLOCK_SECTORS), BLOCK_SECTORS)
    }

    /// Pushes one application request through the cache and returns the
    /// derived device operations under the current policy.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `request` does not originate from the
    /// application; promotes/evictions are generated internally and must not
    /// be re-submitted.
    pub fn access(&mut self, request: &IoRequest) -> CacheOutcome {
        let mut outcome = CacheOutcome::new();
        self.access_into(request, &mut outcome);
        outcome
    }

    /// [`CacheModule::access`] into a caller-owned outcome, clearing it
    /// first. The simulator's event loop reuses one outcome buffer across
    /// accesses, so the hot path performs no per-request allocation.
    pub fn access_into(&mut self, request: &IoRequest, outcome: &mut CacheOutcome) {
        debug_assert_eq!(
            request.origin(),
            RequestOrigin::Application,
            "only application requests enter the cache module"
        );
        outcome.clear();
        let mut any_miss = false;
        let mut any_hit = false;

        for block in request.range().block_indices() {
            match request.kind() {
                RequestKind::Read => {
                    if self.handle_read_block(block, outcome) {
                        any_hit = true;
                    } else {
                        any_miss = true;
                    }
                }
                RequestKind::Write => {
                    if self.handle_write_block(block, outcome) {
                        any_hit = true;
                    } else {
                        any_miss = true;
                    }
                }
            }
        }

        match request.kind() {
            RequestKind::Read => outcome.set_read_hit(any_hit && !any_miss),
            RequestKind::Write => outcome.set_write_hit(any_hit && !any_miss),
        }
        // The application-visible latency is governed by the cache device
        // whenever no disk-subsystem operation carries application data.
        let disk_in_datapath = outcome
            .ops()
            .iter()
            .any(|op| op.target == TargetDevice::Hdd && op.origin == RequestOrigin::Application);
        outcome.set_served_by_cache(!disk_in_datapath);
    }

    /// Handles one block of an application read. Returns `true` on hit.
    fn handle_read_block(&mut self, block: u64, outcome: &mut CacheOutcome) -> bool {
        let range = Self::block_range(block);
        if self.map.touch(block) {
            self.stats.read_hits += 1;
            outcome.push(DerivedOp::new(
                TargetDevice::Ssd,
                RequestKind::Read,
                RequestOrigin::Application,
                range,
            ));
            return true;
        }

        // Miss: the disk subsystem supplies the data...
        self.stats.read_misses += 1;
        outcome.push(DerivedOp::new(
            TargetDevice::Hdd,
            RequestKind::Read,
            RequestOrigin::Application,
            range,
        ));

        // ...and, policy permitting, the block is promoted into the cache.
        if self.policy.promotes_read_misses() {
            self.promote_block(block, outcome);
        } else {
            self.stats.unpromoted_read_misses += 1;
        }
        false
    }

    /// Handles one block of an application write. Returns `true` when the
    /// write is absorbed by the cache.
    fn handle_write_block(&mut self, block: u64, outcome: &mut CacheOutcome) -> bool {
        let range = Self::block_range(block);

        if !self.policy.buffers_writes() {
            // Read-only cache: the write bypasses to the disk subsystem and
            // any cached copy becomes stale.
            self.stats.write_bypasses += 1;
            self.stats.write_misses += 1;
            if self.map.invalidate(block).is_some() {
                self.stats.invalidations += 1;
            }
            outcome.push(DerivedOp::new(
                TargetDevice::Hdd,
                RequestKind::Write,
                RequestOrigin::Application,
                range,
            ));
            return false;
        }

        // Write is absorbed by the cache (WB, WT or WO): write-allocate.
        let was_cached = self.map.contains(block);
        if was_cached {
            self.stats.write_hits += 1;
        } else {
            self.stats.write_misses += 1;
        }

        let state =
            if self.policy.leaves_dirty_blocks() { SlotState::Dirty } else { SlotState::Clean };
        let insert = self.map.insert(block, state);
        if self.policy.leaves_dirty_blocks() && was_cached {
            self.map.mark_dirty(block);
        }
        self.emit_eviction(insert, outcome);

        outcome.push(DerivedOp::new(
            TargetDevice::Ssd,
            RequestKind::Write,
            RequestOrigin::Application,
            range,
        ));

        if self.policy.writes_through() {
            outcome.push(DerivedOp::new(
                TargetDevice::Hdd,
                RequestKind::Write,
                RequestOrigin::Application,
                range,
            ));
        }
        true
    }

    /// Installs a missed block in the cache, emitting the promote write and
    /// any eviction it causes.
    fn promote_block(&mut self, block: u64, outcome: &mut CacheOutcome) {
        let insert = self.map.insert(block, SlotState::Clean);
        self.emit_eviction(insert, outcome);
        self.stats.promotes += 1;
        outcome.push(DerivedOp::new(
            TargetDevice::Ssd,
            RequestKind::Write,
            RequestOrigin::Promote,
            Self::block_range(block),
        ));
    }

    /// Emits the derived operations for an eviction, if the insert caused
    /// one.
    fn emit_eviction(&mut self, insert: InsertOutcome, outcome: &mut CacheOutcome) {
        match insert {
            InsertOutcome::EvictedDirty { victim } => {
                self.stats.dirty_evictions += 1;
                let range = Self::block_range(victim);
                // Reading the victim off the SSD and writing it to the disk
                // subsystem: both legs carry the Evict class, matching the
                // E operations the paper shows in both queues (Fig. 1).
                outcome.push(DerivedOp::new(
                    TargetDevice::Ssd,
                    RequestKind::Read,
                    RequestOrigin::Evict,
                    range,
                ));
                outcome.push(DerivedOp::new(
                    TargetDevice::Hdd,
                    RequestKind::Write,
                    RequestOrigin::Evict,
                    range,
                ));
            }
            InsertOutcome::EvictedClean { .. } => {
                self.stats.clean_evictions += 1;
            }
            InsertOutcome::Inserted | InsertOutcome::AlreadyPresent => {}
        }
    }

    /// Flushes up to `max_blocks` dirty blocks, returning the derived
    /// operations (an SSD read and an HDD write per block). The blocks are
    /// marked clean immediately; callers queue the returned operations.
    pub fn flush_dirty(&mut self, max_blocks: usize) -> Vec<DerivedOp> {
        let mut victims = std::mem::take(&mut self.flush_scratch);
        self.map.dirty_candidates_into(max_blocks, &mut victims);
        let mut ops = Vec::with_capacity(victims.len() * 2);
        for &block in &victims {
            self.map.mark_clean(block);
            self.stats.flushes += 1;
            let range = Self::block_range(block);
            ops.push(DerivedOp::new(
                TargetDevice::Ssd,
                RequestKind::Read,
                RequestOrigin::Flush,
                range,
            ));
            ops.push(DerivedOp::new(
                TargetDevice::Hdd,
                RequestKind::Write,
                RequestOrigin::Flush,
                range,
            ));
        }
        victims.clear();
        self.flush_scratch = victims;
        ops
    }

    /// Invalidates a single cached block (e.g. because a controller bypassed
    /// the write that would have updated it to the disk subsystem), returning
    /// its previous state if it was cached.
    pub fn invalidate_block(&mut self, block: u64) -> Option<SlotState> {
        let state = self.map.invalidate(block);
        if state.is_some() {
            self.stats.invalidations += 1;
        }
        state
    }

    /// Pre-populates the cache with clean copies of the given blocks without
    /// touching the statistics — used to skip the warm-up interval, which the
    /// paper explicitly assumes has already passed.
    pub fn prewarm<I: IntoIterator<Item = u64>>(&mut self, blocks: I) {
        for block in blocks {
            let _ = self.map.insert(block, SlotState::Clean);
        }
    }

    /// Pre-populates the cache to full capacity with the clean blocks
    /// `0..capacity_blocks()` — equivalent to `prewarm(0..capacity)` but via
    /// the map's sequential fast fill, skipping the per-insert tag scans.
    pub fn prewarm_full(&mut self) {
        self.map.fill_sequential(0);
    }

    /// Drops every cached block without writing anything back. Only for
    /// tests and warm-up resets.
    pub fn clear(&mut self) {
        self.map.reset();
    }

    /// Restores the module to its freshly constructed state: map emptied in
    /// place (the slot arenas keep their allocations), statistics zeroed and
    /// the policy back to the configured initial policy. Observationally
    /// equivalent to `CacheModule::new(*self.config())` — the arena-reuse
    /// fast path.
    pub fn reset(&mut self) {
        self.map.reset();
        self.policy = self.config.initial_policy;
        self.stats = CacheStats::default();
    }

    /// Serializes the module — map contents, active policy, statistics —
    /// for a replay checkpoint. The configuration is rebuilt from the
    /// simulation config on resume, not stored (`flush_scratch` is always
    /// empty between calls and carries no state).
    pub fn snap_to(&self, w: &mut SnapWriter) {
        self.map.snap_to(w);
        w.put_u8(match self.policy {
            WritePolicy::WriteBack => 0,
            WritePolicy::WriteThrough => 1,
            WritePolicy::ReadOnly => 2,
            WritePolicy::WriteOnly => 3,
        });
        self.stats.snap_to(w);
    }

    /// Restores state serialized by [`CacheModule::snap_to`] into a module
    /// already built with the original configuration.
    pub fn snap_state_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let map = SetAssociativeMap::snap_from(r)?;
        if map.capacity_blocks() != self.config.capacity_blocks() {
            return Err(SnapError::Corrupt("cache geometry mismatch"));
        }
        self.map = map;
        self.policy = match r.get_u8()? {
            0 => WritePolicy::WriteBack,
            1 => WritePolicy::WriteThrough,
            2 => WritePolicy::ReadOnly,
            3 => WritePolicy::WriteOnly,
            _ => return Err(SnapError::Corrupt("write policy tag")),
        };
        self.stats = CacheStats::snap_from(r)?;
        Ok(())
    }
}

impl Default for CacheModule {
    fn default() -> Self {
        CacheModule::new(CacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbica_storage::request::RequestClass;

    fn read(id: u64, sector: u64) -> IoRequest {
        IoRequest::new(id, RequestKind::Read, RequestOrigin::Application, sector, 8)
    }

    fn write(id: u64, sector: u64) -> IoRequest {
        IoRequest::new(id, RequestKind::Write, RequestOrigin::Application, sector, 8)
    }

    fn module() -> CacheModule {
        CacheModule::new(CacheConfig::small_test())
    }

    #[test]
    fn wb_read_miss_promotes_then_hits() {
        let mut cache = module();
        let miss = cache.access(&read(1, 0));
        assert!(!miss.read_hit());
        assert_eq!(miss.hdd_ops().len(), 1);
        assert_eq!(miss.ssd_ops().len(), 1);
        assert_eq!(miss.ssd_ops()[0].class(), RequestClass::Promote);

        let hit = cache.access(&read(2, 0));
        assert!(hit.read_hit());
        assert!(hit.served_by_cache());
        assert_eq!(hit.hdd_ops().len(), 0);
        assert_eq!(cache.stats().read_hits, 1);
        assert_eq!(cache.stats().read_misses, 1);
        assert_eq!(cache.stats().promotes, 1);
    }

    #[test]
    fn wb_write_is_absorbed_and_dirty() {
        let mut cache = module();
        let out = cache.access(&write(1, 0));
        assert!(out.write_hit() || cache.stats().write_misses == 1);
        assert!(out.served_by_cache());
        assert_eq!(out.hdd_ops().len(), 0);
        assert_eq!(cache.dirty_blocks(), 1);
    }

    #[test]
    fn wt_write_goes_to_both_devices_and_stays_clean() {
        let mut cache = module();
        cache.set_policy(WritePolicy::WriteThrough);
        let out = cache.access(&write(1, 0));
        assert_eq!(out.ssd_ops().len(), 1);
        assert_eq!(out.hdd_ops().len(), 1);
        assert!(!out.served_by_cache(), "WT completion waits for the disk subsystem");
        assert_eq!(cache.dirty_blocks(), 0);
    }

    #[test]
    fn ro_write_bypasses_and_invalidates() {
        let mut cache = module();
        // Warm a block under WB, then switch to RO and overwrite it.
        cache.access(&read(1, 0));
        cache.set_policy(WritePolicy::ReadOnly);
        let out = cache.access(&write(2, 0));
        assert!(out.ssd_ops().is_empty());
        assert_eq!(out.hdd_ops().len(), 1);
        assert_eq!(cache.stats().write_bypasses, 1);
        assert_eq!(cache.stats().invalidations, 1);
        // The stale copy is gone: the next read misses.
        cache.set_policy(WritePolicy::WriteBack);
        let reread = cache.access(&read(3, 0));
        assert!(!reread.read_hit());
    }

    #[test]
    fn wo_read_miss_is_not_promoted_but_hits_still_serve() {
        let mut cache = module();
        // Buffer a write so block 0 is cached, then switch to WO.
        cache.access(&write(1, 0));
        cache.set_policy(WritePolicy::WriteOnly);
        let hit = cache.access(&read(2, 0));
        assert!(hit.read_hit());
        let miss = cache.access(&read(3, 512));
        assert!(!miss.read_hit());
        assert!(miss.ssd_ops().is_empty(), "no promote under WO");
        assert_eq!(cache.stats().unpromoted_read_misses, 1);
    }

    #[test]
    fn dirty_eviction_emits_ssd_read_and_hdd_write() {
        let mut cache = CacheModule::new(CacheConfig {
            num_sets: 1,
            associativity: 2,
            replacement: ReplacementKind::Lru,
            initial_policy: WritePolicy::WriteBack,
        });
        cache.access(&write(1, 0)); // block 0, dirty
        cache.access(&write(2, 8)); // block 1, dirty
        let out = cache.access(&write(3, 16)); // evicts block 0
        let evict_ops: Vec<_> =
            out.ops().iter().filter(|op| op.class() == RequestClass::Evict).collect();
        assert_eq!(evict_ops.len(), 2);
        assert!(evict_ops.iter().any(|op| op.target == TargetDevice::Ssd));
        assert!(evict_ops.iter().any(|op| op.target == TargetDevice::Hdd));
        assert_eq!(cache.stats().dirty_evictions, 1);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut cache = CacheModule::new(CacheConfig {
            num_sets: 1,
            associativity: 1,
            replacement: ReplacementKind::Lru,
            initial_policy: WritePolicy::WriteBack,
        });
        cache.access(&read(1, 0));
        let out = cache.access(&read(2, 8)); // evicts clean block 0
        assert!(out.ops().iter().all(|op| op.class() != RequestClass::Evict));
        assert_eq!(cache.stats().clean_evictions, 1);
    }

    #[test]
    fn multi_block_request_touches_every_block() {
        let mut cache = module();
        let big = IoRequest::new(1, RequestKind::Read, RequestOrigin::Application, 0, 32);
        let out = cache.access(&big);
        // 4 blocks missed: 4 HDD reads + 4 promotes.
        assert_eq!(out.hdd_ops().len(), 4);
        assert_eq!(out.ssd_ops().len(), 4);
        assert_eq!(cache.stats().read_misses, 4);
    }

    #[test]
    fn flush_dirty_cleans_blocks_and_emits_ops() {
        let mut cache = module();
        cache.access(&write(1, 0));
        cache.access(&write(2, 8));
        assert_eq!(cache.dirty_blocks(), 2);
        let ops = cache.flush_dirty(10);
        assert_eq!(ops.len(), 4); // SSD read + HDD write per block
        assert_eq!(cache.dirty_blocks(), 0);
        assert_eq!(cache.stats().flushes, 2);
        assert!(cache.flush_dirty(10).is_empty());
    }

    #[test]
    fn invalidate_block_removes_cached_copy() {
        let mut cache = module();
        cache.access(&write(1, 0));
        assert_eq!(cache.invalidate_block(0), Some(SlotState::Dirty));
        assert_eq!(cache.invalidate_block(0), None);
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.dirty_blocks(), 0);
    }

    #[test]
    fn prewarm_installs_clean_blocks_without_stats() {
        let mut cache = module();
        cache.prewarm(0..8);
        assert_eq!(cache.cached_blocks(), 8);
        assert_eq!(cache.dirty_blocks(), 0);
        assert_eq!(cache.stats().reads() + cache.stats().writes(), 0);
        // A prewarmed block hits immediately.
        assert!(cache.access(&read(1, 0)).read_hit());
    }

    #[test]
    fn policy_switch_keeps_existing_dirty_blocks() {
        let mut cache = module();
        cache.access(&write(1, 0));
        assert_eq!(cache.dirty_blocks(), 1);
        cache.set_policy(WritePolicy::ReadOnly);
        assert_eq!(cache.dirty_blocks(), 1, "dirty data survives a policy switch");
        assert_eq!(cache.policy(), WritePolicy::ReadOnly);
    }

    #[test]
    fn clear_resets_contents_but_not_stats() {
        let mut cache = module();
        cache.access(&write(1, 0));
        cache.clear();
        assert_eq!(cache.cached_blocks(), 0);
        assert_eq!(cache.stats().writes(), 1);
        assert_eq!(cache.capacity_blocks(), CacheConfig::small_test().capacity_blocks());
    }

    #[test]
    fn reset_is_equivalent_to_fresh_construction() {
        let mut cache = module();
        cache.access(&write(1, 0));
        cache.access(&read(2, 64));
        cache.set_policy(WritePolicy::ReadOnly);
        cache.reset();
        assert_eq!(cache, CacheModule::new(CacheConfig::small_test()));
        assert_eq!(cache.policy(), WritePolicy::WriteBack);
        assert_eq!(cache.stats().reads() + cache.stats().writes(), 0);
    }

    #[test]
    fn snap_round_trip_restores_map_policy_and_stats() {
        let mut cache = module();
        cache.access(&write(1, 0));
        cache.access(&read(2, 64));
        cache.access(&read(3, 64));
        cache.set_policy(WritePolicy::WriteOnly);

        let mut w = lbica_storage::snap::SnapWriter::new();
        cache.snap_to(&mut w);
        let bytes = w.into_bytes();

        let mut restored = CacheModule::new(CacheConfig::small_test());
        let mut r = lbica_storage::snap::SnapReader::new(&bytes);
        restored.snap_state_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, cache);

        // The restored module keeps behaving identically.
        let probe = read(4, 64);
        assert_eq!(restored.access(&probe), cache.access(&probe));
        assert_eq!(restored, cache);
    }

    #[test]
    fn snap_state_from_rejects_geometry_mismatch() {
        let cache = module();
        let mut w = lbica_storage::snap::SnapWriter::new();
        cache.snap_to(&mut w);
        let bytes = w.into_bytes();

        let mut bigger = CacheModule::new(CacheConfig {
            num_sets: 16,
            associativity: 2,
            replacement: ReplacementKind::Lru,
            initial_policy: WritePolicy::WriteBack,
        });
        let mut r = lbica_storage::snap::SnapReader::new(&bytes);
        assert_eq!(
            bigger.snap_state_from(&mut r),
            Err(lbica_storage::snap::SnapError::Corrupt("cache geometry mismatch"))
        );
    }

    #[test]
    fn prewarm_full_matches_naive_prewarm() {
        let mut fast = module();
        fast.prewarm_full();
        let mut naive = module();
        naive.prewarm(0..naive.capacity_blocks() as u64);
        assert_eq!(fast, naive);
    }
}
