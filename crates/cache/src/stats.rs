//! Cache statistics.

use lbica_storage::snap::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// Cumulative counters maintained by a [`crate::CacheModule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Application reads that hit the cache.
    pub read_hits: u64,
    /// Application reads that missed.
    pub read_misses: u64,
    /// Application writes absorbed by the cache (hit or allocate).
    pub write_hits: u64,
    /// Application writes that missed and were allocated or bypassed.
    pub write_misses: u64,
    /// Promote operations generated (missed read data installed in the cache).
    pub promotes: u64,
    /// Dirty evictions written back to the disk subsystem.
    pub dirty_evictions: u64,
    /// Clean evictions (victim dropped without I/O).
    pub clean_evictions: u64,
    /// Application writes bypassed directly to the disk subsystem
    /// (read-only policy).
    pub write_bypasses: u64,
    /// Read misses that were *not* promoted (write-only policy).
    pub unpromoted_read_misses: u64,
    /// Cached blocks invalidated because a bypassed write made them stale.
    pub invalidations: u64,
    /// Dirty blocks flushed by the background flusher.
    pub flushes: u64,
}

impl CacheStats {
    /// Total application read accesses observed.
    pub fn reads(&self) -> u64 {
        self.read_hits + self.read_misses
    }

    /// Total application write accesses observed.
    pub fn writes(&self) -> u64 {
        self.write_hits + self.write_misses
    }

    /// Read hit ratio in `[0, 1]`; zero when no reads were observed.
    pub fn read_hit_ratio(&self) -> f64 {
        if self.reads() == 0 {
            0.0
        } else {
            self.read_hits as f64 / self.reads() as f64
        }
    }

    /// Overall hit ratio (reads and cache-absorbed writes) in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.reads() + self.writes();
        if total == 0 {
            0.0
        } else {
            (self.read_hits + self.write_hits) as f64 / total as f64
        }
    }

    /// Total evictions of either kind.
    pub fn evictions(&self) -> u64 {
        self.dirty_evictions + self.clean_evictions
    }

    /// Serializes the counters for a replay checkpoint.
    pub fn snap_to(&self, w: &mut SnapWriter) {
        for v in [
            self.read_hits,
            self.read_misses,
            self.write_hits,
            self.write_misses,
            self.promotes,
            self.dirty_evictions,
            self.clean_evictions,
            self.write_bypasses,
            self.unpromoted_read_misses,
            self.invalidations,
            self.flushes,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores counters serialized by [`CacheStats::snap_to`].
    pub fn snap_from(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CacheStats {
            read_hits: r.get_u64()?,
            read_misses: r.get_u64()?,
            write_hits: r.get_u64()?,
            write_misses: r.get_u64()?,
            promotes: r.get_u64()?,
            dirty_evictions: r.get_u64()?,
            clean_evictions: r.get_u64()?,
            write_bypasses: r.get_u64()?,
            unpromoted_read_misses: r.get_u64()?,
            invalidations: r.get_u64()?,
            flushes: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_and_nonempty() {
        let empty = CacheStats::default();
        assert_eq!(empty.read_hit_ratio(), 0.0);
        assert_eq!(empty.hit_ratio(), 0.0);

        let s = CacheStats {
            read_hits: 3,
            read_misses: 1,
            write_hits: 4,
            write_misses: 2,
            ..CacheStats::default()
        };
        assert!((s.read_hit_ratio() - 0.75).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(s.reads(), 4);
        assert_eq!(s.writes(), 6);
    }

    #[test]
    fn evictions_sum_both_kinds() {
        let s = CacheStats { dirty_evictions: 2, clean_evictions: 5, ..CacheStats::default() };
        assert_eq!(s.evictions(), 7);
    }
}
