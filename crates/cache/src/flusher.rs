//! Watermark-based background flushing of dirty blocks.
//!
//! A write-back cache accumulates dirty blocks; EnhanceIO (and every
//! production cache) drains them in the background so that future
//! evictions find clean victims and a crash does not strand too much dirty
//! data. [`FlushPolicy`] decides *how many* blocks to flush given the
//! current dirty occupancy and how busy the cache device is — staying out
//! of the way during the bursts LBICA cares about, and catching up during
//! calm intervals.

use serde::{Deserialize, Serialize};

use crate::module::CacheModule;
use crate::outcome::DerivedOp;

/// Configuration of the background flusher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlushPolicy {
    /// Dirty fraction (0–1) below which the flusher stays idle.
    pub low_watermark: f64,
    /// Dirty fraction above which the flusher drains aggressively even if
    /// the device is busy.
    pub high_watermark: f64,
    /// Maximum number of blocks flushed per invocation when between the
    /// watermarks.
    pub batch_blocks: usize,
    /// Maximum number of blocks flushed per invocation above the high
    /// watermark.
    pub urgent_batch_blocks: usize,
    /// Cache-device queue depth above which the flusher backs off entirely
    /// (unless above the high watermark).
    pub busy_queue_depth: usize,
}

impl FlushPolicy {
    /// The defaults used by the reproduction: flush lazily below 25 % dirty,
    /// urgently above 75 %.
    pub const fn new() -> Self {
        FlushPolicy {
            low_watermark: 0.25,
            high_watermark: 0.75,
            batch_blocks: 32,
            urgent_batch_blocks: 256,
            busy_queue_depth: 8,
        }
    }

    /// How many dirty blocks to flush right now.
    ///
    /// `dirty_fraction` is the dirty share of the cache's capacity and
    /// `cache_queue_depth` the current depth of the cache device queue.
    pub fn blocks_to_flush(&self, dirty_fraction: f64, cache_queue_depth: usize) -> usize {
        if dirty_fraction >= self.high_watermark {
            return self.urgent_batch_blocks;
        }
        if dirty_fraction < self.low_watermark {
            return 0;
        }
        if cache_queue_depth > self.busy_queue_depth {
            // The cache is under pressure; background flushing would add to
            // exactly the load LBICA is trying to shed.
            return 0;
        }
        self.batch_blocks
    }
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy::new()
    }
}

/// Drives a [`CacheModule`]'s dirty-block flushing according to a
/// [`FlushPolicy`].
///
/// ```
/// use lbica_cache::{CacheConfig, CacheModule};
/// use lbica_cache::flusher::{FlushPolicy, Flusher};
/// use lbica_storage::request::{IoRequest, RequestKind, RequestOrigin};
///
/// let mut cache = CacheModule::new(CacheConfig::small_test());
/// for i in 0..16u64 {
///     let w = IoRequest::new(i, RequestKind::Write, RequestOrigin::Application, i * 8, 8);
///     cache.access(&w);
/// }
/// let mut flusher = Flusher::new(FlushPolicy::new());
/// // The cache is 100% dirty: the flusher drains urgently.
/// let ops = flusher.maybe_flush(&mut cache, 0);
/// assert!(!ops.is_empty());
/// assert_eq!(cache.dirty_blocks(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flusher {
    policy: FlushPolicy,
    invocations: u64,
    flushed_blocks: u64,
}

impl Flusher {
    /// Creates a flusher with the given policy.
    pub fn new(policy: FlushPolicy) -> Self {
        Flusher { policy, invocations: 0, flushed_blocks: 0 }
    }

    /// The policy in use.
    pub const fn policy(&self) -> &FlushPolicy {
        &self.policy
    }

    /// Total blocks flushed so far.
    pub const fn flushed_blocks(&self) -> u64 {
        self.flushed_blocks
    }

    /// Number of times the flusher was consulted.
    pub const fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Consults the policy and, if warranted, flushes dirty blocks from the
    /// cache. Returns the derived device operations (an SSD read plus a
    /// disk write per flushed block) for the caller to enqueue.
    pub fn maybe_flush(
        &mut self,
        cache: &mut CacheModule,
        cache_queue_depth: usize,
    ) -> Vec<DerivedOp> {
        self.invocations += 1;
        let capacity = cache.capacity_blocks().max(1);
        let dirty_fraction = cache.dirty_blocks() as f64 / capacity as f64;
        let batch = self.policy.blocks_to_flush(dirty_fraction, cache_queue_depth);
        if batch == 0 {
            return Vec::new();
        }
        let ops = cache.flush_dirty(batch);
        self.flushed_blocks += (ops.len() / 2) as u64;
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::CacheConfig;
    use lbica_storage::request::{IoRequest, RequestKind, RequestOrigin};

    fn dirty_cache(blocks: u64) -> CacheModule {
        let mut cache = CacheModule::new(CacheConfig::small_test()); // 16 blocks
        for i in 0..blocks {
            let w = IoRequest::new(i, RequestKind::Write, RequestOrigin::Application, i * 8, 8);
            cache.access(&w);
        }
        cache
    }

    #[test]
    fn below_low_watermark_nothing_is_flushed() {
        let policy = FlushPolicy::new();
        assert_eq!(policy.blocks_to_flush(0.1, 0), 0);
        let mut flusher = Flusher::new(policy);
        let mut cache = dirty_cache(2); // 2/16 = 12.5% dirty
        assert!(flusher.maybe_flush(&mut cache, 0).is_empty());
        assert_eq!(cache.dirty_blocks(), 2);
        assert_eq!(flusher.invocations(), 1);
    }

    #[test]
    fn between_watermarks_flushes_a_batch_when_idle() {
        let mut flusher = Flusher::new(FlushPolicy { batch_blocks: 3, ..FlushPolicy::new() });
        let mut cache = dirty_cache(8); // 50% dirty
        let ops = flusher.maybe_flush(&mut cache, 0);
        assert_eq!(ops.len(), 6); // 3 blocks x (SSD read + disk write)
        assert_eq!(cache.dirty_blocks(), 5);
        assert_eq!(flusher.flushed_blocks(), 3);
    }

    #[test]
    fn between_watermarks_backs_off_when_the_cache_is_busy() {
        let mut flusher = Flusher::new(FlushPolicy::new());
        let mut cache = dirty_cache(8);
        let ops = flusher.maybe_flush(&mut cache, 100);
        assert!(ops.is_empty(), "flusher must yield to foreground burst traffic");
        assert_eq!(cache.dirty_blocks(), 8);
    }

    #[test]
    fn above_high_watermark_flushes_even_when_busy() {
        let mut flusher = Flusher::new(FlushPolicy::new());
        let mut cache = dirty_cache(16); // 100% dirty
        let ops = flusher.maybe_flush(&mut cache, 100);
        assert!(!ops.is_empty());
        assert_eq!(cache.dirty_blocks(), 0);
    }

    #[test]
    fn policy_thresholds_are_respected_exactly() {
        let p = FlushPolicy::new();
        assert_eq!(p.blocks_to_flush(0.75, 0), p.urgent_batch_blocks);
        assert_eq!(p.blocks_to_flush(0.74, 0), p.batch_blocks);
        assert_eq!(p.blocks_to_flush(0.24, 0), 0);
        assert_eq!(p.blocks_to_flush(0.5, 9), 0);
        assert_eq!(p.blocks_to_flush(0.5, 8), p.batch_blocks);
    }
}
