//! The result of pushing an application request through the cache module.

use serde::{Deserialize, Serialize};

use lbica_storage::block::BlockRange;
use lbica_storage::request::{RequestClass, RequestKind, RequestOrigin};

/// Which physical device a derived operation is destined for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetDevice {
    /// The SSD acting as the I/O cache.
    Ssd,
    /// The HDD disk subsystem.
    Hdd,
}

/// One device-level operation derived from an application request by the
/// cache module (e.g. a promote write on the SSD, or the disk read that
/// services a miss).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DerivedOp {
    /// Device the operation must be queued at.
    pub target: TargetDevice,
    /// Transfer direction on that device.
    pub kind: RequestKind,
    /// Origin (application / promote / evict / flush) — determines the
    /// R/W/P/E class seen by the monitors.
    pub origin: RequestOrigin,
    /// Sector range of the operation.
    pub range: BlockRange,
}

impl DerivedOp {
    /// Creates a derived operation.
    pub fn new(
        target: TargetDevice,
        kind: RequestKind,
        origin: RequestOrigin,
        range: BlockRange,
    ) -> Self {
        DerivedOp { target, kind, origin, range }
    }

    /// The paper's R/W/P/E class of the operation.
    pub fn class(&self) -> RequestClass {
        RequestClass::classify(self.kind, self.origin)
    }
}

/// Everything the cache decided for one application request.
///
/// The simulator turns each [`DerivedOp`] into an [`lbica_storage::IoRequest`]
/// and enqueues it at the right device; the `read_hit` / `write_hit` flags
/// feed the cache statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheOutcome {
    ops: Vec<DerivedOp>,
    read_hit: bool,
    write_hit: bool,
    served_by_cache: bool,
}

impl CacheOutcome {
    /// Creates an empty outcome.
    pub fn new() -> Self {
        CacheOutcome::default()
    }

    /// Resets the outcome to its empty state, keeping the op buffer's
    /// allocation so a simulator loop can reuse one outcome per access.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.read_hit = false;
        self.write_hit = false;
        self.served_by_cache = false;
    }

    /// Appends a derived operation.
    pub fn push(&mut self, op: DerivedOp) {
        self.ops.push(op);
    }

    /// Marks the request as a read hit.
    pub fn set_read_hit(&mut self, hit: bool) {
        self.read_hit = hit;
    }

    /// Marks the request as a write absorbed by the cache.
    pub fn set_write_hit(&mut self, hit: bool) {
        self.write_hit = hit;
    }

    /// Marks whether the application-visible completion is governed by the
    /// cache device (as opposed to the disk subsystem).
    pub fn set_served_by_cache(&mut self, by_cache: bool) {
        self.served_by_cache = by_cache;
    }

    /// Whether the read was served from the cache.
    pub fn read_hit(&self) -> bool {
        self.read_hit
    }

    /// Whether the write was absorbed by the cache.
    pub fn write_hit(&self) -> bool {
        self.write_hit
    }

    /// Whether the application-visible latency is determined by the cache
    /// device.
    pub fn served_by_cache(&self) -> bool {
        self.served_by_cache
    }

    /// All derived operations, in issue order.
    pub fn ops(&self) -> &[DerivedOp] {
        &self.ops
    }

    /// The derived operations destined for the SSD cache device.
    pub fn ssd_ops(&self) -> Vec<&DerivedOp> {
        self.ops.iter().filter(|op| op.target == TargetDevice::Ssd).collect()
    }

    /// The derived operations destined for the disk subsystem.
    pub fn hdd_ops(&self) -> Vec<&DerivedOp> {
        self.ops.iter().filter(|op| op.target == TargetDevice::Hdd).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbica_storage::block::Lba;

    fn range() -> BlockRange {
        BlockRange::new(Lba::new(0), 8)
    }

    #[test]
    fn derived_op_class_follows_origin() {
        let promote =
            DerivedOp::new(TargetDevice::Ssd, RequestKind::Write, RequestOrigin::Promote, range());
        assert_eq!(promote.class(), RequestClass::Promote);
        let evict =
            DerivedOp::new(TargetDevice::Hdd, RequestKind::Write, RequestOrigin::Evict, range());
        assert_eq!(evict.class(), RequestClass::Evict);
    }

    #[test]
    fn outcome_partitions_ops_by_target() {
        let mut o = CacheOutcome::new();
        o.push(DerivedOp::new(
            TargetDevice::Ssd,
            RequestKind::Read,
            RequestOrigin::Application,
            range(),
        ));
        o.push(DerivedOp::new(
            TargetDevice::Hdd,
            RequestKind::Write,
            RequestOrigin::Evict,
            range(),
        ));
        assert_eq!(o.ops().len(), 2);
        assert_eq!(o.ssd_ops().len(), 1);
        assert_eq!(o.hdd_ops().len(), 1);
    }

    #[test]
    fn flags_default_false_and_are_settable() {
        let mut o = CacheOutcome::new();
        assert!(!o.read_hit() && !o.write_hit() && !o.served_by_cache());
        o.set_read_hit(true);
        o.set_served_by_cache(true);
        assert!(o.read_hit() && o.served_by_cache());
        o.set_write_hit(true);
        assert!(o.write_hit());
    }
}
