//! Set-associative block-to-slot mapping.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::replacement::{RecencyList, ReplacementKind};

/// The state of one cache slot (one way of one set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotState {
    /// The slot holds a clean copy of a block.
    Clean,
    /// The slot holds a modified copy that must be written back before it
    /// can be discarded.
    Dirty,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Slot {
    block: u64,
    state: SlotState,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CacheSet {
    ways: Vec<Option<Slot>>,
    recency: RecencyList,
}

impl CacheSet {
    fn new(associativity: usize, replacement: ReplacementKind) -> Self {
        CacheSet { ways: vec![None; associativity], recency: RecencyList::new(replacement) }
    }

    fn find(&self, block: u64) -> Option<usize> {
        self.ways.iter().position(|slot| slot.as_ref().map(|s| s.block == block).unwrap_or(false))
    }

    fn free_way(&self) -> Option<usize> {
        self.ways.iter().position(|slot| slot.is_none())
    }
}

/// What happened when a block was inserted into the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertOutcome {
    /// The block was already cached; its state was updated in place.
    AlreadyPresent,
    /// The block went into a free slot.
    Inserted,
    /// A clean victim was discarded to make room.
    EvictedClean {
        /// Block index of the discarded victim.
        victim: u64,
    },
    /// A dirty victim must be written back to the disk subsystem.
    EvictedDirty {
        /// Block index of the victim that needs writing back.
        victim: u64,
    },
}

/// A set-associative map from cache-block indices to slots, with dirty-bit
/// tracking — the metadata structure of the EnhanceIO-like cache.
///
/// ```
/// use lbica_cache::{SetAssociativeMap, SlotState, ReplacementKind};
///
/// let mut map = SetAssociativeMap::new(4, 2, ReplacementKind::Lru);
/// map.insert(1, SlotState::Dirty);
/// assert!(map.contains(1));
/// assert_eq!(map.state(1), Some(SlotState::Dirty));
/// assert_eq!(map.dirty_blocks(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetAssociativeMap {
    sets: Vec<CacheSet>,
    associativity: usize,
    len: usize,
    dirty: usize,
}

impl SetAssociativeMap {
    /// Creates a map with `num_sets` sets of `associativity` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `associativity` is zero.
    pub fn new(num_sets: usize, associativity: usize, replacement: ReplacementKind) -> Self {
        assert!(num_sets > 0, "a cache needs at least one set");
        assert!(associativity > 0, "a cache needs at least one way per set");
        SetAssociativeMap {
            sets: (0..num_sets).map(|_| CacheSet::new(associativity, replacement)).collect(),
            associativity,
            len: 0,
            dirty: 0,
        }
    }

    /// Total number of slots (blocks the cache can hold).
    pub fn capacity_blocks(&self) -> usize {
        self.sets.len() * self.associativity
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of dirty blocks awaiting write-back.
    pub fn dirty_blocks(&self) -> usize {
        self.dirty
    }

    fn set_index(&self, block: u64) -> usize {
        (block % self.sets.len() as u64) as usize
    }

    /// Whether `block` is cached.
    pub fn contains(&self, block: u64) -> bool {
        let set = &self.sets[self.set_index(block)];
        set.find(block).is_some()
    }

    /// The state of `block` if cached.
    pub fn state(&self, block: u64) -> Option<SlotState> {
        let set = &self.sets[self.set_index(block)];
        set.find(block).and_then(|way| set.ways[way].as_ref().map(|s| s.state))
    }

    /// Records a hit on `block` (recency update). Returns `false` when the
    /// block is not cached.
    pub fn touch(&mut self, block: u64) -> bool {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        match set.find(block) {
            Some(way) => {
                set.recency.touch(way);
                true
            }
            None => false,
        }
    }

    /// Inserts `block` with the given state, evicting a victim when the set
    /// is full. Inserting an already-present block updates its state
    /// (clean→dirty transitions are recorded; dirty blocks stay dirty).
    pub fn insert(&mut self, block: u64, state: SlotState) -> InsertOutcome {
        let idx = self.set_index(block);
        let set_len = self.sets.len();
        debug_assert!(idx < set_len);
        let set = &mut self.sets[idx];

        if let Some(way) = set.find(block) {
            set.recency.touch(way);
            if let Some(slot) = set.ways[way].as_mut() {
                if slot.state == SlotState::Clean && state == SlotState::Dirty {
                    slot.state = SlotState::Dirty;
                    self.dirty += 1;
                }
            }
            return InsertOutcome::AlreadyPresent;
        }

        if let Some(way) = set.free_way() {
            set.ways[way] = Some(Slot { block, state });
            set.recency.touch(way);
            self.len += 1;
            if state == SlotState::Dirty {
                self.dirty += 1;
            }
            return InsertOutcome::Inserted;
        }

        // Set is full: evict the recency victim.
        let victim_way = set.recency.victim().expect("full set has a victim");
        let victim = set.ways[victim_way].take().expect("victim way is occupied");
        set.recency.remove(victim_way);
        set.ways[victim_way] = Some(Slot { block, state });
        set.recency.touch(victim_way);

        if state == SlotState::Dirty {
            self.dirty += 1;
        }
        match victim.state {
            SlotState::Dirty => {
                self.dirty -= 1;
                InsertOutcome::EvictedDirty { victim: victim.block }
            }
            SlotState::Clean => InsertOutcome::EvictedClean { victim: victim.block },
        }
    }

    /// Marks a cached block dirty. Returns `false` when the block is not
    /// cached.
    pub fn mark_dirty(&mut self, block: u64) -> bool {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if let Some(way) = set.find(block) {
            if let Some(slot) = set.ways[way].as_mut() {
                if slot.state == SlotState::Clean {
                    slot.state = SlotState::Dirty;
                    self.dirty += 1;
                }
                return true;
            }
        }
        false
    }

    /// Marks a cached block clean (after a flush). Returns `false` when the
    /// block is not cached.
    pub fn mark_clean(&mut self, block: u64) -> bool {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if let Some(way) = set.find(block) {
            if let Some(slot) = set.ways[way].as_mut() {
                if slot.state == SlotState::Dirty {
                    slot.state = SlotState::Clean;
                    self.dirty -= 1;
                }
                return true;
            }
        }
        false
    }

    /// Removes `block` from the cache, returning its state if it was cached.
    pub fn invalidate(&mut self, block: u64) -> Option<SlotState> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        let way = set.find(block)?;
        let slot = set.ways[way].take()?;
        set.recency.remove(way);
        self.len -= 1;
        if slot.state == SlotState::Dirty {
            self.dirty -= 1;
        }
        Some(slot.state)
    }

    /// Returns up to `max` dirty block indices, coldest sets first, for the
    /// background flusher.
    pub fn dirty_candidates(&self, max: usize) -> Vec<u64> {
        let mut out = Vec::new();
        'outer: for set in &self.sets {
            for slot in set.ways.iter().flatten() {
                if slot.state == SlotState::Dirty {
                    out.push(slot.block);
                    if out.len() >= max {
                        break 'outer;
                    }
                }
            }
        }
        out
    }

    /// Iterates all cached block indices.
    pub fn blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.sets.iter().flat_map(|set| set.ways.iter().flatten().map(|s| s.block))
    }
}

impl fmt::Display for SetAssociativeMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "set-assoc cache: {}/{} blocks cached, {} dirty",
            self.len,
            self.capacity_blocks(),
            self.dirty
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> SetAssociativeMap {
        SetAssociativeMap::new(4, 2, ReplacementKind::Lru)
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let _ = SetAssociativeMap::new(0, 2, ReplacementKind::Lru);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _ = SetAssociativeMap::new(2, 0, ReplacementKind::Lru);
    }

    #[test]
    fn insert_and_lookup() {
        let mut m = map();
        assert_eq!(m.insert(1, SlotState::Clean), InsertOutcome::Inserted);
        assert!(m.contains(1));
        assert_eq!(m.state(1), Some(SlotState::Clean));
        assert_eq!(m.len(), 1);
        assert!(!m.contains(2));
        assert_eq!(m.state(2), None);
    }

    #[test]
    fn reinsert_upgrades_clean_to_dirty() {
        let mut m = map();
        m.insert(1, SlotState::Clean);
        assert_eq!(m.insert(1, SlotState::Dirty), InsertOutcome::AlreadyPresent);
        assert_eq!(m.state(1), Some(SlotState::Dirty));
        assert_eq!(m.dirty_blocks(), 1);
        // A later clean insert does not silently lose the dirty bit.
        m.insert(1, SlotState::Clean);
        assert_eq!(m.state(1), Some(SlotState::Dirty));
        assert_eq!(m.dirty_blocks(), 1);
    }

    #[test]
    fn full_set_evicts_lru_victim() {
        let mut m = map(); // 4 sets, 2 ways; blocks 0,4,8 all map to set 0
        m.insert(0, SlotState::Clean);
        m.insert(4, SlotState::Clean);
        m.touch(0); // 4 becomes LRU
        let outcome = m.insert(8, SlotState::Clean);
        assert_eq!(outcome, InsertOutcome::EvictedClean { victim: 4 });
        assert!(m.contains(0));
        assert!(m.contains(8));
        assert!(!m.contains(4));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn dirty_victim_is_reported_for_writeback() {
        let mut m = map();
        m.insert(0, SlotState::Dirty);
        m.insert(4, SlotState::Dirty);
        let outcome = m.insert(8, SlotState::Clean);
        assert_eq!(outcome, InsertOutcome::EvictedDirty { victim: 0 });
        assert_eq!(m.dirty_blocks(), 1);
    }

    #[test]
    fn mark_dirty_and_clean_round_trip() {
        let mut m = map();
        m.insert(3, SlotState::Clean);
        assert!(m.mark_dirty(3));
        assert_eq!(m.dirty_blocks(), 1);
        assert!(m.mark_clean(3));
        assert_eq!(m.dirty_blocks(), 0);
        assert!(!m.mark_dirty(99));
        assert!(!m.mark_clean(99));
    }

    #[test]
    fn invalidate_removes_and_reports_state() {
        let mut m = map();
        m.insert(5, SlotState::Dirty);
        assert_eq!(m.invalidate(5), Some(SlotState::Dirty));
        assert_eq!(m.invalidate(5), None);
        assert_eq!(m.len(), 0);
        assert_eq!(m.dirty_blocks(), 0);
    }

    #[test]
    fn dirty_candidates_lists_dirty_blocks_up_to_max() {
        let mut m = SetAssociativeMap::new(8, 2, ReplacementKind::Lru);
        for b in 0..6 {
            m.insert(b, SlotState::Dirty);
        }
        let some = m.dirty_candidates(4);
        assert_eq!(some.len(), 4);
        let all = m.dirty_candidates(100);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut m = SetAssociativeMap::new(2, 2, ReplacementKind::Fifo);
        for b in 0..100 {
            m.insert(b, SlotState::Clean);
            assert!(m.len() <= m.capacity_blocks());
        }
        assert_eq!(m.len(), m.capacity_blocks());
        assert_eq!(m.blocks().count(), 4);
    }

    #[test]
    fn display_is_informative() {
        let mut m = map();
        m.insert(1, SlotState::Dirty);
        let s = m.to_string();
        assert!(s.contains("1/8"));
        assert!(s.contains("1 dirty"));
    }
}
