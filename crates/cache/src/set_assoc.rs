//! Set-associative block-to-slot mapping.
//!
//! The map is a single contiguous slot arena: per-slot `tags` and `meta`
//! arrays indexed by `set * associativity + way`, with an intrusive
//! index-linked recency list per set instead of a side `Vec` of way
//! indices. Lookups walk a packed tag array (one cache line covers many
//! ways), recency updates are O(1) pointer splices, and `dirty_candidates`
//! skips whole sets via a per-set dirty counter. The observable semantics
//! are bit-identical to the seed's boxed-slot representation (a
//! `Vec<Option<Slot>>` per set plus a recency `Vec` of way indices): same
//! hit/eviction decisions, same victim order, same candidate enumeration
//! order — pinned by the model-based proptest in
//! `tests/model_equivalence.rs`.

use std::fmt;

use lbica_storage::snap::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

use crate::replacement::ReplacementKind;

/// Sentinel for "no slot" in the intrusive recency links.
const NIL: u32 = u32::MAX;

/// The state of one cache slot (one way of one set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotState {
    /// The slot holds a clean copy of a block.
    Clean,
    /// The slot holds a modified copy that must be written back before it
    /// can be discarded.
    Dirty,
}

/// Per-slot occupancy + dirty state, packed into one byte-sized enum so the
/// hot lookup loop reads a contiguous array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum SlotMeta {
    /// The slot is unoccupied.
    Empty,
    /// The slot holds a clean block.
    Clean,
    /// The slot holds a dirty block.
    Dirty,
}

impl SlotMeta {
    fn state(self) -> Option<SlotState> {
        match self {
            SlotMeta::Empty => None,
            SlotMeta::Clean => Some(SlotState::Clean),
            SlotMeta::Dirty => Some(SlotState::Dirty),
        }
    }

    fn from_state(state: SlotState) -> Self {
        match state {
            SlotState::Clean => SlotMeta::Clean,
            SlotState::Dirty => SlotMeta::Dirty,
        }
    }
}

/// What happened when a block was inserted into the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertOutcome {
    /// The block was already cached; its state was updated in place.
    AlreadyPresent,
    /// The block went into a free slot.
    Inserted,
    /// A clean victim was discarded to make room.
    EvictedClean {
        /// Block index of the discarded victim.
        victim: u64,
    },
    /// A dirty victim must be written back to the disk subsystem.
    EvictedDirty {
        /// Block index of the victim that needs writing back.
        victim: u64,
    },
}

/// A set-associative map from cache-block indices to slots, with dirty-bit
/// tracking — the metadata structure of the EnhanceIO-like cache.
///
/// ```
/// use lbica_cache::{SetAssociativeMap, SlotState, ReplacementKind};
///
/// let mut map = SetAssociativeMap::new(4, 2, ReplacementKind::Lru);
/// map.insert(1, SlotState::Dirty);
/// assert!(map.contains(1));
/// assert_eq!(map.state(1), Some(SlotState::Dirty));
/// assert_eq!(map.dirty_blocks(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetAssociativeMap {
    num_sets: usize,
    associativity: usize,
    /// `num_sets - 1` when `num_sets` is a power of two: `block & mask`
    /// then replaces the integer division in [`SetAssociativeMap::set_of`].
    set_mask: Option<u64>,
    replacement: ReplacementKind,
    /// Block tag per slot; meaningless where `meta` is `Empty`.
    tags: Vec<u64>,
    /// Occupancy/dirty state per slot.
    meta: Vec<SlotMeta>,
    /// Intrusive recency links per slot: `next` points one step hotter,
    /// `prev` one step colder; `NIL` terminates.
    next: Vec<u32>,
    prev: Vec<u32>,
    /// Coldest slot per set (the eviction victim), `NIL` when empty.
    head: Vec<u32>,
    /// Hottest slot per set, `NIL` when empty.
    tail: Vec<u32>,
    /// Dirty-slot count per set, so clean sets are skipped wholesale when
    /// enumerating flush candidates.
    set_dirty: Vec<u32>,
    len: usize,
    dirty: usize,
}

impl SetAssociativeMap {
    /// Creates a map with `num_sets` sets of `associativity` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `associativity` is zero, or if the total
    /// slot count overflows the `u32` slot-index space.
    pub fn new(num_sets: usize, associativity: usize, replacement: ReplacementKind) -> Self {
        assert!(num_sets > 0, "a cache needs at least one set");
        assert!(associativity > 0, "a cache needs at least one way per set");
        let slots = num_sets
            .checked_mul(associativity)
            .filter(|&n| n < NIL as usize)
            .expect("slot count must fit the u32 index space");
        let set_mask = if num_sets.is_power_of_two() { Some(num_sets as u64 - 1) } else { None };
        SetAssociativeMap {
            num_sets,
            associativity,
            set_mask,
            replacement,
            tags: vec![0; slots],
            meta: vec![SlotMeta::Empty; slots],
            next: vec![NIL; slots],
            prev: vec![NIL; slots],
            head: vec![NIL; num_sets],
            tail: vec![NIL; num_sets],
            set_dirty: vec![0; num_sets],
            len: 0,
            dirty: 0,
        }
    }

    /// Total number of slots (blocks the cache can hold).
    pub fn capacity_blocks(&self) -> usize {
        self.num_sets * self.associativity
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of dirty blocks awaiting write-back.
    pub fn dirty_blocks(&self) -> usize {
        self.dirty
    }

    /// The set a block maps to. Power-of-two set counts take a bitmask
    /// fast path; the mapping is identical to `block % num_sets` either
    /// way.
    pub fn set_of(&self, block: u64) -> usize {
        match self.set_mask {
            Some(mask) => (block & mask) as usize,
            None => (block % self.num_sets as u64) as usize,
        }
    }

    /// The slot range `[base, base + associativity)` backing a set.
    fn set_base(&self, set: usize) -> usize {
        set * self.associativity
    }

    /// Finds the slot holding `block` within its set.
    fn find(&self, block: u64) -> Option<usize> {
        let base = self.set_base(self.set_of(block));
        (base..base + self.associativity)
            .find(|&slot| self.meta[slot] != SlotMeta::Empty && self.tags[slot] == block)
    }

    /// The first unoccupied slot of a set, mirroring the original
    /// first-free-way scan.
    fn free_slot(&self, set: usize) -> Option<usize> {
        let base = self.set_base(set);
        (base..base + self.associativity).find(|&slot| self.meta[slot] == SlotMeta::Empty)
    }

    /// Appends `slot` at the hot end of its set's recency list.
    fn push_hot(&mut self, set: usize, slot: usize) {
        let slot = slot as u32;
        let old_tail = self.tail[set];
        self.prev[slot as usize] = old_tail;
        self.next[slot as usize] = NIL;
        if old_tail == NIL {
            self.head[set] = slot;
        } else {
            self.next[old_tail as usize] = slot;
        }
        self.tail[set] = slot;
    }

    /// Splices `slot` out of its set's recency list.
    fn unlink(&mut self, set: usize, slot: usize) {
        let p = self.prev[slot];
        let n = self.next[slot];
        if p == NIL {
            self.head[set] = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail[set] = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
    }

    /// Records an access to an occupied slot: under LRU it moves to the hot
    /// end, under FIFO the insertion order is left untouched.
    fn touch_slot(&mut self, set: usize, slot: usize) {
        if self.replacement == ReplacementKind::Lru && self.tail[set] != slot as u32 {
            self.unlink(set, slot);
            self.push_hot(set, slot);
        }
    }

    /// Clears every slot without deallocating, restoring the exact state of
    /// a freshly constructed map (including derive-`PartialEq` equality):
    /// the backing arenas keep their capacity so a reused map performs no
    /// allocations.
    pub fn reset(&mut self) {
        self.tags.fill(0);
        self.meta.fill(SlotMeta::Empty);
        self.next.fill(NIL);
        self.prev.fill(NIL);
        self.head.fill(NIL);
        self.tail.fill(NIL);
        self.set_dirty.fill(0);
        self.len = 0;
        self.dirty = 0;
    }

    /// Fills the map to capacity with the clean blocks
    /// `first_block .. first_block + capacity`, exactly equivalent to (but
    /// much faster than) [`SetAssociativeMap::reset`] followed by inserting
    /// them in ascending order: each set receives its `associativity`
    /// resident blocks directly, with recency running coldest→hottest in
    /// insertion order, skipping the per-insert tag scans entirely. This is
    /// the prewarm fast path — equivalence to the naive insert loop is
    /// pinned by a proptest below.
    pub fn fill_sequential(&mut self, first_block: u64) {
        let assoc = self.associativity;
        let sets = self.num_sets as u64;
        let start_rem = first_block % sets;
        for set in 0..self.num_sets {
            let base = self.set_base(set);
            // First block ≥ first_block that maps to this set.
            let rel = (set as u64 + sets - start_rem) % sets;
            let first_in_set = first_block + rel;
            for way in 0..assoc {
                let slot = base + way;
                self.tags[slot] = first_in_set + way as u64 * sets;
                self.meta[slot] = SlotMeta::Clean;
                self.next[slot] = if way + 1 == assoc { NIL } else { (slot + 1) as u32 };
                self.prev[slot] = if way == 0 { NIL } else { (slot - 1) as u32 };
            }
            self.head[set] = base as u32;
            self.tail[set] = (base + assoc - 1) as u32;
        }
        self.set_dirty.fill(0);
        self.len = self.capacity_blocks();
        self.dirty = 0;
    }

    /// Locates the slot holding `block` without a recency update. The
    /// returned handle feeds the `*_at` operations below and stays valid
    /// until the block is invalidated or evicted: recency updates splice
    /// links but never move a block between slots.
    pub fn locate(&self, block: u64) -> Option<u32> {
        self.find(block).map(|slot| slot as u32)
    }

    /// Records a hit on an occupied slot handle — identical to
    /// [`SetAssociativeMap::touch`] on the block it holds, minus the tag
    /// scan.
    pub fn touch_at(&mut self, slot: u32) {
        let slot = slot as usize;
        debug_assert!(self.meta[slot] != SlotMeta::Empty, "touch_at on an empty slot");
        self.touch_slot(slot / self.associativity, slot);
    }

    /// The state of the block in an occupied slot handle.
    pub fn state_at(&self, slot: u32) -> SlotState {
        self.meta[slot as usize].state().expect("state_at on an empty slot")
    }

    /// Marks the block in an occupied slot handle dirty — identical to
    /// [`SetAssociativeMap::mark_dirty`] minus the tag scan.
    pub fn mark_dirty_at(&mut self, slot: u32) {
        let slot = slot as usize;
        if self.meta[slot] == SlotMeta::Clean {
            self.meta[slot] = SlotMeta::Dirty;
            self.dirty += 1;
            self.set_dirty[slot / self.associativity] += 1;
        } else {
            debug_assert!(self.meta[slot] == SlotMeta::Dirty, "mark_dirty_at on an empty slot");
        }
    }

    /// Removes the block in an occupied slot handle, returning its state —
    /// identical to [`SetAssociativeMap::invalidate`] minus the tag scan.
    pub fn invalidate_at(&mut self, slot: u32) -> SlotState {
        let slot = slot as usize;
        let set = slot / self.associativity;
        let state = self.meta[slot].state().expect("invalidate_at on an empty slot");
        self.meta[slot] = SlotMeta::Empty;
        self.unlink(set, slot);
        self.len -= 1;
        if state == SlotState::Dirty {
            self.dirty -= 1;
            self.set_dirty[set] -= 1;
        }
        state
    }

    /// Whether `block` is cached.
    pub fn contains(&self, block: u64) -> bool {
        self.find(block).is_some()
    }

    /// The state of `block` if cached.
    pub fn state(&self, block: u64) -> Option<SlotState> {
        self.find(block).and_then(|slot| self.meta[slot].state())
    }

    /// Records a hit on `block` (recency update). Returns `false` when the
    /// block is not cached.
    pub fn touch(&mut self, block: u64) -> bool {
        match self.find(block) {
            Some(slot) => {
                self.touch_slot(self.set_of(block), slot);
                true
            }
            None => false,
        }
    }

    /// Inserts `block` with the given state, evicting a victim when the set
    /// is full. Inserting an already-present block updates its state
    /// (clean→dirty transitions are recorded; dirty blocks stay dirty).
    pub fn insert(&mut self, block: u64, state: SlotState) -> InsertOutcome {
        let set = self.set_of(block);

        if let Some(slot) = self.find(block) {
            self.touch_slot(set, slot);
            if self.meta[slot] == SlotMeta::Clean && state == SlotState::Dirty {
                self.meta[slot] = SlotMeta::Dirty;
                self.dirty += 1;
                self.set_dirty[set] += 1;
            }
            return InsertOutcome::AlreadyPresent;
        }

        if let Some(slot) = self.free_slot(set) {
            self.tags[slot] = block;
            self.meta[slot] = SlotMeta::from_state(state);
            self.push_hot(set, slot);
            self.len += 1;
            if state == SlotState::Dirty {
                self.dirty += 1;
                self.set_dirty[set] += 1;
            }
            return InsertOutcome::Inserted;
        }

        // Set is full: evict the recency victim (the coldest slot).
        let victim_slot = self.head[set] as usize;
        debug_assert!(self.head[set] != NIL, "full set has a victim");
        let victim = self.tags[victim_slot];
        let victim_state = self.meta[victim_slot];
        self.unlink(set, victim_slot);
        self.tags[victim_slot] = block;
        self.meta[victim_slot] = SlotMeta::from_state(state);
        self.push_hot(set, victim_slot);

        if state == SlotState::Dirty {
            self.dirty += 1;
            self.set_dirty[set] += 1;
        }
        match victim_state {
            SlotMeta::Dirty => {
                self.dirty -= 1;
                self.set_dirty[set] -= 1;
                InsertOutcome::EvictedDirty { victim }
            }
            SlotMeta::Clean => InsertOutcome::EvictedClean { victim },
            SlotMeta::Empty => unreachable!("victim slot is occupied"),
        }
    }

    /// Marks a cached block dirty. Returns `false` when the block is not
    /// cached.
    pub fn mark_dirty(&mut self, block: u64) -> bool {
        match self.find(block) {
            Some(slot) => {
                if self.meta[slot] == SlotMeta::Clean {
                    let set = self.set_of(block);
                    self.meta[slot] = SlotMeta::Dirty;
                    self.dirty += 1;
                    self.set_dirty[set] += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Marks a cached block clean (after a flush). Returns `false` when the
    /// block is not cached.
    pub fn mark_clean(&mut self, block: u64) -> bool {
        match self.find(block) {
            Some(slot) => {
                if self.meta[slot] == SlotMeta::Dirty {
                    let set = self.set_of(block);
                    self.meta[slot] = SlotMeta::Clean;
                    self.dirty -= 1;
                    self.set_dirty[set] -= 1;
                }
                true
            }
            None => false,
        }
    }

    /// Removes `block` from the cache, returning its state if it was cached.
    pub fn invalidate(&mut self, block: u64) -> Option<SlotState> {
        let slot = self.find(block)?;
        let set = self.set_of(block);
        let state = self.meta[slot].state().expect("found slot is occupied");
        self.meta[slot] = SlotMeta::Empty;
        self.unlink(set, slot);
        self.len -= 1;
        if state == SlotState::Dirty {
            self.dirty -= 1;
            self.set_dirty[set] -= 1;
        }
        Some(state)
    }

    /// Returns up to `max` dirty block indices, coldest sets first, for the
    /// background flusher.
    pub fn dirty_candidates(&self, max: usize) -> Vec<u64> {
        let mut out = Vec::new();
        self.dirty_candidates_into(max, &mut out);
        out
    }

    /// [`SetAssociativeMap::dirty_candidates`] into a caller-owned buffer,
    /// so a periodic flusher reuses one allocation. The buffer is cleared
    /// first. Sets with no dirty blocks are skipped without scanning their
    /// ways.
    pub fn dirty_candidates_into(&self, max: usize, out: &mut Vec<u64>) {
        out.clear();
        if max == 0 || self.dirty == 0 {
            return;
        }
        for set in 0..self.num_sets {
            if self.set_dirty[set] == 0 {
                continue;
            }
            let base = self.set_base(set);
            for slot in base..base + self.associativity {
                if self.meta[slot] == SlotMeta::Dirty {
                    out.push(self.tags[slot]);
                    if out.len() >= max {
                        return;
                    }
                }
            }
        }
    }

    /// Iterates all cached block indices.
    pub fn blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.meta
            .iter()
            .zip(self.tags.iter())
            .filter(|(meta, _)| **meta != SlotMeta::Empty)
            .map(|(_, tag)| *tag)
    }

    /// Serializes the map — geometry, slot arrays and recency links — for a
    /// replay checkpoint. Derived fields (`set_mask`, per-set dirty
    /// counters, `len`, `dirty`) are recomputed on restore rather than
    /// stored, shrinking the corruption surface.
    pub fn snap_to(&self, w: &mut SnapWriter) {
        w.put_usize(self.num_sets);
        w.put_usize(self.associativity);
        w.put_u8(match self.replacement {
            ReplacementKind::Lru => 0,
            ReplacementKind::Fifo => 1,
        });
        for slot in 0..self.tags.len() {
            w.put_u64(self.tags[slot]);
            w.put_u8(match self.meta[slot] {
                SlotMeta::Empty => 0,
                SlotMeta::Clean => 1,
                SlotMeta::Dirty => 2,
            });
            w.put_u32(self.next[slot]);
            w.put_u32(self.prev[slot]);
        }
        for set in 0..self.num_sets {
            w.put_u32(self.head[set]);
            w.put_u32(self.tail[set]);
        }
    }

    /// Restores a map serialized by [`SetAssociativeMap::snap_to`].
    pub fn snap_from(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let num_sets = r.get_usize()?;
        let associativity = r.get_usize()?;
        if num_sets == 0 || associativity == 0 {
            return Err(SnapError::Corrupt("cache map geometry"));
        }
        let slots = num_sets
            .checked_mul(associativity)
            .filter(|&n| n < NIL as usize)
            .ok_or(SnapError::Corrupt("cache map geometry"))?;
        let replacement = match r.get_u8()? {
            0 => ReplacementKind::Lru,
            1 => ReplacementKind::Fifo,
            _ => return Err(SnapError::Corrupt("replacement kind tag")),
        };
        let link_ok = |v: u32| v == NIL || (v as usize) < slots;
        let mut map = SetAssociativeMap::new(num_sets, associativity, replacement);
        for slot in 0..slots {
            map.tags[slot] = r.get_u64()?;
            map.meta[slot] = match r.get_u8()? {
                0 => SlotMeta::Empty,
                1 => SlotMeta::Clean,
                2 => SlotMeta::Dirty,
                _ => return Err(SnapError::Corrupt("slot meta tag")),
            };
            map.next[slot] = r.get_u32()?;
            map.prev[slot] = r.get_u32()?;
            if !link_ok(map.next[slot]) || !link_ok(map.prev[slot]) {
                return Err(SnapError::Corrupt("recency link out of range"));
            }
        }
        for set in 0..num_sets {
            map.head[set] = r.get_u32()?;
            map.tail[set] = r.get_u32()?;
            if !link_ok(map.head[set]) || !link_ok(map.tail[set]) {
                return Err(SnapError::Corrupt("recency link out of range"));
            }
        }
        for slot in 0..slots {
            match map.meta[slot] {
                SlotMeta::Empty => {}
                SlotMeta::Clean => map.len += 1,
                SlotMeta::Dirty => {
                    map.len += 1;
                    map.dirty += 1;
                    map.set_dirty[slot / associativity] += 1;
                }
            }
        }
        Ok(map)
    }
}

impl fmt::Display for SetAssociativeMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "set-assoc cache: {}/{} blocks cached, {} dirty",
            self.len,
            self.capacity_blocks(),
            self.dirty
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> SetAssociativeMap {
        SetAssociativeMap::new(4, 2, ReplacementKind::Lru)
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let _ = SetAssociativeMap::new(0, 2, ReplacementKind::Lru);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _ = SetAssociativeMap::new(2, 0, ReplacementKind::Lru);
    }

    #[test]
    fn insert_and_lookup() {
        let mut m = map();
        assert_eq!(m.insert(1, SlotState::Clean), InsertOutcome::Inserted);
        assert!(m.contains(1));
        assert_eq!(m.state(1), Some(SlotState::Clean));
        assert_eq!(m.len(), 1);
        assert!(!m.contains(2));
        assert_eq!(m.state(2), None);
    }

    #[test]
    fn reinsert_upgrades_clean_to_dirty() {
        let mut m = map();
        m.insert(1, SlotState::Clean);
        assert_eq!(m.insert(1, SlotState::Dirty), InsertOutcome::AlreadyPresent);
        assert_eq!(m.state(1), Some(SlotState::Dirty));
        assert_eq!(m.dirty_blocks(), 1);
        // A later clean insert does not silently lose the dirty bit.
        m.insert(1, SlotState::Clean);
        assert_eq!(m.state(1), Some(SlotState::Dirty));
        assert_eq!(m.dirty_blocks(), 1);
    }

    #[test]
    fn full_set_evicts_lru_victim() {
        let mut m = map(); // 4 sets, 2 ways; blocks 0,4,8 all map to set 0
        m.insert(0, SlotState::Clean);
        m.insert(4, SlotState::Clean);
        m.touch(0); // 4 becomes LRU
        let outcome = m.insert(8, SlotState::Clean);
        assert_eq!(outcome, InsertOutcome::EvictedClean { victim: 4 });
        assert!(m.contains(0));
        assert!(m.contains(8));
        assert!(!m.contains(4));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn dirty_victim_is_reported_for_writeback() {
        let mut m = map();
        m.insert(0, SlotState::Dirty);
        m.insert(4, SlotState::Dirty);
        let outcome = m.insert(8, SlotState::Clean);
        assert_eq!(outcome, InsertOutcome::EvictedDirty { victim: 0 });
        assert_eq!(m.dirty_blocks(), 1);
    }

    #[test]
    fn fifo_victims_follow_insertion_order_despite_touches() {
        let mut m = SetAssociativeMap::new(4, 2, ReplacementKind::Fifo);
        m.insert(0, SlotState::Clean);
        m.insert(4, SlotState::Clean);
        m.touch(0); // FIFO ignores the re-access
        let outcome = m.insert(8, SlotState::Clean);
        assert_eq!(outcome, InsertOutcome::EvictedClean { victim: 0 });
    }

    #[test]
    fn mark_dirty_and_clean_round_trip() {
        let mut m = map();
        m.insert(3, SlotState::Clean);
        assert!(m.mark_dirty(3));
        assert_eq!(m.dirty_blocks(), 1);
        assert!(m.mark_clean(3));
        assert_eq!(m.dirty_blocks(), 0);
        assert!(!m.mark_dirty(99));
        assert!(!m.mark_clean(99));
    }

    #[test]
    fn invalidate_removes_and_reports_state() {
        let mut m = map();
        m.insert(5, SlotState::Dirty);
        assert_eq!(m.invalidate(5), Some(SlotState::Dirty));
        assert_eq!(m.invalidate(5), None);
        assert_eq!(m.len(), 0);
        assert_eq!(m.dirty_blocks(), 0);
    }

    #[test]
    fn dirty_candidates_lists_dirty_blocks_up_to_max() {
        let mut m = SetAssociativeMap::new(8, 2, ReplacementKind::Lru);
        for b in 0..6 {
            m.insert(b, SlotState::Dirty);
        }
        let some = m.dirty_candidates(4);
        assert_eq!(some.len(), 4);
        let all = m.dirty_candidates(100);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn dirty_candidates_into_reuses_the_buffer() {
        let mut m = SetAssociativeMap::new(8, 2, ReplacementKind::Lru);
        for b in 0..6 {
            m.insert(b, SlotState::Dirty);
        }
        let mut buf = vec![99, 98, 97];
        m.dirty_candidates_into(4, &mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf, m.dirty_candidates(4));
        m.dirty_candidates_into(0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn set_mapping_matches_modulo_for_pow2_and_non_pow2() {
        for num_sets in [1usize, 3, 4, 7, 8, 12, 64, 100, 128] {
            let m = SetAssociativeMap::new(num_sets, 2, ReplacementKind::Lru);
            for block in (0u64..256).chain([1 << 33, (1 << 47) + 5, u64::MAX]) {
                assert_eq!(
                    m.set_of(block),
                    (block % num_sets as u64) as usize,
                    "block {block} with {num_sets} sets"
                );
            }
        }
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut m = SetAssociativeMap::new(2, 2, ReplacementKind::Fifo);
        for b in 0..100 {
            m.insert(b, SlotState::Clean);
            assert!(m.len() <= m.capacity_blocks());
        }
        assert_eq!(m.len(), m.capacity_blocks());
        assert_eq!(m.blocks().count(), 4);
    }

    #[test]
    fn per_set_dirty_counters_track_global_count() {
        let mut m = SetAssociativeMap::new(4, 4, ReplacementKind::Lru);
        for b in 0..12 {
            m.insert(b, if b % 2 == 0 { SlotState::Dirty } else { SlotState::Clean });
        }
        assert_eq!(m.set_dirty.iter().map(|&d| d as usize).sum::<usize>(), m.dirty_blocks());
        for b in 0..12 {
            m.invalidate(b);
        }
        assert_eq!(m.dirty_blocks(), 0);
        assert!(m.set_dirty.iter().all(|&d| d == 0));
    }

    #[test]
    fn reset_restores_the_freshly_constructed_state() {
        let mut m = SetAssociativeMap::new(4, 2, ReplacementKind::Lru);
        for b in 0..16 {
            m.insert(b, if b % 3 == 0 { SlotState::Dirty } else { SlotState::Clean });
        }
        m.invalidate(9);
        m.reset();
        assert_eq!(m, SetAssociativeMap::new(4, 2, ReplacementKind::Lru));
        assert_eq!(m.len(), 0);
        assert_eq!(m.dirty_blocks(), 0);
        // The reset map behaves like a fresh one.
        assert_eq!(m.insert(0, SlotState::Clean), InsertOutcome::Inserted);
    }

    #[test]
    fn fill_sequential_matches_naive_inserts() {
        for (num_sets, assoc) in [(4usize, 2usize), (7, 3), (1, 8), (128, 4)] {
            for first in [0u64, 1, 5, 512, 513] {
                for replacement in [ReplacementKind::Lru, ReplacementKind::Fifo] {
                    let mut naive = SetAssociativeMap::new(num_sets, assoc, replacement);
                    let cap = naive.capacity_blocks() as u64;
                    for b in first..first + cap {
                        naive.insert(b, SlotState::Clean);
                    }
                    let mut fast = SetAssociativeMap::new(num_sets, assoc, replacement);
                    // Start from a dirtied state to prove the fill is a
                    // complete overwrite.
                    fast.insert(first + 1, SlotState::Dirty);
                    fast.fill_sequential(first);
                    assert_eq!(
                        fast, naive,
                        "fill_sequential({first}) diverged for {num_sets}x{assoc} {replacement:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn slot_addressed_ops_match_block_addressed_ones() {
        let mut by_block = SetAssociativeMap::new(4, 2, ReplacementKind::Lru);
        let mut by_slot = by_block.clone();
        for b in [0u64, 4, 1, 5, 2] {
            by_block.insert(b, SlotState::Clean);
            by_slot.insert(b, SlotState::Clean);
        }
        assert_eq!(by_slot.locate(9), None);

        let slot = by_slot.locate(4).expect("block 4 cached");
        assert_eq!(by_slot.state_at(slot), SlotState::Clean);
        by_block.touch(4);
        by_slot.touch_at(slot);
        assert_eq!(by_slot, by_block);

        by_block.mark_dirty(4);
        by_slot.mark_dirty_at(slot);
        assert_eq!(by_slot, by_block);
        // Marking an already-dirty slot is a no-op, as with mark_dirty.
        by_slot.mark_dirty_at(slot);
        assert_eq!(by_slot, by_block);
        assert_eq!(by_slot.state_at(slot), SlotState::Dirty);

        assert_eq!(by_block.invalidate(4), Some(SlotState::Dirty));
        assert_eq!(by_slot.invalidate_at(slot), SlotState::Dirty);
        assert_eq!(by_slot, by_block);
    }

    #[test]
    fn snap_round_trip_preserves_contents_recency_and_counters() {
        for replacement in [ReplacementKind::Lru, ReplacementKind::Fifo] {
            let mut m = SetAssociativeMap::new(4, 2, replacement);
            for b in 0..16u64 {
                m.insert(b, if b % 3 == 0 { SlotState::Dirty } else { SlotState::Clean });
            }
            m.touch(9);
            m.invalidate(10);

            let mut w = SnapWriter::new();
            m.snap_to(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            let restored = SetAssociativeMap::snap_from(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(restored, m);

            // The restored map makes the same eviction decision next.
            let mut a = m.clone();
            let mut b = restored;
            assert_eq!(a.insert(100, SlotState::Clean), b.insert(100, SlotState::Clean));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn snap_from_rejects_out_of_range_links() {
        let m = map();
        let mut w = SnapWriter::new();
        m.snap_to(&mut w);
        let mut bytes = w.into_bytes();
        // Corrupt slot 0's `next` link (after 2×usize geometry + tag byte +
        // slot 0's 8-byte tag + 1-byte meta) to a non-NIL out-of-range index.
        let next_off = 8 + 8 + 1 + 8 + 1;
        bytes[next_off..next_off + 4].copy_from_slice(&1_000u32.to_le_bytes());
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            SetAssociativeMap::snap_from(&mut r),
            Err(SnapError::Corrupt("recency link out of range"))
        );
    }

    #[test]
    fn display_is_informative() {
        let mut m = map();
        m.insert(1, SlotState::Dirty);
        let s = m.to_string();
        assert!(s.contains("1/8"));
        assert!(s.contains("1 dirty"));
    }
}
