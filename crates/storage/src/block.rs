//! Logical block addressing.
//!
//! The simulator addresses devices in 512-byte sectors (the unit `blktrace`
//! reports) and caches data in fixed-size blocks of [`BLOCK_SECTORS`]
//! sectors (4 KiB, EnhanceIO's default block size).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Size of a device sector in bytes.
pub const SECTOR_SIZE: u64 = 512;

/// Number of sectors per cache block (4 KiB blocks, EnhanceIO's default).
pub const BLOCK_SECTORS: u64 = 8;

/// A logical block address, expressed in sectors from the start of the
/// device, exactly as `blktrace` records it.
///
/// ```
/// use lbica_storage::block::{Lba, BLOCK_SECTORS};
/// let lba = Lba::new(17);
/// assert_eq!(lba.block_index(), 17 / BLOCK_SECTORS);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Lba(u64);

impl Lba {
    /// Creates an LBA from a sector number.
    pub const fn new(sector: u64) -> Self {
        Lba(sector)
    }

    /// The raw sector number.
    pub const fn sector(self) -> u64 {
        self.0
    }

    /// The cache-block index this sector falls into.
    pub const fn block_index(self) -> u64 {
        self.0 / BLOCK_SECTORS
    }

    /// The first sector of the cache block containing this LBA.
    pub const fn block_aligned(self) -> Lba {
        Lba(self.0 - self.0 % BLOCK_SECTORS)
    }

    /// Byte offset of this LBA from the start of the device.
    pub const fn byte_offset(self) -> u64 {
        self.0 * SECTOR_SIZE
    }

    /// Returns the LBA `sectors` sectors after this one.
    pub const fn offset(self, sectors: u64) -> Lba {
        Lba(self.0 + sectors)
    }
}

impl fmt::Display for Lba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lba:{}", self.0)
    }
}

impl From<u64> for Lba {
    fn from(sector: u64) -> Self {
        Lba(sector)
    }
}

/// A contiguous range of sectors `[start, start + sectors)`.
///
/// Ranges are what requests carry; the cache module splits them into
/// block-aligned pieces, and the device queue merges adjacent ranges the way
/// the kernel block layer merges adjacent bios.
///
/// ```
/// use lbica_storage::block::{BlockRange, Lba};
/// let a = BlockRange::new(Lba::new(0), 8);
/// let b = BlockRange::new(Lba::new(8), 8);
/// assert!(a.is_adjacent_to(&b));
/// assert_eq!(a.merged(&b).unwrap().sectors(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockRange {
    start: Lba,
    sectors: u64,
}

impl BlockRange {
    /// Creates a range starting at `start` spanning `sectors` sectors.
    ///
    /// # Panics
    ///
    /// Panics if `sectors` is zero; a zero-length I/O is meaningless and
    /// always indicates a bug in the caller.
    pub fn new(start: Lba, sectors: u64) -> Self {
        assert!(sectors > 0, "a block range must span at least one sector");
        BlockRange { start, sectors }
    }

    /// First sector of the range.
    pub const fn start(&self) -> Lba {
        self.start
    }

    /// One past the last sector of the range.
    pub const fn end(&self) -> Lba {
        Lba::new(self.start.sector() + self.sectors)
    }

    /// Number of sectors in the range.
    pub const fn sectors(&self) -> u64 {
        self.sectors
    }

    /// Size of the range in bytes.
    pub const fn bytes(&self) -> u64 {
        self.sectors * SECTOR_SIZE
    }

    /// Whether `other` begins exactly where this range ends or vice versa.
    pub fn is_adjacent_to(&self, other: &BlockRange) -> bool {
        self.end() == other.start() || other.end() == self.start()
    }

    /// Whether the two ranges share at least one sector.
    pub fn overlaps(&self, other: &BlockRange) -> bool {
        self.start.sector() < other.end().sector() && other.start.sector() < self.end().sector()
    }

    /// Whether `lba` falls inside the range.
    pub fn contains(&self, lba: Lba) -> bool {
        lba.sector() >= self.start.sector() && lba.sector() < self.end().sector()
    }

    /// Merges two adjacent or overlapping ranges into their union, or
    /// returns `None` when they are disjoint and non-adjacent.
    pub fn merged(&self, other: &BlockRange) -> Option<BlockRange> {
        if !self.is_adjacent_to(other) && !self.overlaps(other) {
            return None;
        }
        let start = self.start.sector().min(other.start.sector());
        let end = self.end().sector().max(other.end().sector());
        Some(BlockRange::new(Lba::new(start), end - start))
    }

    /// Iterates the cache-block indices touched by the range.
    pub fn block_indices(&self) -> impl Iterator<Item = u64> {
        let first = self.start.block_index();
        let last = Lba::new(self.end().sector().saturating_sub(1)).block_index();
        first..=last
    }
}

impl fmt::Display for BlockRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}+{})", self.start, self.sectors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lba_block_alignment() {
        assert_eq!(Lba::new(0).block_index(), 0);
        assert_eq!(Lba::new(7).block_index(), 0);
        assert_eq!(Lba::new(8).block_index(), 1);
        assert_eq!(Lba::new(13).block_aligned(), Lba::new(8));
        assert_eq!(Lba::new(13).byte_offset(), 13 * SECTOR_SIZE);
    }

    #[test]
    #[should_panic(expected = "at least one sector")]
    fn zero_length_range_panics() {
        let _ = BlockRange::new(Lba::new(0), 0);
    }

    #[test]
    fn adjacency_and_overlap() {
        let a = BlockRange::new(Lba::new(0), 8);
        let b = BlockRange::new(Lba::new(8), 8);
        let c = BlockRange::new(Lba::new(4), 8);
        let d = BlockRange::new(Lba::new(100), 8);
        assert!(a.is_adjacent_to(&b));
        assert!(b.is_adjacent_to(&a));
        assert!(!a.is_adjacent_to(&d));
        assert!(a.overlaps(&c));
        assert!(!a.overlaps(&b));
        assert!(!a.overlaps(&d));
    }

    #[test]
    fn merge_produces_union() {
        let a = BlockRange::new(Lba::new(0), 8);
        let b = BlockRange::new(Lba::new(8), 16);
        let m = a.merged(&b).expect("adjacent ranges merge");
        assert_eq!(m.start(), Lba::new(0));
        assert_eq!(m.sectors(), 24);
        let far = BlockRange::new(Lba::new(64), 8);
        assert!(a.merged(&far).is_none());
    }

    #[test]
    fn block_indices_cover_partial_blocks() {
        let r = BlockRange::new(Lba::new(6), 4); // spans blocks 0 and 1
        let idx: Vec<u64> = r.block_indices().collect();
        assert_eq!(idx, vec![0, 1]);
        let single = BlockRange::new(Lba::new(8), 8);
        assert_eq!(single.block_indices().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn contains_is_half_open() {
        let r = BlockRange::new(Lba::new(10), 5);
        assert!(r.contains(Lba::new(10)));
        assert!(r.contains(Lba::new(14)));
        assert!(!r.contains(Lba::new(15)));
        assert!(!r.contains(Lba::new(9)));
    }
}
