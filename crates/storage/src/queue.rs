//! Device queues.
//!
//! [`DeviceQueue`] models the pending-request queue in front of a device —
//! the structure whose depth `iostat` reports as `avgqu-sz` and which the
//! paper calls `ssdQSize` / `hddQSize`. It is a FIFO with optional
//! block-layer-style merging of adjacent requests, and it tracks everything
//! the monitors need: current depth, per-request wait, the class mix of
//! in-queue requests and cumulative statistics.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::request::{IoRequest, RequestClass, RequestId};
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::time::{SimDuration, SimTime};

/// A point-in-time view of a [`DeviceQueue`], as a `blktrace`-style probe
/// would capture it: how many requests of each class are waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueueSnapshot {
    /// Number of in-queue application reads (**R**).
    pub reads: usize,
    /// Number of in-queue application writes (**W**).
    pub writes: usize,
    /// Number of in-queue promotes (**P**).
    pub promotes: usize,
    /// Number of in-queue evictions / flushes (**E**).
    pub evicts: usize,
}

impl QueueSnapshot {
    /// Total number of in-queue requests.
    pub fn total(&self) -> usize {
        self.reads + self.writes + self.promotes + self.evicts
    }

    /// Count for a specific class.
    pub fn count(&self, class: RequestClass) -> usize {
        match class {
            RequestClass::Read => self.reads,
            RequestClass::Write => self.writes,
            RequestClass::Promote => self.promotes,
            RequestClass::Evict => self.evicts,
        }
    }

    /// Adds one request of `class` to the snapshot.
    pub fn record(&mut self, class: RequestClass) {
        match class {
            RequestClass::Read => self.reads += 1,
            RequestClass::Write => self.writes += 1,
            RequestClass::Promote => self.promotes += 1,
            RequestClass::Evict => self.evicts += 1,
        }
    }

    /// Removes one request of `class` from the snapshot (the inverse of
    /// [`QueueSnapshot::record`], used by incrementally maintained counts).
    pub fn unrecord(&mut self, class: RequestClass) {
        match class {
            RequestClass::Read => self.reads -= 1,
            RequestClass::Write => self.writes -= 1,
            RequestClass::Promote => self.promotes -= 1,
            RequestClass::Evict => self.evicts -= 1,
        }
    }

    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: &QueueSnapshot) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.promotes += other.promotes;
        self.evicts += other.evicts;
    }

    /// Serializes the class counts for a replay checkpoint.
    pub fn snap_to(&self, w: &mut SnapWriter) {
        w.put_usize(self.reads);
        w.put_usize(self.writes);
        w.put_usize(self.promotes);
        w.put_usize(self.evicts);
    }

    /// Restores counts serialized by [`QueueSnapshot::snap_to`].
    pub fn snap_from(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(QueueSnapshot {
            reads: r.get_usize()?,
            writes: r.get_usize()?,
            promotes: r.get_usize()?,
            evicts: r.get_usize()?,
        })
    }
}

/// Cumulative statistics of a [`DeviceQueue`] over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueueStats {
    /// Requests ever enqueued.
    pub enqueued: u64,
    /// Requests dispatched to the device.
    pub dispatched: u64,
    /// Requests absorbed by merging into an already-queued request.
    pub merged: u64,
    /// Requests removed by a controller bypass decision before dispatch.
    pub bypassed: u64,
    /// Sum of queue-wait times of dispatched requests, in microseconds.
    pub total_wait_us: u64,
    /// Largest queue depth ever observed.
    pub peak_depth: usize,
}

impl QueueStats {
    /// Average queueing delay of dispatched requests.
    pub fn avg_wait(&self) -> SimDuration {
        SimDuration::from_micros(self.total_wait_us.checked_div(self.dispatched).unwrap_or(0))
    }
}

/// A FIFO device queue with block-layer-style request merging.
///
/// ```
/// use lbica_storage::queue::DeviceQueue;
/// use lbica_storage::request::{IoRequest, RequestKind, RequestOrigin};
/// use lbica_storage::time::SimTime;
///
/// let mut q = DeviceQueue::new("ssd");
/// let r = IoRequest::new(1, RequestKind::Read, RequestOrigin::Application, 0, 8)
///     .with_arrival(SimTime::ZERO);
/// q.enqueue(r);
/// assert_eq!(q.depth(), 1);
/// let dispatched = q.dispatch(SimTime::from_micros(50)).expect("one pending request");
/// assert_eq!(dispatched.queue_time().map(|d| d.as_micros()), Some(50));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DeviceQueue {
    name: String,
    pending: VecDeque<IoRequest>,
    merge_enabled: bool,
    stats: QueueStats,
    /// Class counts of the pending requests, maintained incrementally on
    /// enqueue/dispatch/drain so [`DeviceQueue::snapshot`] is O(1) instead
    /// of a per-probe scan of the whole queue.
    mix: QueueSnapshot,
}

impl DeviceQueue {
    /// Creates an empty queue with merging enabled.
    pub fn new(name: impl Into<String>) -> Self {
        DeviceQueue {
            name: name.into(),
            pending: VecDeque::new(),
            merge_enabled: true,
            stats: QueueStats::default(),
            mix: QueueSnapshot::default(),
        }
    }

    /// Creates an empty queue with merging disabled (every request is
    /// dispatched individually).
    pub fn without_merging(name: impl Into<String>) -> Self {
        let mut q = DeviceQueue::new(name);
        q.merge_enabled = false;
        q
    }

    /// The queue's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of requests currently waiting (the paper's `QSize`).
    pub fn depth(&self) -> usize {
        self.pending.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Cumulative statistics.
    pub const fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Adds a request to the back of the queue. If merging is enabled and an
    /// already-queued request of the same kind and class addresses an
    /// adjacent range, the new request is merged into it instead and `true`
    /// is returned.
    pub fn enqueue(&mut self, request: IoRequest) -> bool {
        self.stats.enqueued += 1;
        if self.merge_enabled {
            if let Some(existing) = self.pending.iter_mut().find(|q| {
                q.kind() == request.kind()
                    && q.class() == request.class()
                    && q.range().is_adjacent_to(&request.range())
            }) {
                if let Some(merged_range) = existing.range().merged(&request.range()) {
                    let merged = IoRequest::from_range(
                        existing.id(),
                        existing.kind(),
                        existing.origin(),
                        merged_range,
                    )
                    .with_arrival(existing.arrival().min(request.arrival()));
                    *existing = merged;
                    self.stats.merged += 1;
                    return true;
                }
            }
        }
        self.mix.record(request.class());
        self.pending.push_back(request);
        self.stats.peak_depth = self.stats.peak_depth.max(self.pending.len());
        false
    }

    /// Removes and returns the request at the head of the queue, stamping
    /// its dispatch time.
    pub fn dispatch(&mut self, now: SimTime) -> Option<IoRequest> {
        let mut request = self.pending.pop_front()?;
        self.mix.unrecord(request.class());
        request.mark_dispatched(now);
        self.stats.dispatched += 1;
        if let Some(wait) = request.queue_time() {
            self.stats.total_wait_us += wait.as_micros();
        }
        Some(request)
    }

    /// Removes from the *tail* of the queue up to `count` requests that
    /// satisfy `predicate`, returning them (newest first). This implements
    /// the controller-driven tail bypass of Section III-C: the requests past
    /// the bottleneck threshold are pulled out of the cache queue and
    /// redirected to the disk subsystem.
    pub fn drain_tail<F>(&mut self, count: usize, mut predicate: F) -> Vec<IoRequest>
    where
        F: FnMut(&IoRequest) -> bool,
    {
        let mut taken = Vec::new();
        let mut idx = self.pending.len();
        while idx > 0 && taken.len() < count {
            idx -= 1;
            if predicate(&self.pending[idx]) {
                if let Some(req) = self.pending.remove(idx) {
                    self.mix.unrecord(req.class());
                    taken.push(req);
                }
            }
        }
        self.stats.bypassed += taken.len() as u64;
        taken
    }

    /// Removes specific requests by id, returning them in queue order. Used
    /// by SIB, which selects individual victims after estimating their wait
    /// times.
    ///
    /// Runs in a single pass over the queue: the ids are sorted once and
    /// membership is a binary search, replacing the old O(depth × ids)
    /// `contains` + `VecDeque::remove` shuffle.
    pub fn remove_by_ids(&mut self, ids: &[RequestId]) -> Vec<IoRequest> {
        if ids.is_empty() || self.pending.is_empty() {
            return Vec::new();
        }
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(self.pending.len());
        for req in self.pending.drain(..) {
            if sorted.binary_search(&req.id()).is_ok() {
                self.mix.unrecord(req.class());
                taken.push(req);
            } else {
                kept.push_back(req);
            }
        }
        self.pending = kept;
        self.stats.bypassed += taken.len() as u64;
        taken
    }

    /// Iterates the pending requests from head (oldest) to tail (newest).
    pub fn iter(&self) -> impl Iterator<Item = &IoRequest> {
        self.pending.iter()
    }

    /// A `blktrace`-style class histogram of the in-queue requests. O(1):
    /// the counts are maintained incrementally as requests enter and leave.
    pub fn snapshot(&self) -> QueueSnapshot {
        self.mix
    }

    /// The age of the oldest in-queue request at `now`, or zero when empty.
    pub fn oldest_age(&self, now: SimTime) -> SimDuration {
        self.pending.front().map(|r| r.age(now)).unwrap_or(SimDuration::ZERO)
    }

    /// Discards every pending request (used when tearing a simulation down).
    pub fn clear(&mut self) {
        self.pending.clear();
        self.mix = QueueSnapshot::default();
    }

    /// Like [`DeviceQueue::clear`] but also zeroes the cumulative
    /// statistics, leaving the queue observationally identical to a freshly
    /// constructed one while keeping the pending ring buffer allocated.
    pub fn reset(&mut self) {
        self.clear();
        self.stats = QueueStats::default();
    }

    /// Serializes the queue — pending requests in order, cumulative stats —
    /// for a replay checkpoint. The class mix is rebuilt from the pending
    /// requests on restore rather than stored.
    pub fn snap_to(&self, w: &mut SnapWriter) {
        w.put_str(&self.name);
        w.put_bool(self.merge_enabled);
        w.put_u64(self.stats.enqueued);
        w.put_u64(self.stats.dispatched);
        w.put_u64(self.stats.merged);
        w.put_u64(self.stats.bypassed);
        w.put_u64(self.stats.total_wait_us);
        w.put_usize(self.stats.peak_depth);
        w.put_usize(self.pending.len());
        for req in &self.pending {
            req.snap_to(w);
        }
    }

    /// Restores a queue serialized by [`DeviceQueue::snap_to`].
    pub fn snap_from(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let name = r.get_str()?;
        let merge_enabled = r.get_bool()?;
        let stats = QueueStats {
            enqueued: r.get_u64()?,
            dispatched: r.get_u64()?,
            merged: r.get_u64()?,
            bypassed: r.get_u64()?,
            total_wait_us: r.get_u64()?,
            peak_depth: r.get_usize()?,
        };
        let len = r.get_usize()?;
        let mut pending = VecDeque::with_capacity(len.min(1 << 20));
        let mut mix = QueueSnapshot::default();
        for _ in 0..len {
            let req = IoRequest::snap_from(r)?;
            mix.record(req.class());
            pending.push_back(req);
        }
        Ok(DeviceQueue { name, pending, merge_enabled, stats, mix })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestKind, RequestOrigin};

    fn req(id: u64, kind: RequestKind, origin: RequestOrigin, sector: u64) -> IoRequest {
        IoRequest::new(id, kind, origin, sector, 8).with_arrival(SimTime::from_micros(id * 10))
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = DeviceQueue::without_merging("hdd");
        for i in 0..5 {
            q.enqueue(req(i, RequestKind::Read, RequestOrigin::Application, i * 1000));
        }
        for i in 0..5 {
            let r = q.dispatch(SimTime::from_secs(1)).expect("request available");
            assert_eq!(r.id(), i);
        }
        assert!(q.dispatch(SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn adjacent_same_class_requests_merge() {
        let mut q = DeviceQueue::new("ssd");
        q.enqueue(req(1, RequestKind::Read, RequestOrigin::Application, 0));
        let merged = q.enqueue(req(2, RequestKind::Read, RequestOrigin::Application, 8));
        assert!(merged);
        assert_eq!(q.depth(), 1);
        assert_eq!(q.stats().merged, 1);
        let r = q.dispatch(SimTime::from_secs(1)).expect("request available");
        assert_eq!(r.range().sectors(), 16);
    }

    #[test]
    fn different_classes_never_merge() {
        let mut q = DeviceQueue::new("ssd");
        q.enqueue(req(1, RequestKind::Write, RequestOrigin::Application, 0));
        let merged = q.enqueue(req(2, RequestKind::Write, RequestOrigin::Promote, 8));
        assert!(!merged);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn non_adjacent_requests_never_merge() {
        let mut q = DeviceQueue::new("ssd");
        q.enqueue(req(1, RequestKind::Read, RequestOrigin::Application, 0));
        assert!(!q.enqueue(req(2, RequestKind::Read, RequestOrigin::Application, 64)));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn snapshot_counts_classes() {
        let mut q = DeviceQueue::without_merging("ssd");
        q.enqueue(req(1, RequestKind::Read, RequestOrigin::Application, 0));
        q.enqueue(req(2, RequestKind::Write, RequestOrigin::Application, 100));
        q.enqueue(req(3, RequestKind::Write, RequestOrigin::Promote, 200));
        q.enqueue(req(4, RequestKind::Write, RequestOrigin::Evict, 300));
        q.enqueue(req(5, RequestKind::Write, RequestOrigin::Evict, 400));
        let snap = q.snapshot();
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.promotes, 1);
        assert_eq!(snap.evicts, 2);
        assert_eq!(snap.total(), 5);
        assert_eq!(snap.count(RequestClass::Evict), 2);
    }

    #[test]
    fn drain_tail_takes_newest_matching_requests() {
        let mut q = DeviceQueue::without_merging("ssd");
        for i in 0..6 {
            q.enqueue(req(i, RequestKind::Write, RequestOrigin::Application, i * 1000));
        }
        let taken = q.drain_tail(2, |r| r.kind().is_write());
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].id(), 5);
        assert_eq!(taken[1].id(), 4);
        assert_eq!(q.depth(), 4);
        assert_eq!(q.stats().bypassed, 2);
    }

    #[test]
    fn drain_tail_respects_predicate() {
        let mut q = DeviceQueue::without_merging("ssd");
        q.enqueue(req(1, RequestKind::Read, RequestOrigin::Application, 0));
        q.enqueue(req(2, RequestKind::Write, RequestOrigin::Application, 100));
        let taken = q.drain_tail(5, |r| r.kind().is_read());
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].id(), 1);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn remove_by_ids_extracts_requested() {
        let mut q = DeviceQueue::without_merging("ssd");
        for i in 0..5 {
            q.enqueue(req(i, RequestKind::Read, RequestOrigin::Application, i * 1000));
        }
        let taken = q.remove_by_ids(&[1, 3]);
        assert_eq!(taken.iter().map(|r| r.id()).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn remove_by_ids_handles_a_deep_queue_with_many_ids() {
        let mut q = DeviceQueue::without_merging("ssd");
        for i in 0..1_000u64 {
            q.enqueue(req(i, RequestKind::Write, RequestOrigin::Application, i * 1000));
        }
        // Every 10th request, in scrambled order with a duplicate and a
        // few misses thrown in.
        let mut ids: Vec<u64> = (0..100u64).map(|i| i * 10).rev().collect();
        ids.push(500); // duplicate
        ids.push(1_000_000); // not in the queue
        let taken = q.remove_by_ids(&ids);
        assert_eq!(taken.len(), 100);
        // Queue order is preserved among the taken requests...
        assert!(taken.windows(2).all(|w| w[0].id() < w[1].id()));
        // ...and among the survivors.
        assert_eq!(q.depth(), 900);
        let survivors: Vec<u64> = q.iter().map(|r| r.id()).collect();
        assert!(survivors.windows(2).all(|w| w[0] < w[1]));
        assert!(survivors.iter().all(|id| id % 10 != 0));
        assert_eq!(q.stats().bypassed, 100);
        assert_eq!(q.snapshot().total(), 900);
    }

    #[test]
    fn snapshot_stays_consistent_with_a_full_recount() {
        let recount = |q: &DeviceQueue| {
            let mut snap = QueueSnapshot::default();
            for r in q.iter() {
                snap.record(r.class());
            }
            snap
        };
        let mut q = DeviceQueue::without_merging("ssd");
        for i in 0..40u64 {
            let origin = match i % 4 {
                0 => RequestOrigin::Application,
                1 => RequestOrigin::Promote,
                2 => RequestOrigin::Evict,
                _ => RequestOrigin::Flush,
            };
            q.enqueue(req(i, RequestKind::Write, origin, i * 1000));
            assert_eq!(q.snapshot(), recount(&q));
        }
        q.dispatch(SimTime::from_secs(1));
        assert_eq!(q.snapshot(), recount(&q));
        q.drain_tail(5, |r| r.kind().is_write());
        assert_eq!(q.snapshot(), recount(&q));
        q.remove_by_ids(&[9, 13, 21]);
        assert_eq!(q.snapshot(), recount(&q));
        q.clear();
        assert_eq!(q.snapshot(), QueueSnapshot::default());
    }

    #[test]
    fn merged_requests_are_not_double_counted_in_the_snapshot() {
        let mut q = DeviceQueue::new("ssd");
        q.enqueue(req(1, RequestKind::Read, RequestOrigin::Application, 0));
        assert!(q.enqueue(req(2, RequestKind::Read, RequestOrigin::Application, 8)));
        assert_eq!(q.snapshot().reads, 1);
        assert_eq!(q.snapshot().total(), 1);
    }

    #[test]
    fn stats_track_wait_and_peak_depth() {
        let mut q = DeviceQueue::without_merging("ssd");
        q.enqueue(
            IoRequest::new(1, RequestKind::Read, RequestOrigin::Application, 0, 8)
                .with_arrival(SimTime::from_micros(0)),
        );
        q.enqueue(
            IoRequest::new(2, RequestKind::Read, RequestOrigin::Application, 100, 8)
                .with_arrival(SimTime::from_micros(0)),
        );
        assert_eq!(q.stats().peak_depth, 2);
        q.dispatch(SimTime::from_micros(100));
        q.dispatch(SimTime::from_micros(300));
        assert_eq!(q.stats().dispatched, 2);
        assert_eq!(q.stats().avg_wait().as_micros(), 200);
    }

    #[test]
    fn oldest_age_reflects_head_request() {
        let mut q = DeviceQueue::without_merging("ssd");
        assert_eq!(q.oldest_age(SimTime::from_secs(1)), SimDuration::ZERO);
        q.enqueue(
            IoRequest::new(1, RequestKind::Read, RequestOrigin::Application, 0, 8)
                .with_arrival(SimTime::from_micros(500)),
        );
        assert_eq!(q.oldest_age(SimTime::from_micros(700)).as_micros(), 200);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = DeviceQueue::new("ssd");
        q.enqueue(req(1, RequestKind::Read, RequestOrigin::Application, 0));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn snap_round_trip_preserves_pending_order_mix_and_stats() {
        let mut q = DeviceQueue::without_merging("ssd");
        for i in 0..7u64 {
            let origin = match i % 3 {
                0 => RequestOrigin::Application,
                1 => RequestOrigin::Promote,
                _ => RequestOrigin::Evict,
            };
            q.enqueue(req(i, RequestKind::Write, origin, i * 1000));
        }
        q.dispatch(SimTime::from_micros(500));
        q.drain_tail(1, |r| r.kind().is_write());

        let mut w = SnapWriter::new();
        q.snap_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let restored = DeviceQueue::snap_from(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.name(), q.name());
        assert_eq!(restored.depth(), q.depth());
        assert_eq!(restored.stats(), q.stats());
        assert_eq!(restored.snapshot(), q.snapshot());
        let pending: Vec<u64> = restored.iter().map(|r| r.id()).collect();
        let original: Vec<u64> = q.iter().map(|r| r.id()).collect();
        assert_eq!(pending, original);
    }

    #[test]
    fn snap_from_rejects_truncated_buffers() {
        let mut q = DeviceQueue::new("hdd");
        q.enqueue(req(1, RequestKind::Read, RequestOrigin::Application, 0));
        let mut w = SnapWriter::new();
        q.snap_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(DeviceQueue::snap_from(&mut r), Err(SnapError::UnexpectedEof { .. })));
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let mut a = QueueSnapshot { reads: 1, writes: 2, promotes: 3, evicts: 4 };
        let b = QueueSnapshot { reads: 10, writes: 20, promotes: 30, evicts: 40 };
        a.merge(&b);
        assert_eq!(a.total(), 110);
    }
}
