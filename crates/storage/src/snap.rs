//! Hand-rolled little-endian snapshot encoding.
//!
//! Replay segment checkpoints serialize the *full* mid-flight state of a
//! simulation — queues, in-flight requests, cache maps, tracker slabs — so a
//! run split at an interval boundary resumes byte-identically. The workspace
//! vendors a no-op `serde`, so the encoding is written by hand: fixed-width
//! little-endian integers, length-prefixed strings, and tag bytes for
//! options and enums. [`SnapReader`] treats its input as untrusted (a
//! checkpoint file may be truncated or corrupted on disk) and returns typed
//! [`SnapError`]s instead of panicking, mirroring the binary trace codec's
//! hostile-input hardening.

use std::fmt;

/// Why a snapshot buffer could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before a field was complete.
    UnexpectedEof {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually left.
        remaining: usize,
    },
    /// A field held a value the schema does not allow.
    Corrupt(&'static str),
    /// The buffer holds bytes past the end of the decoded structure.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof { needed, remaining } => {
                write!(f, "snapshot truncated: needed {needed} bytes, {remaining} left")
            }
            SnapError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapError::TrailingBytes { remaining } => {
                write!(f, "snapshot has {remaining} trailing bytes")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Appends snapshot fields to a growing byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a bool as a 0/1 tag byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes an `f64` by bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes an optional `u64` as a tag byte plus, when present, the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_u64(v);
            }
            None => self.put_u8(0),
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed opaque byte blob (e.g. a nested snapshot).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }
}

/// Decodes snapshot fields from an untrusted byte buffer.
#[derive(Debug)]
pub struct SnapReader<'a> {
    data: &'a [u8],
}

impl<'a> SnapReader<'a> {
    /// Wraps a buffer for decoding.
    pub fn new(data: &'a [u8]) -> Self {
        SnapReader { data }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.data.len() < n {
            return Err(SnapError::UnexpectedEof { needed: n, remaining: self.data.len() });
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("take returned 4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("take returned 8 bytes")))
    }

    /// Reads a `usize` stored as a `u64`.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.get_u64()?).map_err(|_| SnapError::Corrupt("usize overflow"))
    }

    /// Reads a 0/1 tag byte as a bool.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool tag")),
        }
    }

    /// Reads an `f64` stored by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an optional `u64`.
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            _ => Err(SnapError::Corrupt("option tag")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapError> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt("string utf-8"))
    }

    /// Reads a length-prefixed opaque byte blob.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let len = self.get_usize()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Asserts the whole buffer was consumed.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes { remaining: self.data.len() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_field_shapes_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(0xab);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_usize(12_345);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(core::f64::consts::PI);
        w.put_opt_u64(None);
        w.put_opt_u64(Some(7));
        w.put_str("tier0-ssd");
        w.put_str("");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_usize().unwrap(), 12_345);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_f64().unwrap(), core::f64::consts::PI);
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_opt_u64().unwrap(), Some(7));
        assert_eq!(r.get_str().unwrap(), "tier0-ssd");
        assert_eq!(r.get_str().unwrap(), "");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error_not_a_panic() {
        let mut w = SnapWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert_eq!(r.get_u64(), Err(SnapError::UnexpectedEof { needed: 8, remaining: 5 }));
    }

    #[test]
    fn corrupt_tags_are_rejected() {
        let bytes = [7u8];
        assert_eq!(SnapReader::new(&bytes).get_bool(), Err(SnapError::Corrupt("bool tag")));
        assert_eq!(SnapReader::new(&bytes).get_opt_u64(), Err(SnapError::Corrupt("option tag")));
    }

    #[test]
    fn hostile_string_length_is_bounded_by_the_buffer() {
        // A length prefix far beyond the buffer must error, not allocate.
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(SnapError::UnexpectedEof { .. })));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = SnapWriter::new();
        w.put_u32(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let _ = r.get_u8().unwrap();
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes { remaining: 3 }));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut w = SnapWriter::new();
        w.put_usize(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(SnapReader::new(&bytes).get_str(), Err(SnapError::Corrupt("string utf-8")));
    }
}
