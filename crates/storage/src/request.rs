//! The I/O request taxonomy.
//!
//! The paper classifies every operation that can sit in the I/O cache queue
//! into four classes (Fig. 1 and Section III-B):
//!
//! * **R** — an application read served by the cache,
//! * **W** — an application write buffered by the cache,
//! * **P** — a *promote*: the write into the cache that installs the data of
//!   a missed read, and
//! * **E** — an *evict*: the write-back of a dirty victim block to the disk
//!   subsystem (plus the bookkeeping write on the cache device).
//!
//! [`RequestClass`] captures that taxonomy; [`IoRequest`] is the concrete
//! unit of work that moves through the device queues and carries the
//! timestamps the monitors need (arrival, dispatch, completion).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::block::{BlockRange, Lba};
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::time::{SimDuration, SimTime};

/// A monotonically increasing request identifier.
pub type RequestId = u64;

/// The data-transfer direction of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Data flows from the device to the host.
    Read,
    /// Data flows from the host to the device.
    Write,
}

impl RequestKind {
    /// Whether this is a read.
    pub const fn is_read(self) -> bool {
        matches!(self, RequestKind::Read)
    }

    /// Whether this is a write.
    pub const fn is_write(self) -> bool {
        matches!(self, RequestKind::Write)
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestKind::Read => write!(f, "read"),
            RequestKind::Write => write!(f, "write"),
        }
    }
}

/// Why a request exists: issued by the application, or generated internally
/// by the cache module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestOrigin {
    /// Issued by the running workload.
    Application,
    /// A cache-internal write that installs missed read data in the cache
    /// (the paper's **P**).
    Promote,
    /// A cache-internal operation that writes a victim block back to the
    /// disk subsystem (the paper's **E**).
    Evict,
    /// A background flush of dirty data performed by the write-back flusher.
    Flush,
}

impl fmt::Display for RequestOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestOrigin::Application => write!(f, "app"),
            RequestOrigin::Promote => write!(f, "promote"),
            RequestOrigin::Evict => write!(f, "evict"),
            RequestOrigin::Flush => write!(f, "flush"),
        }
    }
}

/// The paper's four in-queue request classes (R / W / P / E).
///
/// `blktrace`-style probes report the class mix of the requests currently
/// waiting in the I/O cache queue; LBICA's workload characterizer consumes
/// exactly this histogram.
///
/// ```
/// use lbica_storage::request::{RequestClass, RequestKind, RequestOrigin};
/// let class = RequestClass::classify(RequestKind::Read, RequestOrigin::Application);
/// assert_eq!(class, RequestClass::Read);
/// assert_eq!(class.symbol(), 'R');
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestClass {
    /// Application read (**R**).
    Read,
    /// Application write (**W**).
    Write,
    /// Cache promotion of missed read data (**P**).
    Promote,
    /// Eviction / write-back of a victim block (**E**).
    Evict,
}

impl RequestClass {
    /// All four classes, in the paper's R, W, P, E order.
    pub const ALL: [RequestClass; 4] =
        [RequestClass::Read, RequestClass::Write, RequestClass::Promote, RequestClass::Evict];

    /// Derives the class from a request's direction and origin.
    ///
    /// Flush traffic is accounted as **E**: like an eviction it is a
    /// cache-generated transfer of dirty data toward the disk subsystem.
    pub fn classify(kind: RequestKind, origin: RequestOrigin) -> RequestClass {
        match origin {
            RequestOrigin::Application => match kind {
                RequestKind::Read => RequestClass::Read,
                RequestKind::Write => RequestClass::Write,
            },
            RequestOrigin::Promote => RequestClass::Promote,
            RequestOrigin::Evict | RequestOrigin::Flush => RequestClass::Evict,
        }
    }

    /// The single-letter symbol the paper uses (R, W, P or E).
    pub const fn symbol(self) -> char {
        match self {
            RequestClass::Read => 'R',
            RequestClass::Write => 'W',
            RequestClass::Promote => 'P',
            RequestClass::Evict => 'E',
        }
    }

    /// Index of the class in [`RequestClass::ALL`]; handy for histograms.
    pub const fn index(self) -> usize {
        match self {
            RequestClass::Read => 0,
            RequestClass::Write => 1,
            RequestClass::Promote => 2,
            RequestClass::Evict => 3,
        }
    }
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A single I/O operation queued at a device.
///
/// The request carries its full lifecycle timestamps so both the iostat-like
/// monitor (queue sizes, await) and the latency plots of Figures 4–7 can be
/// computed from completed requests alone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRequest {
    id: RequestId,
    kind: RequestKind,
    origin: RequestOrigin,
    range: BlockRange,
    /// Id of the application request this internal request was derived from,
    /// if any (promotes/evictions/flushes point back at their trigger).
    parent: Option<RequestId>,
    arrival: SimTime,
    dispatch: Option<SimTime>,
    completion: Option<SimTime>,
}

impl IoRequest {
    /// Creates a request for `sectors` sectors starting at sector
    /// `start_sector`.
    ///
    /// # Panics
    ///
    /// Panics if `sectors` is zero (see [`BlockRange::new`]).
    pub fn new(
        id: RequestId,
        kind: RequestKind,
        origin: RequestOrigin,
        start_sector: u64,
        sectors: u64,
    ) -> Self {
        IoRequest {
            id,
            kind,
            origin,
            range: BlockRange::new(Lba::new(start_sector), sectors),
            parent: None,
            arrival: SimTime::ZERO,
            dispatch: None,
            completion: None,
        }
    }

    /// Creates a request over an existing [`BlockRange`].
    pub fn from_range(
        id: RequestId,
        kind: RequestKind,
        origin: RequestOrigin,
        range: BlockRange,
    ) -> Self {
        IoRequest {
            id,
            kind,
            origin,
            range,
            parent: None,
            arrival: SimTime::ZERO,
            dispatch: None,
            completion: None,
        }
    }

    /// Sets the arrival timestamp (builder style).
    pub fn with_arrival(mut self, at: SimTime) -> Self {
        self.arrival = at;
        self
    }

    /// Records the parent application request this internal request serves.
    pub fn with_parent(mut self, parent: RequestId) -> Self {
        self.parent = Some(parent);
        self
    }

    /// The request identifier.
    pub const fn id(&self) -> RequestId {
        self.id
    }

    /// The transfer direction.
    pub const fn kind(&self) -> RequestKind {
        self.kind
    }

    /// The origin (application / promote / evict / flush).
    pub const fn origin(&self) -> RequestOrigin {
        self.origin
    }

    /// The addressed sector range.
    pub const fn range(&self) -> BlockRange {
        self.range
    }

    /// The parent application request, if this is a derived internal request.
    pub const fn parent(&self) -> Option<RequestId> {
        self.parent
    }

    /// The paper's R/W/P/E class of this request.
    pub fn class(&self) -> RequestClass {
        RequestClass::classify(self.kind, self.origin)
    }

    /// When the request entered the queue.
    pub const fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// When the device started servicing the request, if it has.
    pub const fn dispatch(&self) -> Option<SimTime> {
        self.dispatch
    }

    /// When the request completed, if it has.
    pub const fn completion(&self) -> Option<SimTime> {
        self.completion
    }

    /// Marks the request as dispatched to the device at `at`.
    pub fn mark_dispatched(&mut self, at: SimTime) {
        debug_assert!(self.dispatch.is_none(), "request dispatched twice");
        self.dispatch = Some(at.max(self.arrival));
    }

    /// Marks the request as completed at `at`.
    pub fn mark_completed(&mut self, at: SimTime) {
        debug_assert!(self.completion.is_none(), "request completed twice");
        self.completion = Some(at);
    }

    /// Time spent waiting in the queue before dispatch. `None` until the
    /// request is dispatched.
    pub fn queue_time(&self) -> Option<SimDuration> {
        self.dispatch.map(|d| d.saturating_since(self.arrival))
    }

    /// Time spent being serviced by the device. `None` until completion.
    pub fn service_time_observed(&self) -> Option<SimDuration> {
        match (self.dispatch, self.completion) {
            (Some(d), Some(c)) => Some(c.saturating_since(d)),
            _ => None,
        }
    }

    /// End-to-end latency (arrival to completion). `None` until completion.
    pub fn latency(&self) -> Option<SimDuration> {
        self.completion.map(|c| c.saturating_since(self.arrival))
    }

    /// How long the request has been waiting at `now`, for in-queue
    /// estimates (SIB's wait-time estimation uses this).
    pub fn age(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.arrival)
    }

    /// Serializes the full request lifecycle — including dispatch and
    /// completion timestamps, so mid-flight requests inside a replay
    /// checkpoint restore exactly.
    pub fn snap_to(&self, w: &mut SnapWriter) {
        w.put_u64(self.id);
        w.put_u8(match self.kind {
            RequestKind::Read => 0,
            RequestKind::Write => 1,
        });
        w.put_u8(match self.origin {
            RequestOrigin::Application => 0,
            RequestOrigin::Promote => 1,
            RequestOrigin::Evict => 2,
            RequestOrigin::Flush => 3,
        });
        w.put_u64(self.range.start().sector());
        w.put_u64(self.range.sectors());
        w.put_opt_u64(self.parent);
        w.put_u64(self.arrival.as_micros());
        w.put_opt_u64(self.dispatch.map(SimTime::as_micros));
        w.put_opt_u64(self.completion.map(SimTime::as_micros));
    }

    /// Restores a request serialized by [`IoRequest::snap_to`].
    pub fn snap_from(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let id = r.get_u64()?;
        let kind = match r.get_u8()? {
            0 => RequestKind::Read,
            1 => RequestKind::Write,
            _ => return Err(SnapError::Corrupt("request kind tag")),
        };
        let origin = match r.get_u8()? {
            0 => RequestOrigin::Application,
            1 => RequestOrigin::Promote,
            2 => RequestOrigin::Evict,
            3 => RequestOrigin::Flush,
            _ => return Err(SnapError::Corrupt("request origin tag")),
        };
        let start = r.get_u64()?;
        let sectors = r.get_u64()?;
        if sectors == 0 {
            return Err(SnapError::Corrupt("zero-sector request"));
        }
        let parent = r.get_opt_u64()?;
        let arrival = SimTime::from_micros(r.get_u64()?);
        let dispatch = r.get_opt_u64()?.map(SimTime::from_micros);
        let completion = r.get_opt_u64()?.map(SimTime::from_micros);
        Ok(IoRequest {
            id,
            kind,
            origin,
            range: BlockRange::new(Lba::new(start), sectors),
            parent,
            arrival,
            dispatch,
            completion,
        })
    }
}

impl fmt::Display for IoRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "req#{} {} {} {} at {}",
            self.id,
            self.class(),
            self.kind,
            self.range,
            self.arrival
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(kind: RequestKind, origin: RequestOrigin) -> IoRequest {
        IoRequest::new(1, kind, origin, 0, 8)
    }

    #[test]
    fn classification_matches_paper_taxonomy() {
        assert_eq!(req(RequestKind::Read, RequestOrigin::Application).class(), RequestClass::Read);
        assert_eq!(
            req(RequestKind::Write, RequestOrigin::Application).class(),
            RequestClass::Write
        );
        assert_eq!(req(RequestKind::Write, RequestOrigin::Promote).class(), RequestClass::Promote);
        assert_eq!(req(RequestKind::Write, RequestOrigin::Evict).class(), RequestClass::Evict);
        assert_eq!(req(RequestKind::Write, RequestOrigin::Flush).class(), RequestClass::Evict);
    }

    #[test]
    fn symbols_are_rwpe() {
        let symbols: String = RequestClass::ALL.iter().map(|c| c.symbol()).collect();
        assert_eq!(symbols, "RWPE");
        for (i, class) in RequestClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn lifecycle_timestamps_produce_latencies() {
        let mut r = IoRequest::new(7, RequestKind::Read, RequestOrigin::Application, 100, 8)
            .with_arrival(SimTime::from_micros(1_000));
        assert_eq!(r.queue_time(), None);
        assert_eq!(r.latency(), None);

        r.mark_dispatched(SimTime::from_micros(1_400));
        r.mark_completed(SimTime::from_micros(1_500));

        assert_eq!(r.queue_time(), Some(SimDuration::from_micros(400)));
        assert_eq!(r.service_time_observed(), Some(SimDuration::from_micros(100)));
        assert_eq!(r.latency(), Some(SimDuration::from_micros(500)));
    }

    #[test]
    fn dispatch_never_precedes_arrival() {
        let mut r = IoRequest::new(9, RequestKind::Write, RequestOrigin::Application, 0, 8)
            .with_arrival(SimTime::from_micros(500));
        // Device claims to dispatch "before" arrival: clamp to arrival.
        r.mark_dispatched(SimTime::from_micros(100));
        assert_eq!(r.queue_time(), Some(SimDuration::ZERO));
    }

    #[test]
    fn age_grows_with_now() {
        let r = IoRequest::new(2, RequestKind::Read, RequestOrigin::Application, 0, 8)
            .with_arrival(SimTime::from_micros(100));
        assert_eq!(r.age(SimTime::from_micros(100)), SimDuration::ZERO);
        assert_eq!(r.age(SimTime::from_micros(350)), SimDuration::from_micros(250));
    }

    #[test]
    fn parent_links_internal_requests() {
        let promote =
            IoRequest::new(3, RequestKind::Write, RequestOrigin::Promote, 0, 8).with_parent(42);
        assert_eq!(promote.parent(), Some(42));
        assert_eq!(promote.class(), RequestClass::Promote);
    }

    #[test]
    fn snapshot_round_trips_mid_flight_requests() {
        let mut inflight = IoRequest::new(11, RequestKind::Write, RequestOrigin::Evict, 512, 16)
            .with_arrival(SimTime::from_micros(2_000))
            .with_parent(7);
        inflight.mark_dispatched(SimTime::from_micros(2_100));
        inflight.mark_completed(SimTime::from_micros(2_450));

        let mut w = SnapWriter::new();
        inflight.snap_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let restored = IoRequest::snap_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, inflight);
    }

    #[test]
    fn snapshot_rejects_zero_sector_requests() {
        let mut w = SnapWriter::new();
        let req = IoRequest::new(1, RequestKind::Read, RequestOrigin::Application, 0, 8);
        req.snap_to(&mut w);
        let mut bytes = w.into_bytes();
        // Overwrite the sector count (bytes 18..26) with zero.
        bytes[18..26].copy_from_slice(&0u64.to_le_bytes());
        let mut r = SnapReader::new(&bytes);
        assert_eq!(IoRequest::snap_from(&mut r), Err(SnapError::Corrupt("zero-sector request")));
    }

    #[test]
    fn display_contains_class_symbol() {
        let r = req(RequestKind::Read, RequestOrigin::Application);
        let s = r.to_string();
        assert!(s.contains('R'));
        assert!(s.contains("read"));
    }
}
