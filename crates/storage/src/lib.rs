//! Block-device substrate for the LBICA reproduction.
//!
//! This crate provides the storage-hierarchy primitives that every other
//! crate in the workspace builds on:
//!
//! * [`time`] — a microsecond-resolution simulated clock type, [`SimTime`],
//!   and a duration type, [`SimDuration`].
//! * [`block`] — logical block addressing ([`Lba`], [`BlockRange`]).
//! * [`request`] — the I/O request taxonomy used by the paper:
//!   application **R**ead, application **W**rite, cache **P**romote and
//!   cache **E**vict ([`RequestClass`]), carried by [`IoRequest`].
//! * [`device`] — analytical service-time models for the two tiers of the
//!   storage hierarchy: [`SsdModel`] (the I/O cache device) and
//!   [`HddModel`] (the disk subsystem), both implementing [`DeviceModel`].
//! * [`queue`] — [`DeviceQueue`], a FIFO device queue with request merging,
//!   wait-time accounting and snapshot support; this is the structure whose
//!   depth (`ssdQSize` / `hddQSize`) drives LBICA's bottleneck detector.
//! * [`snap`] — [`SnapWriter`] / [`SnapReader`], the hand-rolled
//!   little-endian encoding replay checkpoints use to serialize mid-flight
//!   simulation state across every crate in the workspace.
//!
//! # Example
//!
//! ```
//! use lbica_storage::device::{DeviceModel, SsdModel, HddModel};
//! use lbica_storage::request::{IoRequest, RequestKind, RequestOrigin};
//! use lbica_storage::time::SimTime;
//!
//! let mut ssd = SsdModel::samsung_863a();
//! let mut hdd = HddModel::seagate_7200_sas();
//! let req = IoRequest::new(0, RequestKind::Read, RequestOrigin::Application, 42, 8)
//!     .with_arrival(SimTime::ZERO);
//! // An SSD serves a small random read orders of magnitude faster than an HDD.
//! assert!(ssd.service_time(&req) < hdd.service_time(&req));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod device;
pub mod error;
pub mod histogram;
pub mod queue;
pub mod request;
pub mod snap;
pub mod time;

pub use block::{BlockRange, Lba, BLOCK_SECTORS, SECTOR_SIZE};
pub use device::{
    AnyDeviceModel, DeviceKind, DeviceModel, HddConfig, HddModel, SsdConfig, SsdModel,
};
pub use error::StorageError;
pub use histogram::LatencyHistogram;
pub use queue::{DeviceQueue, QueueSnapshot, QueueStats};
pub use request::{IoRequest, RequestClass, RequestId, RequestKind, RequestOrigin};
pub use snap::{SnapError, SnapReader, SnapWriter};
pub use time::{SimDuration, SimTime};
