//! Latency histograms with percentile queries.
//!
//! The paper plots per-interval *maximum* latencies; a production monitor
//! additionally wants tail percentiles (p95/p99) without storing every
//! sample. [`LatencyHistogram`] is a log-bucketed histogram over
//! microsecond latencies: constant memory, O(1) insertion, and percentile
//! queries with bounded relative error (one bucket ≈ ×1.25).

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::time::SimDuration;

/// Growth factor between consecutive bucket boundaries.
const BUCKET_GROWTH: f64 = 1.25;
/// Number of buckets; covers 1 µs … > 1 hour at ×1.25 growth.
const BUCKETS: usize = 128;

/// Inclusive upper bounds (µs) of each bucket: `BOUNDS[i] = ceil(1.25^(i+1))`.
///
/// Computed once so the per-sample path is a branch-free integer
/// `partition_point` instead of a floating-point `ln` — `record` sits on the
/// completion hot path of the simulator.
fn bucket_bounds() -> &'static [u64; BUCKETS] {
    &bucket_table().bounds
}

/// The bounds plus a bit-length jump table accelerating bucket lookup.
///
/// `start[b]` is the index of the first bucket whose bound can hold the
/// smallest `b`-bit value, i.e. `partition_point(bounds, bound < 2^(b-1))`.
/// A sample of bit length `b` therefore lands at or after `start[b]`, and
/// since ×1.25 buckets cover one octave in at most four steps, the exact
/// bucket is at most a handful of entries further — a short predictable
/// scan instead of a full binary search per recorded sample.
struct BucketTable {
    bounds: [u64; BUCKETS],
    start: [u8; 65],
}

fn bucket_table() -> &'static BucketTable {
    static TABLE: OnceLock<BucketTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut bounds = [0u64; BUCKETS];
        for (i, slot) in bounds.iter_mut().enumerate() {
            *slot = BUCKET_GROWTH.powi(i as i32 + 1).ceil() as u64;
        }
        let mut start = [0u8; 65];
        for (b, slot) in start.iter_mut().enumerate().skip(1) {
            let smallest = 1u64 << (b - 1);
            let idx = bounds.partition_point(|&bound| bound < smallest);
            *slot = idx.min(BUCKETS - 1) as u8;
        }
        BucketTable { bounds, start }
    })
}

/// A log-bucketed latency histogram.
///
/// ```
/// use lbica_storage::histogram::LatencyHistogram;
/// use lbica_storage::time::SimDuration;
///
/// let mut hist = LatencyHistogram::new();
/// for us in [100, 200, 300, 400, 1_000] {
///     hist.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(hist.count(), 5);
/// assert_eq!(hist.max().as_micros(), 1_000);
/// assert!(hist.percentile(50.0).as_micros() >= 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    total_us: u64,
    max_us: u64,
    min_us: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            total_us: 0,
            max_us: 0,
            min_us: u64::MAX,
        }
    }

    fn bucket_index(latency_us: u64) -> usize {
        // Jump to the first candidate bucket for this bit length, then scan
        // the few ×1.25 buckets inside the octave. Exactly equivalent to
        // `bounds.partition_point(|&bound| bound < latency_us)` clamped to
        // the last bucket (pinned by `bucket_index_matches_partition_point`).
        let table = bucket_table();
        let bits = (u64::BITS - latency_us.leading_zeros()) as usize;
        let mut idx = table.start[bits] as usize;
        while idx < BUCKETS && table.bounds[idx] < latency_us {
            idx += 1;
        }
        idx.min(BUCKETS - 1)
    }

    /// Upper bound (µs) of the bucket with the given index.
    fn bucket_upper_bound(index: usize) -> u64 {
        bucket_bounds()[index]
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.record_us(latency.as_micros());
    }

    /// Records one latency sample given directly in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[Self::bucket_index(us)] += 1;
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
        self.min_us = self.min_us.min(us);
    }

    /// Number of recorded samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples, in microseconds.
    pub const fn total_us(&self) -> u64 {
        self.total_us
    }

    /// Whether no samples have been recorded.
    pub const fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest recorded latency (exact, not bucketed).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.max_us)
    }

    /// The smallest recorded latency (exact), or zero when empty.
    pub fn min(&self) -> SimDuration {
        if self.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(self.min_us)
        }
    }

    /// The mean latency (exact sum / count), or zero when empty.
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_micros(self.total_us.checked_div(self.count).unwrap_or(0))
    }

    /// The latency at the given percentile (0–100), approximated by the
    /// upper bound of the bucket containing that rank. Returns zero when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not in `[0, 100]`.
    pub fn percentile(&self, pct: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&pct), "percentile must be in [0, 100]");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The bucket holding the observed maximum reports the exact
                // maximum; every other bucket reports its upper bound,
                // clamped so estimates never exceed the true maximum.
                if idx == Self::bucket_index(self.max_us) {
                    return self.max();
                }
                return SimDuration::from_micros(Self::bucket_upper_bound(idx).min(self.max_us));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_us += other.total_us;
        self.max_us = self.max_us.max(other.max_us);
        self.min_us = self.min_us.min(other.min_us);
    }

    /// Clears all samples without releasing the bucket allocation, so a
    /// per-interval accumulator can reset in place.
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.total_us = 0;
        self.max_us = 0;
        self.min_us = u64::MAX;
    }

    /// Serializes the histogram for a replay checkpoint.
    pub fn snap_to(&self, w: &mut SnapWriter) {
        w.put_usize(self.buckets.len());
        for &b in &self.buckets {
            w.put_u64(b);
        }
        w.put_u64(self.count);
        w.put_u64(self.total_us);
        w.put_u64(self.max_us);
        w.put_u64(self.min_us);
    }

    /// Restores a histogram serialized by [`LatencyHistogram::snap_to`].
    pub fn snap_from(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_usize()?;
        if len != BUCKETS {
            return Err(SnapError::Corrupt("histogram bucket count"));
        }
        let mut buckets = vec![0u64; BUCKETS];
        for slot in &mut buckets {
            *slot = r.get_u64()?;
        }
        Ok(LatencyHistogram {
            buckets,
            count: r.get_u64()?,
            total_us: r.get_u64()?,
            max_us: r.get_u64()?,
            min_us: r.get_u64()?,
        })
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_partition_point() {
        // The jump-table lookup must agree with the binary search it
        // replaced on every boundary-adjacent value and across all octaves.
        let bounds = bucket_bounds();
        let reference = |us: u64| bounds.partition_point(|&bound| bound < us).min(BUCKETS - 1);
        let mut probes = vec![0u64, 1, u64::MAX];
        for &bound in bounds.iter() {
            probes.extend([bound.saturating_sub(1), bound, bound + 1]);
        }
        for bits in 0..64u32 {
            probes.extend([1u64 << bits, (1u64 << bits) + 1, (1u64 << bits) - 1]);
        }
        for us in probes {
            assert_eq!(LatencyHistogram::bucket_index(us), reference(us), "divergence at {us}");
        }
    }

    fn filled(values: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &v in values {
            h.record(SimDuration::from_micros(v));
        }
        h
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
    }

    #[test]
    fn count_mean_min_max_are_exact() {
        let h = filled(&[100, 200, 300]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean().as_micros(), 200);
        assert_eq!(h.min().as_micros(), 100);
        assert_eq!(h.max().as_micros(), 300);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let values: Vec<u64> = (1..=1_000).map(|i| i * 10).collect();
        let h = filled(&values);
        let p50 = h.percentile(50.0).as_micros();
        let p95 = h.percentile(95.0).as_micros();
        let p99 = h.percentile(99.0).as_micros();
        let p100 = h.percentile(100.0).as_micros();
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p100);
        assert_eq!(p100, 10_000);
        // Bucketed approximation stays within the ×1.25 bucket width.
        assert!((p50 as f64) >= 5_000.0 * 0.8 && (p50 as f64) <= 5_000.0 * 1.3, "p50 {p50}");
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_panics() {
        let _ = filled(&[1]).percentile(150.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = filled(&[100, 200]);
        let b = filled(&[400, 800]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max().as_micros(), 800);
        assert_eq!(a.min().as_micros(), 100);
        assert_eq!(a.mean().as_micros(), 375);
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = filled(&[10, 20, 30]);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn bucket_bounds_are_monotonic_and_cover_every_sample() {
        let bounds = bucket_bounds();
        for pair in bounds.windows(2) {
            assert!(pair[0] <= pair[1], "bounds must be non-decreasing: {pair:?}");
        }
        // Every sample lands in a bucket whose upper bound is >= the sample
        // (except the saturating last bucket).
        for us in [0, 1, 2, 3, 10, 100, 12_345, 1_000_000] {
            let idx = LatencyHistogram::bucket_index(us);
            if idx < BUCKETS - 1 {
                assert!(bounds[idx] >= us, "sample {us} above bucket {idx} bound {}", bounds[idx]);
            }
            if idx > 0 {
                assert!(bounds[idx - 1] < us, "sample {us} should not fit bucket {}", idx - 1);
            }
        }
    }

    #[test]
    fn record_us_matches_record() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for us in [7, 80, 900, 12_000] {
            a.record(SimDuration::from_micros(us));
            b.record_us(us);
        }
        assert_eq!(a, b);
        assert_eq!(a.total_us(), 7 + 80 + 900 + 12_000);
    }

    #[test]
    fn snap_round_trip_is_exact() {
        let h = filled(&[7, 80, 900, 12_000, u64::MAX / 3]);
        let mut w = SnapWriter::new();
        h.snap_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let restored = LatencyHistogram::snap_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, h);

        // Empty histograms round-trip too (min_us sentinel preserved).
        let empty = LatencyHistogram::new();
        let mut w = SnapWriter::new();
        empty.snap_to(&mut w);
        let bytes = w.into_bytes();
        let restored = LatencyHistogram::snap_from(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored, empty);
    }

    #[test]
    fn snap_from_rejects_wrong_bucket_count() {
        let mut w = SnapWriter::new();
        w.put_usize(7);
        let bytes = w.into_bytes();
        assert_eq!(
            LatencyHistogram::snap_from(&mut SnapReader::new(&bytes)),
            Err(SnapError::Corrupt("histogram bucket count"))
        );
    }

    #[test]
    fn extreme_values_saturate_into_the_last_bucket() {
        let h = filled(&[u64::MAX / 2]);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(100.0).as_micros(), u64::MAX / 2);
    }
}
