//! Simulated time.
//!
//! The whole workspace accounts time in **microseconds**, the unit the paper
//! reports its latency plots in (Figures 4–7 are "Max. Latency (us)").
//! [`SimTime`] is an absolute instant on the simulated clock and
//! [`SimDuration`] is a span between two instants.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An absolute instant of simulated time, in microseconds since simulation
/// start.
///
/// ```
/// use lbica_storage::time::{SimTime, SimDuration};
/// let t = SimTime::from_micros(10) + SimDuration::from_millis(1);
/// assert_eq!(t.as_micros(), 1_010);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// ```
/// use lbica_storage::time::SimDuration;
/// assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from a floating-point number of microseconds,
    /// rounding to the nearest whole microsecond and clamping negatives to
    /// zero.
    pub fn from_micros_f64(micros: f64) -> Self {
        if micros.is_nan() || micros <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration(micros.round() as u64)
        }
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration as floating-point microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64
    }

    /// The duration as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction of two durations.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor (e.g. queue depth × mean
    /// service time, the paper's Eq. 1).
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl From<u64> for SimDuration {
    fn from(micros: u64) -> Self {
        SimDuration(micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        assert_eq!(t.as_millis(), 5);
        let later = t + SimDuration::from_micros(250);
        assert_eq!(later - t, SimDuration::from_micros(250));
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(100);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_micros(), 90);
    }

    #[test]
    fn duration_from_float_clamps_and_rounds() {
        assert_eq!(SimDuration::from_micros_f64(-3.0).as_micros(), 0);
        assert_eq!(SimDuration::from_micros_f64(f64::NAN).as_micros(), 0);
        assert_eq!(SimDuration::from_micros_f64(2.6).as_micros(), 3);
    }

    #[test]
    fn duration_mul_matches_eq1_shape() {
        // Eq. 1: queue time = queue size x mean latency.
        let svc = SimDuration::from_micros(80);
        assert_eq!(svc.saturating_mul(12).as_micros(), 960);
    }

    #[test]
    fn min_max_are_consistent() {
        let a = SimDuration::from_micros(3);
        let b = SimDuration::from_micros(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimTime::from_micros(3).max(SimTime::from_micros(9)).as_micros(), 9);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(SimTime::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
    }

    #[test]
    fn seconds_conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert!((SimDuration::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
    }
}
