//! Error types for the storage substrate.

use std::error::Error;
use std::fmt;

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// A request addressed sectors beyond the configured device capacity.
    OutOfCapacity {
        /// The last sector the request touches.
        requested_end: u64,
        /// The device capacity in sectors.
        capacity: u64,
    },
    /// A device or queue was configured with an invalid parameter.
    InvalidConfig(String),
    /// A request id was not found where it was expected (e.g. completing a
    /// request that was never dispatched).
    UnknownRequest(u64),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::OutOfCapacity { requested_end, capacity } => write!(
                f,
                "request ends at sector {requested_end} but device capacity is {capacity} sectors"
            ),
            StorageError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            StorageError::UnknownRequest(id) => write!(f, "unknown request id {id}"),
        }
    }
}

impl Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StorageError>();

        let e = StorageError::OutOfCapacity { requested_end: 100, capacity: 50 };
        assert!(e.to_string().contains("capacity"));
        assert!(StorageError::InvalidConfig("x".into()).to_string().contains('x'));
        assert!(StorageError::UnknownRequest(9).to_string().contains('9'));
    }
}
