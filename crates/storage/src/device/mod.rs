//! Analytical device service-time models.
//!
//! The paper's testbed pairs a 1 TB Samsung 863a SATA SSD (the I/O cache
//! device) with a 4 TB 7.2K RPM SAS Seagate HDD (the disk subsystem). LBICA
//! never looks inside the devices — it only needs their *queue sizes* and
//! *average service latencies* (Eq. 1) — so an analytical model that captures
//! the latency gap, read/write asymmetry and sequential-vs-random behaviour
//! of each device class is sufficient to reproduce the queueing dynamics.
//!
//! [`SsdModel`] and [`HddModel`] both implement [`DeviceModel`]. Service
//! times are deterministic functions of the request and of the device's
//! recent history (sequential-stream detection), which keeps whole-system
//! simulations reproducible.

mod hdd;
mod ssd;

pub use hdd::{HddConfig, HddModel};
pub use ssd::{SsdConfig, SsdModel};

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::request::IoRequest;
use crate::time::SimDuration;

/// Which tier of the storage hierarchy a device belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// The SSD used as the I/O cache.
    SsdCache,
    /// The HDD (or mid-range SSD) disk subsystem.
    DiskSubsystem,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::SsdCache => write!(f, "ssd-cache"),
            DeviceKind::DiskSubsystem => write!(f, "disk-subsystem"),
        }
    }
}

/// A device that can estimate how long it takes to service a request.
///
/// Implementations may keep internal history (e.g. the last accessed LBA for
/// sequential-stream detection), hence `service_time` takes `&mut self`.
pub trait DeviceModel {
    /// Which tier this device models.
    fn kind(&self) -> DeviceKind;

    /// Device capacity in sectors.
    fn capacity_sectors(&self) -> u64;

    /// Time the device needs to service `request` once dispatched,
    /// excluding any queueing delay.
    fn service_time(&mut self, request: &IoRequest) -> SimDuration;

    /// The average service time of a small random read, used by monitoring
    /// tools (and by LBICA's Eq. 1) as the per-request latency estimate.
    fn avg_read_latency(&self) -> SimDuration;

    /// The average service time of a small random write.
    fn avg_write_latency(&self) -> SimDuration;

    /// The blended average latency used in Eq. 1
    /// (`Qtime = QSize × latency`). By default the mean of the read and
    /// write averages.
    fn avg_latency(&self) -> SimDuration {
        SimDuration::from_micros(
            (self.avg_read_latency().as_micros() + self.avg_write_latency().as_micros()) / 2,
        )
    }

    /// Resets any access history (e.g. sequential-stream state).
    fn reset_history(&mut self);
}

/// A closed enum over the two concrete device models.
///
/// The simulator's device stations hold this instead of a
/// `Box<dyn DeviceModel>`: `service_time` sits on the per-dispatch hot path
/// of the event loop, and the enum dispatch lets the compiler inline the
/// models' latency arithmetic where a vtable call could not.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyDeviceModel {
    /// An SSD (cache device, warm tier or mid-range disk subsystem).
    Ssd(SsdModel),
    /// A spinning-disk subsystem.
    Hdd(HddModel),
}

impl DeviceModel for AnyDeviceModel {
    #[inline]
    fn kind(&self) -> DeviceKind {
        match self {
            AnyDeviceModel::Ssd(m) => m.kind(),
            AnyDeviceModel::Hdd(m) => m.kind(),
        }
    }

    #[inline]
    fn capacity_sectors(&self) -> u64 {
        match self {
            AnyDeviceModel::Ssd(m) => m.capacity_sectors(),
            AnyDeviceModel::Hdd(m) => m.capacity_sectors(),
        }
    }

    #[inline]
    fn service_time(&mut self, request: &IoRequest) -> SimDuration {
        match self {
            AnyDeviceModel::Ssd(m) => m.service_time(request),
            AnyDeviceModel::Hdd(m) => m.service_time(request),
        }
    }

    #[inline]
    fn avg_read_latency(&self) -> SimDuration {
        match self {
            AnyDeviceModel::Ssd(m) => m.avg_read_latency(),
            AnyDeviceModel::Hdd(m) => m.avg_read_latency(),
        }
    }

    #[inline]
    fn avg_write_latency(&self) -> SimDuration {
        match self {
            AnyDeviceModel::Ssd(m) => m.avg_write_latency(),
            AnyDeviceModel::Hdd(m) => m.avg_write_latency(),
        }
    }

    #[inline]
    fn reset_history(&mut self) {
        match self {
            AnyDeviceModel::Ssd(m) => m.reset_history(),
            AnyDeviceModel::Hdd(m) => m.reset_history(),
        }
    }
}

impl AnyDeviceModel {
    /// Serializes the model's mutable state plus a variant tag, so a resume
    /// against a mismatched device configuration fails loudly instead of
    /// silently misinterpreting the bytes.
    pub fn snap_state_to(&self, w: &mut crate::snap::SnapWriter) {
        match self {
            AnyDeviceModel::Ssd(m) => {
                w.put_u8(0);
                m.snap_state_to(w);
            }
            AnyDeviceModel::Hdd(m) => {
                w.put_u8(1);
                m.snap_state_to(w);
            }
        }
    }

    /// Restores state serialized by [`AnyDeviceModel::snap_state_to`] into a
    /// model rebuilt from the original configuration.
    pub fn snap_state_from(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        let tag = r.get_u8()?;
        match (tag, self) {
            (0, AnyDeviceModel::Ssd(m)) => m.snap_state_from(r),
            (1, AnyDeviceModel::Hdd(m)) => m.snap_state_from(r),
            _ => Err(crate::snap::SnapError::Corrupt("device model variant mismatch")),
        }
    }
}

impl From<SsdModel> for AnyDeviceModel {
    fn from(model: SsdModel) -> Self {
        AnyDeviceModel::Ssd(model)
    }
}

impl From<HddModel> for AnyDeviceModel {
    fn from(model: HddModel) -> Self {
        AnyDeviceModel::Hdd(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestKind, RequestOrigin};

    fn read_at(sector: u64, sectors: u64) -> IoRequest {
        IoRequest::new(0, RequestKind::Read, RequestOrigin::Application, sector, sectors)
    }

    fn write_at(sector: u64, sectors: u64) -> IoRequest {
        IoRequest::new(0, RequestKind::Write, RequestOrigin::Application, sector, sectors)
    }

    #[test]
    fn ssd_is_much_faster_than_hdd_for_random_io() {
        let mut ssd = SsdModel::samsung_863a();
        let mut hdd = HddModel::seagate_7200_sas();
        let r = read_at(1_000_000, 8);
        let ssd_t = ssd.service_time(&r);
        let hdd_t = hdd.service_time(&r);
        assert!(
            hdd_t.as_micros() > 20 * ssd_t.as_micros(),
            "expected >20x gap, got ssd={ssd_t} hdd={hdd_t}"
        );
    }

    #[test]
    fn avg_latency_is_between_read_and_write_latency() {
        let ssd = SsdModel::samsung_863a();
        let lo = ssd.avg_read_latency().min(ssd.avg_write_latency());
        let hi = ssd.avg_read_latency().max(ssd.avg_write_latency());
        let avg = ssd.avg_latency();
        assert!(avg >= lo && avg <= hi);
    }

    #[test]
    fn larger_requests_take_longer_on_both_devices() {
        let mut ssd = SsdModel::samsung_863a();
        let mut hdd = HddModel::seagate_7200_sas();
        for dev in [&mut ssd as &mut dyn DeviceModel, &mut hdd as &mut dyn DeviceModel] {
            dev.reset_history();
            let small = dev.service_time(&write_at(10_000_000, 8));
            dev.reset_history();
            let large = dev.service_time(&write_at(10_000_000, 2048));
            assert!(large > small, "{}: large {large} <= small {small}", dev.kind());
        }
    }

    #[test]
    fn device_state_snapshots_round_trip_and_reject_variant_mismatch() {
        use crate::snap::{SnapError, SnapReader, SnapWriter};

        let mut hdd = AnyDeviceModel::Hdd(HddModel::seagate_7200_sas());
        hdd.service_time(&read_at(1_000_000, 8));
        let mut w = SnapWriter::new();
        hdd.snap_state_to(&mut w);
        let bytes = w.into_bytes();

        // Restoring into a fresh model of the same variant reproduces the
        // sequential-stream behaviour of the original.
        let mut fresh = AnyDeviceModel::Hdd(HddModel::seagate_7200_sas());
        let mut r = SnapReader::new(&bytes);
        fresh.snap_state_from(&mut r).unwrap();
        r.finish().unwrap();
        let next = read_at(1_000_008, 8);
        assert_eq!(fresh.service_time(&next), hdd.service_time(&next));

        // Restoring HDD state into an SSD model is a typed error.
        let mut ssd = AnyDeviceModel::Ssd(SsdModel::samsung_863a());
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            ssd.snap_state_from(&mut r),
            Err(SnapError::Corrupt("device model variant mismatch"))
        );
    }

    #[test]
    fn device_kind_display_is_nonempty() {
        assert_eq!(DeviceKind::SsdCache.to_string(), "ssd-cache");
        assert_eq!(DeviceKind::DiskSubsystem.to_string(), "disk-subsystem");
    }
}
